"""End-to-end integration tests: the paper's Section 2 scenarios.

Scenario A — classic warehousing: a bulk load parallel-sampled at
ingestion time, followed by periodic smaller update batches, with
analytics over the merged sample and roll-out of aged partitions.

Scenario B — overwhelming stream: one logical stream split round-robin
across "machines", sampled concurrently, samples merged on demand.

Scenario C — persistence: samples staged to disk (as in the paper's
experimental setup) and merged after reopening.
"""

from __future__ import annotations

import pytest

from repro.analytics.aqp import ApproximateQueryEngine
from repro.core.merge import merge_tree
from repro.rng import SplittableRng
from repro.stream.splitter import RoundRobinSplitter
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.ingest import CountPolicy, FractionPolicy
from repro.warehouse.rollup import temporal_rollup
from repro.warehouse.storage import FileStore
from repro.warehouse.warehouse import SampleWarehouse
from repro.workloads.generators import UniformGenerator


class TestScenarioBulkLoadPlusUpdates:
    def test_end_to_end(self):
        wh = SampleWarehouse(bound_values=512, scheme="hr",
                             rng=SplittableRng(101))
        gen = UniformGenerator(value_range=100_000)
        data_rng = SplittableRng(55)

        # Initial bulk load, parallel-sampled over 8 partitions.
        initial = gen.generate(80_000, data_rng.spawn("bulk"))
        wh.ingest_batch("fact.amount", initial, partitions=8,
                        labels=[f"load-{i}" for i in range(8)])

        # Periodic update batches (daily deltas).
        for day in range(5):
            delta = gen.generate(4_000, data_rng.spawn("day", day))
            wh.ingest_batch("fact.amount", delta,
                            labels=[f"day-{day}"])

        total = wh.sample_of("fact.amount")
        total.check_invariants()
        assert total.population_size == 100_000

        # Analytics over the merged sample.
        engine = ApproximateQueryEngine(wh)
        est = engine.count("fact.amount")
        assert abs(est.value - 100_000) / 100_000 < 0.10

        # Periodic deletion: roll out the oldest update day.
        day0 = [k for k in wh.partition_keys("fact.amount")
                if wh.catalog.get(k).label == "day-0"]
        wh.roll_out(day0[0])
        remaining = wh.sample_of("fact.amount")
        assert remaining.population_size == 96_000

    def test_weekly_rollup_on_top(self):
        wh = SampleWarehouse(bound_values=128, rng=SplittableRng(7))
        gen = UniformGenerator(1000)
        data_rng = SplittableRng(70)
        for day in range(14):
            wh.ingest_batch("clicks", gen.generate(2_000,
                                                   data_rng.spawn(day)),
                            labels=[f"d{day}"])
        weekly = temporal_rollup(wh, "clicks", window=7,
                                 rng=SplittableRng(71))
        assert {s.population_size for s in weekly.values()} == {14_000}
        # Re-ingest rollups under a derived dataset for cataloged reuse.
        for i, (name, sample) in enumerate(sorted(weekly.items())):
            wh.ingest_sample(PartitionKey("clicks.weekly", 0, i), sample,
                             label=name)
        assert wh.sample_of("clicks.weekly").population_size == 28_000


class TestScenarioSplitStream:
    def test_round_robin_split_and_merge(self):
        """One overwhelming stream -> 4 'machines' -> merged sample."""
        machines = 4
        wh = SampleWarehouse(bound_values=256, scheme="hr",
                             rng=SplittableRng(202))
        ingestors = [
            wh.open_stream("events", policy=CountPolicy(5_000), stream=m)
            for m in range(machines)
        ]
        splitter = RoundRobinSplitter([ing.feed for ing in ingestors])
        gen = UniformGenerator(50_000)
        splitter.feed_many(gen.generate(60_000, SplittableRng(77)))
        for ing in ingestors:
            ing.close()

        merged = wh.sample_of("events")
        merged.check_invariants()
        assert merged.population_size == 60_000
        # Every machine contributed partitions.
        streams = {k.stream for k in wh.partition_keys("events")}
        assert streams == set(range(machines))

    def test_adaptive_partitioning_under_fluctuation(self):
        """FractionPolicy cuts partitions by realized sampling fraction,
        robust to arrival-rate fluctuations (Section 2)."""
        wh = SampleWarehouse(bound_values=64, scheme="hr",
                             rng=SplittableRng(303))
        ing = wh.open_stream("ticks", policy=FractionPolicy(1 / 8))
        gen = UniformGenerator(10_000)
        ing.feed_many(gen.generate(10_000, SplittableRng(88)))
        keys = ing.close()
        assert len(keys) >= 2
        for key in keys[:-1]:
            meta = wh.catalog.get(key)
            # Cut at ~bound/fraction = 512 parent elements.
            assert 400 <= meta.population_size <= 640
        merged = wh.sample_of("ticks")
        assert merged.population_size == 10_000


class TestScenarioPersistence:
    def test_disk_staged_samples_merge_after_reopen(self, tmp_path):
        """Per-partition samples staged on disk (like the paper's
        temporary storage before merging), then merged cold."""
        store = FileStore(str(tmp_path))
        wh = SampleWarehouse(bound_values=128, rng=SplittableRng(404),
                             store=store)
        gen = UniformGenerator(5_000)
        wh.ingest_batch("cold", gen.generate(30_000, SplittableRng(5)),
                        partitions=6)
        wh.save(str(tmp_path))

        reopened = SampleWarehouse.load(str(tmp_path),
                                        rng=SplittableRng(1),
                                        bound_values=128)
        samples = [reopened.sample_for(k)
                   for k in reopened.partition_keys("cold")]
        merged = merge_tree(samples, rng=SplittableRng(2))
        merged.check_invariants()
        assert merged.population_size == 30_000


class TestCrossSchemeWarehouse:
    @pytest.mark.parametrize("scheme", ["hb", "hr", "sb", "hb-mp"])
    def test_every_scheme_end_to_end(self, scheme):
        wh = SampleWarehouse(bound_values=128, scheme=scheme,
                             sb_rate=0.01, rng=SplittableRng(500))
        gen = UniformGenerator(2_000)
        wh.ingest_batch("d", gen.generate(20_000, SplittableRng(6)),
                        partitions=4)
        merged = wh.sample_of("d")
        assert merged.population_size == 20_000
        if scheme != "sb":
            merged.check_invariants()

"""Tests for the RPR11x async-soundness rules.

Fixture trees exercise each rule's positive and negative space:
event-loop blocking calls in coroutines with their executor-routing
exemptions (RPR111), dropped coroutine objects and fire-and-forget
task handles (RPR112), await-point races on shared state (RPR113),
awaits under a ``threading.Lock`` (RPR114), and RPR103's asyncio-lock
extension riding the shared blocks-event-loop effect.

The final class is the async coverage gate: an independent AST scan
of ``src/repro`` for ``async def``/``await`` must match the
:class:`~repro.analysis.asyncrules.AsyncModel`'s coloring tables
exactly — a summarizer regression that stops seeing coroutines would
silently turn the whole family into a no-op.
"""

from __future__ import annotations

import ast
import os
import textwrap
from collections import Counter

from repro.analysis import (async_model, load_project, run_lint,
                            severity_for)

ASYNC_RULES = ["RPR111", "RPR112", "RPR113", "RPR114"]


def lint_tree(tmp_path, files, *, select=ASYNC_RULES):
    """Write ``{relpath: source}`` under a tmp package root and lint
    it with the async rules only."""
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = run_lint([str(root)], select=select)
    return findings


def codes(findings):
    return [f.code for f in findings]


class TestBlockingInCoroutine:
    def test_direct_blocking_call_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/poll.py": """
            import time

            async def poll():
                time.sleep(0.1)
            """})
        assert codes(findings) == ["RPR111"]
        f = findings[0]
        assert "poll" in f.message
        assert "time.sleep()" in f.message
        assert "event loop" in f.message

    def test_severity_is_warning(self):
        assert severity_for("RPR111") == "warning"
        for code in ("RPR112", "RPR113", "RPR114"):
            assert severity_for(code) == "error"

    def test_transitive_blocking_with_witness_chain(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/fetch.py": """
            import time

            def backoff():
                time.sleep(0.5)

            async def fetch():
                backoff()
            """})
        assert codes(findings) == ["RPR111"]
        f = findings[0]
        assert "fetch" in f.message
        assert "via" in f.message and "backoff" in f.message
        assert "time.sleep" in f.message  # the chain prints the sink

    def test_async_generator_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/gen.py": """
            import time

            async def ticks():
                while True:
                    time.sleep(1.0)
                    yield 1
            """})
        assert codes(findings) == ["RPR111"]
        assert "async generator" in findings[0].message

    def test_run_in_executor_by_name_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/off.py": """
            import asyncio
            import time

            def work():
                time.sleep(0.1)

            async def fetch():
                loop = asyncio.get_running_loop()
                return await loop.run_in_executor(None, work)
            """})
        assert findings == []

    def test_to_thread_lambda_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/off2.py": """
            import asyncio
            import time

            async def fetch():
                return await asyncio.to_thread(
                    lambda: time.sleep(0.1))
            """})
        assert findings == []

    def test_router_helper_exempts_lambda_argument(self, tmp_path):
        # The serve-layer idiom: a helper that submits its callable
        # parameter to an executor routes the lambda's body off the
        # loop, so the caller's lambda is exempt.
        findings = lint_tree(tmp_path, {"aio/svc.py": """
            import asyncio
            import time
            from concurrent.futures import ThreadPoolExecutor

            class Svc:
                def __init__(self):
                    self._pool = ThreadPoolExecutor(2)

                async def _offload(self, fn):
                    return await asyncio.wrap_future(
                        self._pool.submit(fn))

                async def handle(self):
                    return await self._offload(
                        lambda: time.sleep(0.1))
            """})
        assert findings == []

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/poll.py": """
            import time

            async def poll():
                time.sleep(0.1)  # repro: noqa[RPR111]
            """})
        assert findings == []

    def test_test_paths_exempt(self, tmp_path):
        findings = lint_tree(tmp_path, {"tests/test_poll.py": """
            import time

            async def helper():
                time.sleep(0.1)
            """})
        assert findings == []


class TestDroppedAwaitable:
    def test_unawaited_coroutine_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/leak.py": """
            async def job():
                return 1

            async def main():
                job()
            """})
        assert codes(findings) == ["RPR112"]
        f = findings[0]
        assert "without awaiting" in f.message
        assert "job" in f.message

    def test_dropped_task_handle_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/fire.py": """
            import asyncio

            async def job():
                return 1

            async def main():
                asyncio.create_task(job())
            """})
        assert codes(findings) == ["RPR112"]
        assert "task handle" in findings[0].message

    def test_awaited_and_kept_handles_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/ok.py": """
            import asyncio

            async def job():
                return 1

            async def main():
                await job()
                task = asyncio.create_task(job())
                await task
            """})
        assert findings == []

    def test_sync_caller_dropping_coroutine_flagged(self, tmp_path):
        # The classic footgun: a sync def calls a coroutine function
        # and the coroutine object is silently discarded.
        findings = lint_tree(tmp_path, {"aio/sync.py": """
            async def job():
                return 1

            def kick():
                job()
            """})
        assert codes(findings) == ["RPR112"]


class TestAwaitPointRace:
    def test_mutation_across_await_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/count.py": """
            import asyncio

            class Counter:
                def __init__(self):
                    self._n = 0

                async def bump(self):
                    self._n += 1
                    await asyncio.sleep(0)
                    self._n -= 1
            """})
        assert codes(findings) == ["RPR113"]
        f = findings[0]
        assert "Counter._n" in f.message
        assert "await-separated" in f.message
        assert "asyncio.Lock" in f.message

    def test_asyncio_lock_spanning_accesses_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/locked.py": """
            import asyncio

            class Counter:
                def __init__(self):
                    self._lock = asyncio.Lock()
                    self._n = 0

                async def bump(self):
                    async with self._lock:
                        self._n += 1
                        await asyncio.sleep(0)
                        self._n -= 1
            """})
        assert findings == []

    def test_single_epoch_mutation_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/one.py": """
            import asyncio

            class Counter:
                def __init__(self):
                    self._n = 0

                async def bump(self):
                    self._n += 1
                    self._n -= 1
                    await asyncio.sleep(0)
            """})
        assert findings == []


class TestAwaitUnderThreadLock:
    def test_await_while_holding_thread_lock_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/bridge.py": """
            import asyncio
            import threading

            class Bridge:
                def __init__(self):
                    self._lock = threading.Lock()

                async def relay(self):
                    with self._lock:
                        await asyncio.sleep(0)
            """}, select=["RPR114"])
        assert codes(findings) == ["RPR114"]
        f = findings[0]
        assert "Bridge._lock" in f.message
        assert "deadlock" in f.message

    def test_asyncio_lock_held_across_await_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/aio.py": """
            import asyncio

            class Gate:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def relay(self):
                    async with self._lock:
                        await asyncio.sleep(0)
            """}, select=["RPR114"])
        assert findings == []

    def test_lock_released_before_await_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/rel.py": """
            import asyncio
            import threading

            class Bridge:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._item = None

                async def relay(self):
                    with self._lock:
                        item = self._item
                    await asyncio.sleep(0)
                    return item
            """}, select=["RPR114"])
        assert findings == []


class TestBlockingUnderAsyncioLock:
    def test_rpr103_fires_inside_async_with(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/gate.py": """
            import asyncio
            import time

            class Gate:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def refresh(self):
                    async with self._lock:
                        time.sleep(0.2)
            """}, select=["RPR103"])
        assert codes(findings) == ["RPR103"]
        f = findings[0]
        assert "asyncio lock" in f.message
        assert "Gate._lock" in f.message
        assert "loop thread" in f.message

    def test_blocking_outside_the_lock_has_no_rpr103(self, tmp_path):
        findings = lint_tree(tmp_path, {"aio/gate.py": """
            import asyncio
            import time

            class Gate:
                def __init__(self):
                    self._lock = asyncio.Lock()

                async def refresh(self):
                    async with self._lock:
                        pass
                    time.sleep(0.2)
            """}, select=["RPR103"])
        assert findings == []


class TestAsyncCoverageGate:
    def test_every_coroutine_is_colored(self):
        """CI gate: an independent AST scan of ``src/repro`` for
        ``async def`` definitions and their own-scope ``await`` sites
        must match the async model's tables exactly."""
        src = os.path.join(os.path.dirname(__file__), "..",
                           "src", "repro")

        def own_awaits(fn_node):
            count = 0
            stack = list(ast.iter_child_nodes(fn_node))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.Lambda)):
                    continue
                if isinstance(node, ast.Await):
                    count += 1
                stack.extend(ast.iter_child_nodes(node))
            return count

        expected: Counter = Counter()
        for dirpath, _, names in os.walk(src):
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as f:
                    tree = ast.parse(f.read())
                for node in ast.walk(tree):
                    if isinstance(node, ast.AsyncFunctionDef):
                        expected[(node.name, own_awaits(node))] += 1
        assert expected, "the scan should find the serve coroutines"

        project = load_project([src])
        model = async_model(project)
        modeled: Counter = Counter()
        for key, kind in model.colors.items():
            assert kind in ("coroutine", "asyncgen")
            short = key.split(":", 1)[1] \
                .replace(".<locals>.", ".").split(".")[-1]
            modeled[(short, len(model.awaits[key]))] += 1
        assert modeled == expected, (
            f"async defs invisible to the model: "
            f"{expected - modeled} / phantom: {modeled - expected}")

    def test_blocks_effect_sees_the_real_sinks(self):
        """The transitive effect actually covers the library: the
        known loop-parking sync entry points are in the table, and
        the executor-routed serve path is not."""
        src = os.path.join(os.path.dirname(__file__), "..",
                           "src", "repro")
        project = load_project([src])
        model = async_model(project)
        blocked_shorts = {key.split(":", 1)[1]
                          for key in model.blocks}
        assert "MergeCache.invalidate" in blocked_shorts
        assert "FileStore.put" in blocked_shorts
        assert "ThreadExecutor.close" in blocked_shorts
        # The guarded dispatch path stays clean: coroutines are never
        # in the sync blocks table, and the offload helper routes its
        # callable parameter off the loop.
        assert not any(key.endswith("WarehouseService._guarded")
                       for key in model.blocks)
        assert any(key.endswith("WarehouseService._offload")
                   and fns == {"fn"}
                   for key, fns in model.routes.items())

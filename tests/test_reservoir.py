"""Tests for repro.sampling.reservoir."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ALPHA
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.sampling.reservoir import ReservoirSampler, reservoir_subsample
from repro.stats.uniformity import (inclusion_frequency_test,
                                    subset_frequency_test)
from repro.testkit import sweep


class TestBasics:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(0, rng)

    def test_short_stream_keeps_everything(self, rng):
        r = ReservoirSampler(10, rng)
        r.feed_many(range(5))
        assert sorted(r.sample) == [0, 1, 2, 3, 4]

    def test_exact_size(self, rng):
        r = ReservoirSampler(10, rng)
        r.feed_many(range(10_000))
        assert len(r) == 10
        assert r.seen == 10_000

    def test_sample_subset_of_stream(self, rng):
        r = ReservoirSampler(16, rng)
        r.feed_many(range(1000))
        assert set(r.sample) <= set(range(1000))
        assert len(set(r.sample)) == 16  # distinct inputs stay distinct

    def test_feed_returns_insertion_flag(self, rng):
        r = ReservoirSampler(3, rng)
        assert r.feed("a") is True
        assert r.feed("b") is True
        assert r.feed("c") is True

    def test_finalize_closes(self, rng):
        r = ReservoirSampler(2, rng)
        r.feed(1)
        r.finalize()
        with pytest.raises(ProtocolError):
            r.feed(2)

    def test_iterator_fallback_equivalent_sizes(self, rng):
        r = ReservoirSampler(8, rng)
        r.feed_many(v for v in range(5000))
        assert len(r) == 8
        assert r.seen == 5000

    def test_initial_validation(self, rng):
        with pytest.raises(ConfigurationError):
            ReservoirSampler(2, rng, initial=[1, 2, 3])
        with pytest.raises(ConfigurationError):
            ReservoirSampler(5, rng, initial=[1, 2, 3], start_index=2)

    def test_convenience_function(self, rng):
        out = reservoir_subsample(list(range(100)), 7, rng)
        assert len(out) == 7


class TestUniformity:
    def test_inclusion_frequencies(self, rng):
        def sample_fn(values, child):
            return reservoir_subsample(values, 4, child)

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(20)), trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_subset_frequencies(self, rng):
        """The strong uniformity property: every k-subset equally likely."""
        def sample_fn(values, child):
            return reservoir_subsample(values, 2, child)

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(6)), size=2, trials=2_000,
                rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_continuation_is_uniform(self, rng):
        """Resuming with start_index behaves like one long stream."""
        population = list(range(18))

        def sample_fn(values, child):
            first, second = values[:9], values[9:]
            r1 = ReservoirSampler(4, child)
            r1.feed_many(first)
            r2 = ReservoirSampler(4, child, initial=r1.finalize(),
                                  start_index=len(first))
            r2.feed_many(second)
            return r2.finalize()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, population, trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()


class TestProperties:
    @given(st.integers(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=500))
    @settings(max_examples=60)
    def test_size_invariant(self, capacity, stream_len):
        rng = SplittableRng(hash((capacity, stream_len)) & 0xFFFF)
        r = ReservoirSampler(capacity, rng)
        r.feed_many(list(range(stream_len)))
        assert len(r) == min(capacity, stream_len)
        assert r.seen == stream_len

    @given(st.integers(min_value=1, max_value=20),
           st.lists(st.integers(), min_size=0, max_size=200))
    @settings(max_examples=60)
    def test_sample_multiset_subset(self, capacity, values):
        rng = SplittableRng(len(values) * 31 + capacity)
        r = ReservoirSampler(capacity, rng)
        r.feed_many(values)
        remaining = list(values)
        for v in r.sample:
            assert v in remaining
            remaining.remove(v)

"""Failure-injection tests: storage and serialization under adversity.

A warehouse must fail loudly and cleanly — no silent truncation, no
partially-visible writes, no acceptance of corrupt documents.
"""

from __future__ import annotations

import json
import os
import stat

import pytest

from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ReproError, StorageError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.storage import FileStore, sample_from_dict
from repro.warehouse.warehouse import SampleWarehouse

MODEL = FootprintModel(8, 4)


def make_sample():
    return WarehouseSample(
        histogram=CompactHistogram.from_pairs([("a", 2), ("b", 1)]),
        kind=SampleKind.RESERVOIR,
        population_size=50,
        bound_values=10,
        scheme="hr",
        model=MODEL,
    )


def _read_only(path) -> None:
    os.chmod(path, stat.S_IRUSR | stat.S_IXUSR)


def _writable(path) -> None:
    os.chmod(path, stat.S_IRWXU)


@pytest.mark.skipif(os.geteuid() == 0,
                    reason="root bypasses permission bits")
class TestPermissionFailures:
    def test_unwritable_directory_put(self, tmp_path):
        store = FileStore(str(tmp_path))
        _read_only(tmp_path)
        try:
            with pytest.raises(StorageError):
                store.put(PartitionKey("d", 0, 0), make_sample())
        finally:
            _writable(tmp_path)

    def test_uncreatable_directory(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        _read_only(blocked)
        try:
            with pytest.raises(StorageError):
                FileStore(str(blocked / "store"))
        finally:
            _writable(blocked)


class TestCorruption:
    def test_truncated_json(self, tmp_path):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        victim = next(tmp_path.glob("*.sample.json"))
        victim.write_text(victim.read_text()[:20])
        with pytest.raises(StorageError):
            store.get(key)

    def test_wrong_schema_document(self, tmp_path):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        victim = next(tmp_path.glob("*.sample.json"))
        victim.write_text(json.dumps({"key": str(key), "nonsense": 1}))
        with pytest.raises(StorageError):
            store.get(key)

    def test_corrupt_gzip(self, tmp_path):
        store = FileStore(str(tmp_path), compress=True)
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        victim = next(tmp_path.glob("*.sample.json.gz"))
        victim.write_bytes(b"\x1f\x8bgarbage")
        with pytest.raises(StorageError):
            store.get(key)

    def test_document_with_invalid_kind(self):
        with pytest.raises(StorageError):
            sample_from_dict({
                "kind": "NOT_A_KIND",
                "population_size": 1,
                "bound_values": 1,
                "rate": None,
                "scheme": "hr",
                "exceedance_p": 0.001,
                "model": {"value_bytes": 8, "count_bytes": 4},
                "histogram": [],
            })

    def test_document_with_inconsistent_counts(self):
        """A sample claiming more elements than its population must be
        rejected at deserialization (validation reruns)."""
        with pytest.raises(ReproError):
            sample_from_dict({
                "kind": "RESERVOIR",
                "population_size": 1,
                "bound_values": 10,
                "rate": None,
                "scheme": "hr",
                "exceedance_p": 0.001,
                "model": {"value_bytes": 8, "count_bytes": 4},
                "histogram": [["a", 5]],
            })

    def test_catalog_corruption_detected_on_load(self, tmp_path):
        wh = SampleWarehouse(bound_values=16, rng=SplittableRng(1))
        wh.ingest_batch("d", list(range(100)))
        wh.save(str(tmp_path))
        (tmp_path / "catalog.json").write_text("{ nope")
        with pytest.raises(StorageError):
            SampleWarehouse.load(str(tmp_path))


class TestAtomicity:
    def test_replace_leaves_old_on_simulated_crash(self, tmp_path,
                                                   monkeypatch):
        """If the rename step never happens (crash between temp write
        and replace), the previous version stays intact."""
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        original = store.get(key)

        def boom(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(StorageError):
            store.put(key, make_sample())
        monkeypatch.undo()
        still = store.get(key)
        assert still.histogram == original.histogram

    def test_no_stray_temp_files_after_failures(self, tmp_path,
                                                monkeypatch):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 0, 0)

        def boom(src, dst):
            raise OSError("simulated crash")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(StorageError):
            store.put(key, make_sample())
        monkeypatch.undo()
        assert not [n for n in os.listdir(tmp_path)
                    if n.endswith(".tmp")]

"""Tests for repro.warehouse.audit."""

from __future__ import annotations

from dataclasses import replace

from repro.rng import SplittableRng
from repro.warehouse.audit import audit_warehouse
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.warehouse import SampleWarehouse


def make_warehouse():
    wh = SampleWarehouse(bound_values=64, rng=SplittableRng(19))
    wh.ingest_batch("a", list(range(5_000)), partitions=2)
    wh.ingest_batch("b", list(range(3_000)), partitions=3)
    return wh


class TestCleanWarehouse:
    def test_fresh_warehouse_audits_clean(self):
        wh = make_warehouse()
        report = audit_warehouse(wh)
        assert report.ok
        assert report.problems == []
        assert report.datasets_checked == 2
        assert report.partitions_checked == 5
        assert report.samples_verified == 5
        assert report.summary().startswith("OK")

    def test_rolled_out_with_dropped_sample_is_warning(self):
        wh = make_warehouse()
        wh.roll_out(PartitionKey("a", 0, 0), drop_sample=True)
        report = audit_warehouse(wh)
        assert report.ok  # warnings only
        assert len(report.problems) == 1
        assert report.problems[0].severity == "warning"


class TestDetection:
    def test_missing_active_sample_is_error(self):
        wh = make_warehouse()
        wh.store.delete(PartitionKey("a", 0, 0))
        report = audit_warehouse(wh)
        assert not report.ok
        assert any("no stored sample" in p.message
                   for p in report.errors)

    def test_population_mismatch_detected(self):
        wh = make_warehouse()
        meta = wh.catalog.get(PartitionKey("a", 0, 0))
        meta.population_size += 7
        report = audit_warehouse(wh)
        assert not report.ok
        assert any("population" in p.message for p in report.errors)

    def test_size_mismatch_detected(self):
        wh = make_warehouse()
        meta = wh.catalog.get(PartitionKey("b", 0, 1))
        meta.sample_size += 1
        report = audit_warehouse(wh)
        assert not report.ok

    def test_kind_mismatch_detected(self):
        from repro.core.phases import SampleKind

        wh = make_warehouse()
        meta = wh.catalog.get(PartitionKey("b", 0, 1))
        meta.kind = SampleKind.EXHAUSTIVE
        report = audit_warehouse(wh)
        assert not report.ok

    def test_scheme_mismatch_is_warning(self):
        wh = make_warehouse()
        key = PartitionKey("a", 0, 1)
        sample = wh.store.get(key)
        wh.store.put(key, replace(sample, scheme="sb"))
        wh.catalog.get(key).sample_size = sample.size  # keep consistent
        report = audit_warehouse(wh)
        assert report.ok
        assert any(p.severity == "warning" for p in report.problems)

    def test_orphan_sample_is_warning(self):
        wh = make_warehouse()
        stray = wh.store.get(PartitionKey("a", 0, 0))
        wh.store.put(PartitionKey("ghost", 0, 0), stray)
        report = audit_warehouse(wh)
        assert report.ok
        assert any("orphan" in p.message for p in report.problems)

    def test_invariant_violation_detected(self):
        from repro.core.histogram import CompactHistogram
        from repro.core.phases import SampleKind
        from repro.core.sample import WarehouseSample

        wh = make_warehouse()
        key = PartitionKey("a", 0, 0)
        # An oversized "reservoir" sample violating its own bound.
        bad = WarehouseSample(
            histogram=CompactHistogram.from_values(list(range(100))),
            kind=SampleKind.RESERVOIR,
            population_size=2_500,
            bound_values=64,
            scheme="hr",
        )
        wh.store.put(key, bad)
        meta = wh.catalog.get(key)
        meta.sample_size = bad.size
        meta.population_size = bad.population_size
        report = audit_warehouse(wh)
        assert not report.ok
        assert any("invariant" in p.message for p in report.errors)

    def test_problem_str(self):
        wh = make_warehouse()
        wh.store.delete(PartitionKey("a", 0, 0))
        report = audit_warehouse(wh)
        text = str(report.errors[0])
        assert "[error]" in text and "a/0/0" in text

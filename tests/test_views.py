"""Tests for repro.warehouse.views (materialized sample views)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.maintenance import warehouse_delete
from repro.warehouse.views import ViewManager
from repro.warehouse.warehouse import SampleWarehouse


@pytest.fixture()
def warehouse():
    wh = SampleWarehouse(bound_values=64, rng=SplittableRng(17))
    wh.ingest_batch("d", list(range(10_000)), partitions=4,
                    labels=["a", "a", "b", "b"])
    return wh


class TestLifecycle:
    def test_materialize_and_get(self, warehouse):
        views = ViewManager(warehouse)
        v = views.materialize("all", "d")
        assert v.sample.population_size == 10_000
        assert len(v.partition_keys) == 4
        assert views.get("all") is v
        assert views.names() == ["all"]

    def test_duplicate_name(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        with pytest.raises(ConfigurationError):
            views.materialize("all", "d")
        views.materialize("all", "d", replace=True)  # ok

    def test_label_scoped_view(self, warehouse):
        views = ViewManager(warehouse)
        v = views.materialize("slice-a", "d", labels=["a"])
        assert v.sample.population_size == 5_000
        assert len(v.partition_keys) == 2

    def test_empty_selection(self, warehouse):
        views = ViewManager(warehouse)
        with pytest.raises(ConfigurationError):
            views.materialize("nothing", "d", labels=["ghost"])

    def test_drop(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        views.drop("all")
        with pytest.raises(ConfigurationError):
            views.get("all")
        with pytest.raises(ConfigurationError):
            views.drop("all")


class TestStaleness:
    def test_fresh_view_not_stale(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        assert not views.is_stale("all")
        assert views.stale_views() == []

    def test_new_partition_stales_view(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        warehouse.ingest_batch("d", list(range(1000)))
        assert views.is_stale("all")

    def test_roll_out_stales_view(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        warehouse.roll_out(warehouse.partition_keys("d")[0])
        assert views.is_stale("all")

    def test_deletion_stales_view(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        key = warehouse.partition_keys("d")[0]
        victim = warehouse.sample_for(key).values()[0]
        warehouse_delete(warehouse, key, victim, parent_count=1)
        assert views.is_stale("all")

    def test_label_view_unaffected_by_other_labels(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("slice-a", "d", labels=["a"])
        warehouse.ingest_batch("d", list(range(500)), labels=["c"])
        assert not views.is_stale("slice-a")


class TestRefresh:
    def test_refresh_updates_snapshot(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        warehouse.ingest_batch("d", list(range(2_000)))
        refreshed = views.refresh("all")
        assert refreshed.sample.population_size == 12_000
        assert refreshed.refresh_count == 1
        assert not views.is_stale("all")

    def test_refresh_stale_batch(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("all", "d")
        views.materialize("slice-a", "d", labels=["a"])
        warehouse.ingest_batch("d", list(range(100)), labels=["a"])
        refreshed = views.refresh_stale()
        assert set(refreshed) == {"all", "slice-a"}
        assert views.stale_views() == []

    def test_refresh_with_nothing_left(self, warehouse):
        views = ViewManager(warehouse)
        views.materialize("slice-b", "d", labels=["b"])
        for key in list(warehouse.partition_keys("d"))[2:]:
            warehouse.roll_out(key)
        with pytest.raises(ConfigurationError):
            views.refresh("slice-b")

"""Execute every docstring example in the package.

Keeps the documentation honest: each ``Examples`` block in the public
API is run as a doctest by the main test suite, so README-grade snippets
cannot rot.
"""

from __future__ import annotations

import doctest
import importlib
import importlib.util
import pkgutil
from pathlib import Path

import pytest

import repro

# Examples that are written doctest-first; scripts stay script-only.
DOCTESTED_EXAMPLES = ["kernels.py", "observability.py"]


def _all_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.failed == 0, \
        f"{results.failed} doctest failure(s) in {module_name}"


@pytest.mark.parametrize("filename", DOCTESTED_EXAMPLES)
def test_example_doctests(filename):
    path = Path(__file__).resolve().parent.parent / "examples" / filename
    spec = importlib.util.spec_from_file_location(
        f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    results = doctest.testmod(module, verbose=False,
                              optionflags=doctest.NORMALIZE_WHITESPACE)
    assert results.attempted > 0, f"no doctests found in {filename}"
    assert results.failed == 0, \
        f"{results.failed} doctest failure(s) in examples/{filename}"

"""Tests for repro.warehouse.catalog."""

from __future__ import annotations

import pytest

from repro.core.phases import SampleKind
from repro.errors import (ConfigurationError, DatasetNotFoundError,
                          PartitionNotFoundError)
from repro.warehouse.catalog import Catalog, PartitionMeta
from repro.warehouse.dataset import PartitionKey


def meta(ds="d", stream=0, seq=0, size=100, label=None):
    return PartitionMeta(
        key=PartitionKey(ds, stream, seq),
        population_size=size,
        sample_size=10,
        kind=SampleKind.RESERVOIR,
        scheme="hr",
        label=label,
    )


class TestRegistration:
    def test_register_and_get(self):
        c = Catalog()
        m = meta()
        c.register(m)
        assert c.get(m.key) is m

    def test_duplicate_rejected(self):
        c = Catalog()
        c.register(meta())
        with pytest.raises(ConfigurationError):
            c.register(meta())

    def test_replace(self):
        c = Catalog()
        c.register(meta(size=100))
        c.register(meta(size=200), replace=True)
        assert c.get(PartitionKey("d", 0, 0)).population_size == 200

    def test_unknown_lookups(self):
        c = Catalog()
        with pytest.raises(DatasetNotFoundError):
            c.get(PartitionKey("nope", 0, 0))
        c.register(meta())
        with pytest.raises(PartitionNotFoundError):
            c.get(PartitionKey("d", 0, 99))

    def test_forget(self):
        c = Catalog()
        m = meta()
        c.register(m)
        c.forget(m.key)
        with pytest.raises(PartitionNotFoundError):
            c.get(m.key)


class TestQueries:
    def test_datasets_sorted(self):
        c = Catalog()
        c.register(meta("zz"))
        c.register(meta("aa"))
        assert c.datasets() == ["aa", "zz"]

    def test_partitions_ordered(self):
        c = Catalog()
        c.register(meta(seq=2))
        c.register(meta(seq=0))
        c.register(meta(seq=1))
        assert [m.key.seq for m in c.partitions("d")] == [0, 1, 2]

    def test_partitions_unknown_dataset(self):
        with pytest.raises(DatasetNotFoundError):
            Catalog().partitions("ghost")

    def test_where_filter(self):
        c = Catalog()
        c.register(meta(seq=0, label="mon"))
        c.register(meta(seq=1, label="tue"))
        got = c.partitions("d", where=lambda m: m.label == "tue")
        assert [m.key.seq for m in got] == [1]

    def test_merge_labels(self):
        c = Catalog()
        c.register(meta(seq=0, label="mon"))
        c.register(meta(seq=1, label="tue"))
        c.register(meta(seq=2, label="wed"))
        got = c.merge_labels("d", ["mon", "wed"])
        assert [m.key.seq for m in got] == [0, 2]

    def test_next_seq(self):
        c = Catalog()
        assert c.next_seq("d") == 0
        c.register(meta(seq=0))
        c.register(meta(seq=5))
        assert c.next_seq("d") == 6
        assert c.next_seq("d", stream=1) == 0

    def test_total_population(self):
        c = Catalog()
        c.register(meta(seq=0, size=100))
        c.register(meta(seq=1, size=250))
        assert c.total_population("d") == 350


class TestRollInOut:
    def test_roll_out_hides_partition(self):
        c = Catalog()
        c.register(meta(seq=0))
        c.register(meta(seq=1))
        c.roll_out(PartitionKey("d", 0, 0))
        active = [m.key.seq for m in c.partitions("d")]
        assert active == [1]
        everything = [m.key.seq for m in c.partitions("d",
                                                      only_active=False)]
        assert everything == [0, 1]

    def test_roll_in_restores(self):
        c = Catalog()
        c.register(meta(seq=0))
        c.roll_out(PartitionKey("d", 0, 0))
        c.roll_in(PartitionKey("d", 0, 0))
        assert [m.key.seq for m in c.partitions("d")] == [0]

    def test_total_population_respects_activity(self):
        c = Catalog()
        c.register(meta(seq=0, size=100))
        c.register(meta(seq=1, size=250))
        c.roll_out(PartitionKey("d", 0, 1))
        assert c.total_population("d") == 100
        assert c.total_population("d", only_active=False) == 350


class TestPersistence:
    def test_round_trip(self):
        c = Catalog()
        c.register(meta("a", seq=0, label="mon"))
        c.register(meta("a", seq=1))
        c.register(meta("b", stream=2, seq=7, size=999))
        c.roll_out(PartitionKey("a", 0, 1))
        restored = Catalog.from_dict(c.to_dict())
        assert restored.datasets() == ["a", "b"]
        assert restored.get(PartitionKey("a", 0, 0)).label == "mon"
        assert not restored.get(PartitionKey("a", 0, 1)).active
        assert restored.get(PartitionKey("b", 2, 7)).population_size == 999

    def test_meta_round_trip(self):
        m = meta(label="x")
        assert PartitionMeta.from_dict(m.to_dict()) == m


class TestSynopsisPersistence:
    def synopsis(self):
        from repro.warehouse.synopsis import PartitionSynopsis
        return PartitionSynopsis.from_values([1.0, 2.0, 2.0, 9.0])

    def test_meta_round_trip_with_synopsis(self):
        import dataclasses
        m = dataclasses.replace(meta(label="x"), synopsis=self.synopsis())
        data = m.to_dict()
        assert "synopsis" in data
        restored = PartitionMeta.from_dict(data)
        assert restored == m
        assert restored.synopsis.mean == m.synopsis.mean

    def test_meta_round_trip_without_synopsis(self):
        m = meta()
        data = m.to_dict()
        assert "synopsis" not in data
        assert PartitionMeta.from_dict(data) == m

    def test_old_records_load_without_synopsis_key(self):
        # A record persisted before synopses existed has no "synopsis"
        # key at all; it must load with synopsis=None, opting the
        # partition out of planner shortcuts without erroring.
        data = meta().to_dict()
        data.pop("synopsis", None)
        restored = PartitionMeta.from_dict(data)
        assert restored.synopsis is None

    def test_catalog_round_trip_preserves_synopses(self):
        import dataclasses
        c = Catalog()
        c.register(dataclasses.replace(meta("a", seq=0),
                                       synopsis=self.synopsis()))
        c.register(meta("a", seq=1))
        restored = Catalog.from_dict(c.to_dict())
        assert restored.get(PartitionKey("a", 0, 0)).synopsis is not None
        assert restored.get(PartitionKey("a", 0, 1)).synopsis is None

"""Lint guard: the instrumentation contract must be documented.

Every metric and span name emitted anywhere in ``src/repro/`` has to
appear in ``docs/observability.md`` — and vice versa: names documented
there must exist in code.  Both directions are enforced by the
AST-based obs-contract rules of :mod:`repro.analysis` (RPR021/22/23),
which resolve instrument names at the call sites — ``span(...)``,
``traced(...)``, ``registry.counter/gauge/histogram/timer(...)`` —
instead of the lexical regex scan this file used to carry.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import load_project, run_lint
from repro.analysis.rules.obs import documented_names, emitted_names

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "observability.md"


def _project():
    return load_project([str(SRC)], contract_doc=DOC)


def test_sources_are_instrumented_at_all():
    # Guards the guard: if the AST name resolution rots, this fails
    # before the documentation cross-check can vacuously pass.
    names = {name for name, _, _ in emitted_names(_project())}
    assert "hb.phase2" in names
    assert "merge.hr.recursion_depth" in names
    assert "ingest.stream.cuts" in names
    assert len(names) >= 30


def test_doc_rows_are_parsed_at_all():
    rows = {name for name, _ in documented_names(
        DOC.read_text(encoding="utf-8"))}
    assert "hb.phase2" in rows
    assert "parallel.task.seconds.process" in rows
    assert len(rows) >= 30


def test_every_emitted_name_is_documented():
    findings, _ = run_lint([str(SRC)], contract_doc=DOC,
                           select=["RPR022"])
    assert not findings, (
        "instrumentation names missing from docs/observability.md:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_every_documented_contract_row_exists_in_code():
    # Reverse direction: contract tables must not document ghosts.
    findings, _ = run_lint([str(SRC)], contract_doc=DOC,
                           select=["RPR023"])
    assert not findings, (
        "docs/observability.md documents names no code emits:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_every_instrument_name_is_a_literal():
    # Non-literal names cannot be cross-checked at all; they are a
    # contract violation in their own right (RPR021).
    findings, _ = run_lint([str(SRC)], contract_doc=DOC,
                           select=["RPR021"])
    assert not findings, (
        "instrument names that are not string literals:\n  "
        + "\n  ".join(f.render() for f in findings))

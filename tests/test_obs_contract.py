"""Lint guard: the instrumentation contract must be documented.

Every metric and span name emitted anywhere in ``src/repro/`` has to
appear in ``docs/observability.md`` — otherwise the contract page
silently drifts from the code.  The scan is purely lexical (regexes over
string literals at the call sites), so adding an instrumented site
without documenting its name fails this test.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
DOC = REPO / "docs" / "observability.md"

# Patterns that bind a string literal to an instrument at a call site.
_NAME_PATTERNS = [
    re.compile(r'\bspan\(\s*"([^"]+)"'),
    re.compile(r'\btraced\(\s*"([^"]+)"'),
    re.compile(r'timer="([^"]+)"'),
    re.compile(r'\.counter\(\s*"([^"]+)"'),
    re.compile(r'\.gauge\(\s*"([^"]+)"'),
    re.compile(r'\.histogram\(\s*"([^"]+)"'),
    re.compile(r'\.timer\(\s*"([^"]+)"'),
    re.compile(r'_record_tasks\(\s*"([^"]+)"'),
]


def _emitted_names():
    """All metric/span names used by instrumentation in src/repro/."""
    names = set()
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        # The obs package itself and the CLI demo use caller-chosen
        # names in docstrings/examples; the contract covers the
        # *library's* instrumented hot paths.
        if rel.parts[0] == "obs":
            continue
        text = path.read_text(encoding="utf-8")
        for pattern in _NAME_PATTERNS:
            for name in pattern.findall(text):
                names.add((name, str(rel)))
    return names


def test_sources_are_instrumented_at_all():
    # Guards the guard: if the regexes rot, this fails before the
    # documentation check can vacuously pass.
    names = {name for name, _ in _emitted_names()}
    assert "hb.phase2" in names
    assert "merge.hr.recursion_depth" in names
    assert "ingest.stream.cuts" in names
    assert len(names) >= 30


def test_every_emitted_name_is_documented():
    doc = DOC.read_text(encoding="utf-8")
    missing = sorted(
        f"{name}  (used in src/repro/{rel})"
        for name, rel in _emitted_names()
        if f"`{name}`" not in doc
    )
    assert not missing, (
        "instrumentation names missing from docs/observability.md:\n  "
        + "\n  ".join(missing)
    )


def test_every_documented_contract_row_exists_in_code():
    # Reverse direction: contract tables must not document ghosts.
    # Table rows look like:  | `name` | kind | ...
    doc = DOC.read_text(encoding="utf-8")
    documented = set(re.findall(r"^\|\s*`([^`]+)`", doc, flags=re.M))
    emitted = {name for name, _ in _emitted_names()}
    ghosts = sorted(documented - emitted)
    assert not ghosts, (
        "docs/observability.md documents names no code emits:\n  "
        + "\n  ".join(ghosts)
    )

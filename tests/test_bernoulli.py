"""Tests for repro.sampling.bernoulli."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.sampling.bernoulli import (BernoulliSampler, bernoulli_subsample,
                                      thin_rate)


class TestBernoulliSubsample:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            bernoulli_subsample([1, 2], -0.1, rng)
        with pytest.raises(ConfigurationError):
            bernoulli_subsample([1, 2], 1.1, rng)

    def test_rate_zero_and_one(self, rng):
        assert bernoulli_subsample([1, 2, 3], 0.0, rng) == []
        assert bernoulli_subsample([1, 2, 3], 1.0, rng) == [1, 2, 3]

    def test_preserves_order(self, rng):
        sub = bernoulli_subsample(list(range(1000)), 0.3, rng)
        assert sub == sorted(sub)

    def test_expected_size(self, rng):
        n, q, trials = 500, 0.2, 300
        sizes = [len(bernoulli_subsample(list(range(n)), q,
                                         rng.spawn(t)))
                 for t in range(trials)]
        mean = sum(sizes) / trials
        sd = math.sqrt(n * q * (1 - q))
        assert abs(mean - n * q) < 5 * sd / math.sqrt(trials)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=60)
    def test_subset_property(self, q, n):
        rng = SplittableRng(hash((q, n)) & 0xFFFF)
        values = list(range(n))
        sub = bernoulli_subsample(values, q, rng)
        assert set(sub) <= set(values)
        assert len(sub) <= n


class TestThinRate:
    def test_composition(self):
        assert thin_rate(0.5, 0.4) == pytest.approx(0.2)


class TestBernoulliSampler:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            BernoulliSampler(-0.5, rng)
        with pytest.raises(ConfigurationError):
            BernoulliSampler(2.0, rng)

    def test_rate_one_includes_everything(self, rng):
        s = BernoulliSampler(1.0, rng)
        s.feed_many(range(100))
        assert list(s) == list(range(100))

    def test_rate_zero_includes_nothing(self, rng):
        s = BernoulliSampler(0.0, rng)
        s.feed_many(range(100))
        assert len(s) == 0
        assert s.seen == 100

    def test_feed_counts_seen(self, rng):
        s = BernoulliSampler(0.5, rng)
        for v in range(10):
            s.feed(v)
        assert s.seen == 10

    def test_feed_many_iterator_fallback(self, rng):
        s = BernoulliSampler(0.5, rng)
        s.feed_many(v for v in range(1000))
        assert s.seen == 1000
        assert 300 < len(s) < 700

    def test_feed_many_sequence_fast_path(self, rng):
        s = BernoulliSampler(0.1, rng)
        included = s.feed_many(list(range(10_000)))
        assert included == len(s)
        assert s.seen == 10_000
        assert 800 < len(s) < 1_200

    def test_fast_path_gap_state_across_batches(self, rng):
        """Gap state persists over consecutive feed_many calls: the union
        of two half-batches behaves like one full batch."""
        trials = 400
        split_sizes, whole_sizes = [], []
        for t in range(trials):
            a = BernoulliSampler(0.05, rng.spawn("a", t))
            a.feed_many(list(range(500)))
            a.feed_many(list(range(500, 1000)))
            split_sizes.append(len(a))
            b = BernoulliSampler(0.05, rng.spawn("b", t))
            b.feed_many(list(range(1000)))
            whole_sizes.append(len(b))
        mean_split = sum(split_sizes) / trials
        mean_whole = sum(whole_sizes) / trials
        assert abs(mean_split - mean_whole) < 5.0
        assert abs(mean_split - 50.0) < 5.0

    def test_thin_composition(self, rng):
        s = BernoulliSampler(0.5, rng)
        s.feed_many(list(range(10_000)))
        s.thin(0.5)
        assert s.rate == pytest.approx(0.25)
        # After thinning, the sample is ~ Bern(0.25) of everything seen.
        assert 2_000 < len(s) < 3_000

    def test_finalize_closes(self, rng):
        s = BernoulliSampler(0.5, rng)
        s.feed(1)
        s.finalize()
        with pytest.raises(ProtocolError):
            s.feed(2)
        with pytest.raises(ProtocolError):
            s.thin(0.5)

    def test_sample_size_distribution(self, rng):
        """|S| ~ Binomial(N, q): check mean and variance."""
        n, q, trials = 400, 0.3, 500
        sizes = []
        for t in range(trials):
            s = BernoulliSampler(q, rng.spawn(t))
            s.feed_many(list(range(n)))
            sizes.append(len(s))
        mean = sum(sizes) / trials
        var = sum((x - mean) ** 2 for x in sizes) / (trials - 1)
        assert abs(mean - n * q) < 4 * math.sqrt(n * q * (1 - q) / trials)
        assert 0.5 * n * q * (1 - q) < var < 1.6 * n * q * (1 - q)

"""Tests for the serving layer (repro.serve): transport, cache, OCC,
admission, and end-to-end request flows against an in-process server.

Failure injection (breaker, retry, conflict storms, stale-cache
property) lives in tests/test_serve_failures.py.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.errors import (ConfigurationError, OverloadedError,
                          StorageError, VersionConflictError)
from repro.obs import capture
from repro.rng import SplittableRng
from repro.serve import (AdmissionController, MergeCache, ServeConfig,
                         VersionedCatalog, WarehouseService)
from repro.serve.http import (Request, Response, read_request,
                              render_response)
from repro.serve.loadtest import (percentile, run_loadtest,
                                  run_self_hosted, summarize)
from repro.warehouse.storage import FileStore, sample_to_dict
from repro.warehouse.warehouse import SampleWarehouse


def make_warehouse(seed=42, bound=64):
    return SampleWarehouse(bound_values=bound, scheme="hr",
                           rng=SplittableRng(seed))


def serve(coro_fn, *, warehouse=None, config=None):
    """Run ``coro_fn(host, port, service)`` against a live service."""
    warehouse = warehouse if warehouse is not None else make_warehouse()
    service = WarehouseService(warehouse, config=config)

    async def run():
        host, port = await service.start(port=0)
        try:
            return await coro_fn(host, port, service)
        finally:
            await service.aclose()

    return asyncio.run(run())


async def http(host, port, method, path, body=None, headers=None):
    """One client request; returns (status, payload, raw headers)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        payload = b"" if body is None else \
            json.dumps(body).encode("utf-8")
        lines = [f"{method} {path} HTTP/1.1",
                 f"Host: {host}:{port}",
                 f"Content-Length: {len(payload)}",
                 "Connection: close"]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
                     + payload)
        await writer.drain()
        raw = await reader.read(-1)
    finally:
        writer.close()
        await writer.wait_closed()
    head, body_bytes = raw.split(b"\r\n\r\n", 1)
    head_lines = head.decode("latin-1").split("\r\n")
    status = int(head_lines[0].split(" ")[1])
    raw_headers = {}
    for line in head_lines[1:]:
        name, _, value = line.partition(":")
        raw_headers[name.strip().lower()] = value.strip()
    return status, json.loads(body_bytes.decode("utf-8")), raw_headers


class TestHttpLayer:
    def _parse(self, data: bytes):
        async def run():
            reader = asyncio.StreamReader()
            if data:
                reader.feed_data(data)
            reader.feed_eof()
            return await read_request(reader)

        return asyncio.run(run())

    def test_parse_request(self):
        raw = (b"POST /datasets/d/ingest?x=1&y=two HTTP/1.1\r\n"
               b"Host: h\r\nContent-Length: 7\r\n"
               b"X-Custom: V\r\n\r\n{\"a\":1}")
        request = self._parse(raw)
        assert request.method == "POST"
        assert request.path == "/datasets/d/ingest"
        assert request.query == {"x": "1", "y": "two"}
        assert request.headers["x-custom"] == "V"
        assert request.json() == {"a": 1}

    def test_clean_eof_returns_none(self):
        assert self._parse(b"") is None

    def test_truncated_head_rejected(self):
        with pytest.raises(ConfigurationError):
            self._parse(b"GET / HTT")

    def test_malformed_request_line_rejected(self):
        with pytest.raises(ConfigurationError):
            self._parse(b"NONSENSE\r\n\r\n")

    def test_bad_content_length_rejected(self):
        raw = b"GET / HTTP/1.1\r\nContent-Length: frog\r\n\r\n"
        with pytest.raises(ConfigurationError):
            self._parse(raw)

    def test_oversized_body_rejected(self):
        raw = (b"GET / HTTP/1.1\r\n"
               b"Content-Length: 999999999999\r\n\r\n")
        with pytest.raises(ConfigurationError):
            self._parse(raw)

    def test_body_json_object_required(self):
        request = Request(method="POST", path="/", body=b"[1, 2]")
        with pytest.raises(ConfigurationError):
            request.json()

    def test_render_response(self):
        raw = render_response(Response(
            503, {"b": 2, "a": 1}, headers={"Retry-After": "0.5"}))
        head, body = raw.split(b"\r\n\r\n", 1)
        assert head.startswith(b"HTTP/1.1 503 Service Unavailable")
        assert b"Connection: close" in head
        assert b"Retry-After: 0.5" in head
        assert f"Content-Length: {len(body)}".encode() in head
        # Deterministic serialization: keys sorted, no whitespace.
        assert body == b'{"a":1,"b":2}'


class TestVersionedCatalog:
    def test_versions_start_at_zero_and_bump(self):
        occ = VersionedCatalog()
        assert occ.version("d") == 0
        result, version = occ.mutate("d", lambda: "done")
        assert (result, version) == ("done", 1)
        assert occ.version("d") == 1
        assert occ.versions() == {"d": 1}

    def test_cas_succeeds_on_current_version(self):
        occ = VersionedCatalog()
        occ.mutate("d", lambda: None)
        _, version = occ.mutate("d", lambda: None, expected=1)
        assert version == 2

    def test_cas_conflict_leaves_catalog_untouched(self):
        occ = VersionedCatalog()
        occ.mutate("d", lambda: None)
        ran = []
        with pytest.raises(VersionConflictError) as excinfo:
            occ.mutate("d", lambda: ran.append(1), expected=0)
        assert ran == []
        assert excinfo.value.expected == 0
        assert excinfo.value.actual == 1
        assert occ.version("d") == 1

    def test_conflict_counter_emitted(self):
        occ = VersionedCatalog()
        occ.mutate("d", lambda: None)
        with capture() as (reg, _):
            with pytest.raises(VersionConflictError):
                occ.mutate("d", lambda: None, expected=7)
        assert reg.counter("serve.occ.conflicts").value == 1

    def test_mutation_exception_does_not_bump(self):
        occ = VersionedCatalog()

        def boom():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            occ.mutate("d", boom)
        assert occ.version("d") == 0


def merged_sample(dataset="d", seed=7, values=2000, partitions=4):
    wh = make_warehouse(seed=seed)
    wh.ingest_batch(dataset, list(range(values)), partitions=partitions)
    return wh.sample_of(dataset)


class TestMergeCache:
    def test_hit_requires_exact_version(self):
        cache = MergeCache()
        sample = merged_sample()
        cache.put("d", "sel", 3, sample)
        assert cache.get("d", "sel", 3) is sample
        assert cache.get("d", "sel", 4) is None      # newer tag: stale
        assert cache.get("d", "sel", 2) is None      # older tag: stale
        # The stale probe dropped the entry entirely.
        assert len(cache) == 0

    def test_invalidate_counts_and_clears(self):
        cache = MergeCache()
        sample = merged_sample()
        cache.put("d", "s1", 1, sample)
        cache.put("d", "s2", 1, sample)
        cache.put("other", "s1", 1, sample)
        assert cache.invalidate("d") == 2
        assert cache.get("d", "s1", 1) is None
        assert cache.get("other", "s1", 1) is sample

    def test_hit_miss_counters(self):
        cache = MergeCache()
        sample = merged_sample()
        cache.put("d", "sel", 1, sample)
        with capture() as (reg, _):
            cache.get("d", "sel", 1)
            cache.get("d", "sel", 2)
        assert reg.counter("serve.cache.hit").value == 1
        assert reg.counter("serve.cache.miss").value == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MergeCache(max_entries=0)

    def test_lru_eviction_without_spill_store(self):
        cache = MergeCache(max_entries=2)
        sample = merged_sample()
        cache.put("d", "s1", 1, sample)
        cache.put("d", "s2", 1, sample)
        cache.get("d", "s1", 1)            # s1 now most recent
        cache.put("d", "s3", 1, sample)    # evicts s2
        assert cache.get("d", "s2", 1) is None
        assert cache.get("d", "s1", 1) is sample
        assert cache.get("d", "s3", 1) is sample

    def test_spill_and_repromote(self, tmp_path):
        store = FileStore(str(tmp_path), durability="relaxed")
        cache = MergeCache(max_entries=1, spill_store=store)
        s1 = merged_sample(seed=1)
        s2 = merged_sample(seed=2)
        with capture() as (reg, _):
            cache.put("d", "s1", 5, s1)
            cache.put("d", "s2", 5, s2)    # evicts + spills s1
            assert reg.counter("serve.cache.spill").value == 1
            restored = cache.get("d", "s1", 5)
        assert restored is not None
        assert restored.histogram == s1.histogram
        # Distinct selectors never alias: s2 must still be intact
        # (it was evicted and spilled by the re-promotion above).
        back = cache.get("d", "s2", 5)
        assert back.histogram == s2.histogram

    def test_spilled_entry_respects_version(self, tmp_path):
        store = FileStore(str(tmp_path), durability="relaxed")
        cache = MergeCache(max_entries=1, spill_store=store)
        cache.put("d", "s1", 5, merged_sample(seed=1))
        cache.put("d", "s2", 5, merged_sample(seed=2))
        assert cache.get("d", "s1", 6) is None   # spilled but stale

    def test_invalidate_drops_spill_files(self, tmp_path):
        store = FileStore(str(tmp_path), durability="relaxed")
        cache = MergeCache(max_entries=1, spill_store=store)
        cache.put("d", "s1", 5, merged_sample(seed=1))
        cache.put("d", "s2", 5, merged_sample(seed=2))
        assert len(store) == 1
        assert cache.invalidate("d") == 2        # 1 memory + 1 spilled
        assert len(store) == 0

    def test_failed_spill_keeps_the_previous_spill_usable(self, tmp_path):
        """A put() failure during spill withdraws the reservation: the
        selector's earlier spill file stays referenced and servable,
        and the never-written reservation is not consulted."""
        inner = FileStore(str(tmp_path), durability="relaxed")

        class FlakyStore:
            fail_puts = 0

            def put(self, key, sample):
                if self.fail_puts > 0:
                    self.fail_puts -= 1
                    raise StorageError("spill disk full")
                inner.put(key, sample)

            def get(self, key):
                return inner.get(key)

            def delete(self, key):
                inner.delete(key)

        flaky = FlakyStore()
        cache = MergeCache(max_entries=1, spill_store=flaky)
        s1 = merged_sample(seed=1)
        cache.put("d", "s1", 5, s1)
        cache.put("d", "s2", 5, merged_sample(seed=2))  # spills s1 ok
        restored = cache.get("d", "s1", 5)              # repromote;
        assert restored.histogram == s1.histogram       # spills s2 ok
        flaky.fail_puts = 1
        cache.put("d", "s2", 6, merged_sample(seed=3))  # re-spill of
        # s1 fails; its version-5 file must still be reachable.
        assert cache.get("d", "s1", 5).histogram == s1.histogram

    def test_racing_spills_of_one_key_orphan_no_files(self, tmp_path):
        """Two threads spilling the same cache_key concurrently must
        leave exactly one referenced file on disk — the loser GCs its
        own write once it sees the slot was taken."""
        inner = FileStore(str(tmp_path), durability="relaxed")
        gate = threading.Barrier(2, timeout=5)

        class GatedStore:
            def put(self, key, sample):
                gate.wait()     # both spills reserve before either writes
                inner.put(key, sample)

            def get(self, key):
                return inner.get(key)

            def delete(self, key):
                inner.delete(key)

        cache = MergeCache(max_entries=4, spill_store=GatedStore())
        sample = merged_sample(seed=1)
        threads = [threading.Thread(
            target=cache._spill, args=(("d", "sel"), (1, sample)))
            for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(inner) == 1              # no orphaned spill file
        assert cache.get("d", "sel", 1) is not None


class TestAdmissionController:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_concurrent=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=-1)
        with pytest.raises(ConfigurationError):
            AdmissionController(retry_after=0)

    def test_sheds_when_queue_full(self):
        async def run():
            gate = AdmissionController(max_concurrent=1, max_queue=0,
                                       retry_after=0.25)
            release = asyncio.Event()

            async def holder():
                async with gate:
                    await release.wait()

            task = asyncio.ensure_future(holder())
            await asyncio.sleep(0.01)      # holder occupies the slot
            assert gate.inflight == 1
            with capture() as (reg, _):
                try:
                    async with gate:
                        raise AssertionError("should have shed")
                except OverloadedError as exc:
                    assert exc.retry_after == 0.25
                assert reg.counter("serve.shed").value == 1
            release.set()
            await task
            assert gate.inflight == 0

        asyncio.run(run())

    def test_queued_request_admitted_after_release(self):
        async def run():
            gate = AdmissionController(max_concurrent=1, max_queue=4)
            release = asyncio.Event()
            order = []

            async def holder():
                async with gate:
                    order.append("holder")
                    await release.wait()

            async def waiter():
                async with gate:
                    order.append("waiter")

            tasks = [asyncio.ensure_future(holder()),
                     asyncio.ensure_future(waiter())]
            await asyncio.sleep(0.01)
            assert gate.waiting == 1
            release.set()
            await asyncio.gather(*tasks)
            assert order == ["holder", "waiter"]

        asyncio.run(run())


class TestEndToEnd:
    def test_healthz_and_unknown_route(self):
        async def check(host, port, service):
            status, payload, _ = await http(host, port, "GET", "/healthz")
            assert (status, payload) == (
                200, {"status": "ok", "breaker": "closed"})
            status, payload, _ = await http(host, port, "GET", "/nope")
            assert status == 404
            status, payload, _ = await http(
                host, port, "DELETE", "/datasets/d/sample")
            assert status == 405

        serve(check)

    def test_ingest_then_query_matches_library_exactly(self):
        """The served answer is byte-identical to the library path:
        same seed + same values ⇒ same merged sample, canonical JSON
        compared (the tentpole equivalence contract; the battery check
        serve.query.equivalence sweeps this across seeds)."""
        values = [v % 701 for v in range(5000)]
        library = make_warehouse(seed=99)
        library.ingest_batch("t.v", values, partitions=4)
        expected = json.dumps(sample_to_dict(library.sample_of("t.v")),
                              sort_keys=True)

        async def check(host, port, service):
            status, payload, _ = await http(
                host, port, "POST", "/datasets/t.v/ingest",
                body={"values": values, "partitions": 4})
            assert status == 200
            assert payload["version"] == 1
            assert len(payload["keys"]) == 4
            status, payload, _ = await http(
                host, port, "GET", "/datasets/t.v/sample")
            assert status == 200
            assert payload["version"] == 1
            assert payload["cached"] is False
            assert json.dumps(payload["sample"],
                              sort_keys=True) == expected
            # Same question again: served from cache, same answer.
            status, again, _ = await http(
                host, port, "GET", "/datasets/t.v/sample")
            assert again["cached"] is True
            assert again["sample"] == payload["sample"]

        serve(check, warehouse=make_warehouse(seed=99))

    def test_ingest_invalidates_cache(self):
        async def check(host, port, service):
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": [1, 2, 3, 4], "partitions": 1})
            _, first, _ = await http(host, port, "GET",
                                     "/datasets/d/sample")
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": [5, 6, 7, 8], "partitions": 1})
            _, second, _ = await http(host, port, "GET",
                                      "/datasets/d/sample")
            assert second["version"] == 2
            assert second["cached"] is False
            assert second["sample"]["population_size"] == 8
            assert first["sample"]["population_size"] == 4

        serve(check)

    def test_estimate_endpoint(self):
        async def check(host, port, service):
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": [1, 2, 3, 5], "partitions": 1})
            status, payload, _ = await http(
                host, port, "GET", "/datasets/d/estimate?stat=sum")
            assert status == 200
            # Four values against bound 64: the sample is exhaustive,
            # so the estimate is exact.
            assert payload["exact"] is True
            assert payload["value"] == 11.0
            status, payload, _ = await http(
                host, port, "GET", "/datasets/d/estimate?stat=bogus")
            assert status == 400
            # A malformed fraction is the client's fault, not a 500.
            status, payload, _ = await http(
                host, port, "GET",
                "/datasets/d/estimate?stat=quantile&fraction=abc")
            assert status == 400
            assert payload["error"] == "bad-request"

        serve(check)

    def test_estimate_endpoint_planned(self):
        async def check(host, port, service):
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": list(range(100)), "partitions": 4})
            # Ingest attaches exact synopses, so a planned sum at any
            # bound certifies with zero partition reads.
            status, payload, _ = await http(
                host, port, "GET",
                "/datasets/d/estimate?stat=sum&target_half_width=1.0")
            assert status == 200
            plan = payload["plan"]
            assert plan["planned"] and plan["certified"]
            assert not plan["fallback"]
            assert plan["selected"] == 0
            assert plan["total_partitions"] == 4
            assert plan["target_half_width"] == 1.0
            # The body is Estimate.to_dict() plus the version tag.
            for field in ("value", "ci_low", "ci_high", "confidence",
                          "exact", "sample_size", "population_size"):
                assert field in payload
            assert payload["value"] == float(sum(range(100)))
            assert payload["version"] == 1
            # A relative target goes through the same path.
            status, payload, _ = await http(
                host, port, "GET", "/datasets/d/estimate"
                "?stat=avg&target_half_width=0.05&relative=1")
            assert status == 200
            assert payload["plan"]["certified"]
            # A malformed target is the client's fault.
            status, payload, _ = await http(
                host, port, "GET",
                "/datasets/d/estimate?stat=sum&target_half_width=abc")
            assert status == 400
            assert payload["error"] == "bad-request"

        serve(check)

    def test_datasets_listing_and_info(self):
        async def check(host, port, service):
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": list(range(100)),
                             "partitions": 2})
            status, payload, _ = await http(host, port, "GET",
                                            "/datasets")
            assert status == 200
            assert payload["datasets"] == [{
                "dataset": "d", "version": 1, "partitions": 2,
                "population": 100}]
            status, info, _ = await http(host, port, "GET",
                                         "/datasets/d")
            assert status == 200
            assert info["version"] == 1
            assert len(info["partitions"]) == 2
            assert all(p["active"] for p in info["partitions"])

        serve(check)

    def test_cas_conflict_maps_to_409(self):
        async def check(host, port, service):
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": [1], "partitions": 1})
            status, payload, _ = await http(
                host, port, "POST", "/datasets/d/ingest",
                body={"values": [2], "partitions": 1,
                      "expected_version": 0})
            assert status == 409
            assert payload["error"] == "version-conflict"
            assert (payload["expected"], payload["actual"]) == (0, 1)
            # If-Match carries the same CAS; the current tag succeeds.
            status, payload, _ = await http(
                host, port, "POST", "/datasets/d/ingest",
                body={"values": [3], "partitions": 1},
                headers={"If-Match": "1"})
            assert status == 200
            assert payload["version"] == 2

        serve(check)

    def test_rollout_rollin_roundtrip(self):
        async def check(host, port, service):
            _, ingest, _ = await http(
                host, port, "POST", "/datasets/d/ingest",
                body={"values": list(range(100)), "partitions": 2})
            key = ingest["keys"][0]
            _, full, _ = await http(host, port, "GET",
                                    "/datasets/d/sample")
            status, payload, _ = await http(
                host, port, "POST", "/datasets/d/rollout",
                body={"key": key})
            assert status == 200
            assert payload["version"] == 2
            _, rolled, _ = await http(host, port, "GET",
                                      "/datasets/d/sample")
            assert rolled["sample"]["population_size"] < \
                full["sample"]["population_size"]
            status, payload, _ = await http(
                host, port, "POST", "/datasets/d/rollin",
                body={"key": key, "expected_version": 2})
            assert status == 200
            _, back, _ = await http(host, port, "GET",
                                    "/datasets/d/sample")
            assert back["sample"]["population_size"] == \
                full["sample"]["population_size"]
            # Key from another dataset is rejected up front.
            status, _payload, _ = await http(
                host, port, "POST", "/datasets/other/rollout",
                body={"key": key})
            assert status == 400

        serve(check)

    def test_unknown_dataset_is_404(self):
        async def check(host, port, service):
            status, payload, _ = await http(
                host, port, "GET", "/datasets/ghost/sample")
            assert status == 404
            assert payload["error"] == "not-found"

        serve(check)

    def test_bad_json_body_is_400(self):
        async def check(host, port, service):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"POST /datasets/d/ingest HTTP/1.1\r\n"
                             b"Content-Length: 5\r\n\r\n{oops")
                await writer.drain()
                raw = await reader.read(-1)
            finally:
                writer.close()
                await writer.wait_closed()
            assert b"400" in raw.split(b"\r\n", 1)[0]

        serve(check)

    def test_metrics_endpoint_reports_counters(self):
        async def check(host, port, service):
            status, payload, _ = await http(host, port, "GET",
                                            "/metrics")
            assert (status, payload["enabled"]) == (200, True)
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": [1, 2], "partitions": 1})
            await http(host, port, "GET", "/datasets/d/sample")
            await http(host, port, "GET", "/datasets/d/sample")
            _, payload, _ = await http(host, port, "GET", "/metrics")
            metrics = payload["metrics"]
            assert metrics["serve.requests"]["value"] >= 4
            assert metrics["serve.cache.hit"]["value"] == 1
            assert metrics["serve.cache.miss"]["value"] == 1

        from repro.obs import capture as obs_capture
        with obs_capture():
            serve(check)

    def test_labels_selection(self):
        async def check(host, port, service):
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": list(range(50)), "partitions": 1,
                             "labels": ["jan"]})
            await http(host, port, "POST", "/datasets/d/ingest",
                       body={"values": list(range(70)), "partitions": 1,
                             "labels": ["feb"]})
            _, jan, _ = await http(
                host, port, "GET", "/datasets/d/sample?labels=jan")
            assert jan["sample"]["population_size"] == 50
            _, both, _ = await http(
                host, port, "GET", "/datasets/d/sample?labels=jan,feb")
            assert both["sample"]["population_size"] == 120

        serve(check)


class TestLoadtest:
    def test_percentile_nearest_rank(self):
        lats = [0.1, 0.2, 0.3, 0.4]
        assert percentile(lats, 0.0) == 0.1
        assert percentile(lats, 1.0) == 0.4
        assert percentile(lats, 0.5) == 0.3
        with pytest.raises(ConfigurationError):
            percentile([], 0.5)
        with pytest.raises(ConfigurationError):
            percentile(lats, 1.5)

    def test_summarize(self):
        records = [(0.01, 200), (0.02, 200), (0.5, 503), (0.3, -1)]
        summary = summarize(records, wall_seconds=2.0, clients=2,
                            requests_per_client=2)
        assert summary["total_requests"] == 4
        assert summary["completed"] == 2    # 503 and transport excluded
        assert summary["shed"] == 1
        assert summary["shed_rate"] == 0.25
        assert summary["errors"] == 1
        assert summary["statuses"] == {"200": 2, "503": 1,
                                       "transport-error": 1}
        assert summary["throughput_rps"] == 2.0
        assert summary["latency"]["p50"] == 0.01

    def test_self_hosted_smoke(self):
        summary = run_self_hosted(seed=11, clients=8,
                                  requests_per_client=3,
                                  preload_values=2000,
                                  preload_partitions=4)
        assert summary["total_requests"] == 24
        assert summary["completed"] == 24
        assert summary["errors"] == 0
        assert summary["latency"]["p50"] > 0

    def test_loadtest_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            asyncio.run(run_loadtest("h", 1, clients=0,
                                     requests_per_client=1, seed=1))

    def test_shedding_visible_under_tiny_limits(self):
        """With a 1-deep queue and slow-ish merges, a burst of clients
        must shed — and the summary must say so."""
        config = ServeConfig(max_concurrent=1, max_queue=1)
        summary = run_self_hosted(seed=5, clients=12,
                                  requests_per_client=2,
                                  preload_values=30_000,
                                  preload_partitions=12,
                                  config=config)
        assert summary["shed"] > 0
        assert summary["shed"] == summary["statuses"].get("503", 0)
        assert summary["completed"] + summary["shed"] == \
            summary["total_requests"]

"""Tests for repro.core.merge (HBMerge, HRMerge, unions, merge trees)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ALPHA
from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.merge import (hb_merge, hr_merge, merge_samples, merge_tree,
                              sb_union)
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.core.stratified_bernoulli import AlgorithmSB
from repro.errors import ConfigurationError, IncompatibleSamplesError
from repro.kernels import use_backend
from repro.rng import SplittableRng
from repro.sampling.distributions import CachedHypergeometric
from repro.stats.uniformity import (inclusion_frequency_test,
                                    subset_frequency_test)
from repro.testkit import sweep

MODEL = FootprintModel(8, 4)


def hb_sample(values, bound, rng, p=0.001):
    hb = AlgorithmHB(len(values), bound_values=bound, rng=rng,
                     exceedance_p=p, model=MODEL)
    hb.feed_many(values)
    return hb.finalize()


def hr_sample(values, bound, rng):
    hr = AlgorithmHR(bound_values=bound, rng=rng, model=MODEL)
    hr.feed_many(values)
    return hr.finalize()


def sb_sample(values, rate, rng):
    sb = AlgorithmSB(rate, rng=rng, model=MODEL)
    sb.feed_many(values)
    return sb.finalize()


def srs_sample(values, size, population, rng, scheme="hr", bound=None):
    """Handcrafted reservoir-kind sample for merge unit tests."""
    return WarehouseSample(
        histogram=CompactHistogram.from_values(values[:size]),
        kind=SampleKind.RESERVOIR,
        population_size=population,
        bound_values=bound if bound is not None else max(size, 1),
        scheme=scheme,
        model=MODEL,
    )


class TestHbMergeKinds:
    def test_both_exhaustive_small(self, rng):
        s1 = hb_sample(list(range(50)), 1000, rng.spawn(1))
        s2 = hb_sample(list(range(50, 100)), 1000, rng.spawn(2))
        m = hb_merge(s1, s2, rng=rng)
        assert m.kind is SampleKind.EXHAUSTIVE
        assert sorted(m.values()) == list(range(100))
        assert m.population_size == 100
        assert m.scheme == "hb"

    def test_exhaustive_plus_bernoulli(self, rng):
        s1 = hb_sample([7] * 30_000, 64, rng.spawn(1))       # exhaustive
        s2 = hb_sample(list(range(30_000)), 64, rng.spawn(2))  # bernoulli
        assert s1.kind is SampleKind.EXHAUSTIVE
        assert s2.kind is SampleKind.BERNOULLI
        m = hb_merge(s1, s2, rng=rng)
        m.check_invariants()
        assert m.population_size == 60_000

    def test_both_bernoulli_fast_path(self, rng):
        s1 = hb_sample(list(range(20_000)), 256, rng.spawn(1))
        s2 = hb_sample(list(range(20_000, 40_000)), 256, rng.spawn(2))
        assert s1.kind is s2.kind is SampleKind.BERNOULLI
        m = hb_merge(s1, s2, rng=rng)
        m.check_invariants()
        assert m.kind in (SampleKind.BERNOULLI, SampleKind.RESERVOIR)
        assert m.population_size == 40_000
        if m.kind is SampleKind.BERNOULLI:
            # Rate was recomputed for the union: strictly smaller.
            assert m.rate < min(s1.rate, s2.rate) + 1e-12

    def test_reservoir_involved_routes_to_hypergeometric(self, rng):
        s1 = srs_sample(list(range(64)), 64, 1000, rng, scheme="hb",
                        bound=64)
        s2 = hb_sample(list(range(30_000)), 64, rng.spawn(2))
        m = hb_merge(s1, s2, rng=rng)
        assert m.kind is SampleKind.RESERVOIR
        assert m.size == min(64, s2.size)
        assert m.scheme == "hb"

    def test_incompatible_bounds_rejected(self, rng):
        s1 = hb_sample(list(range(1000)), 32, rng.spawn(1))
        s2 = hb_sample(list(range(1000)), 64, rng.spawn(2))
        with pytest.raises(IncompatibleSamplesError):
            hb_merge(s1, s2, rng=rng)

    def test_bound_preserved_after_merge(self, rng):
        samples = [hb_sample(list(range(i * 5000, (i + 1) * 5000)), 128,
                             rng.spawn(i)) for i in range(6)]
        merged = samples[0]
        for s in samples[1:]:
            merged = hb_merge(merged, s, rng=rng)
            merged.check_invariants()
        assert merged.population_size == 30_000


class TestHbMergeStatistics:
    def test_merged_uniformity(self, rng):
        """A merge of two HB samples includes every element of the union
        equally often."""
        def sample_fn(values, child):
            mid = len(values) // 2
            s1 = hb_sample(values[:mid], 8, child.spawn("a"))
            s2 = hb_sample(values[mid:], 8, child.spawn("b"))
            return hb_merge(s1, s2, rng=child.spawn("m")).values()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(40)), trials=1_000, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_bernoulli_merge_subset_uniformity(self, rng):
        """The strong property on the both-Bernoulli fast path: merged
        samples, conditioned on their size, hit every k-subset of the
        union equally often — provided the inputs' size truncation is
        negligible (p small), which is the regime the paper's
        "treat as a Bernoulli sample" approximation assumes."""
        def sample_fn(values, child):
            mid = len(values) // 2
            s1 = hb_sample(values[:mid], 6, child.spawn("a"), p=1e-4)
            s2 = hb_sample(values[mid:], 6, child.spawn("b"), p=1e-4)
            merged = hb_merge(s1, s2, rng=child.spawn("m"))
            return merged.values()

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(20)), size=2, trials=10_000,
                rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_truncation_approximation_is_real(self, rng):
        """Reproduction finding: HB's phase-2 output is Bern(q)
        *truncated* at |S| = n_F (the paper's "not quite a true
        Bernoulli sample").  At toy scale — where P(|S| >= n_F) is large
        — merging truncated inputs as if they were Bernoulli visibly
        under-represents within-partition pairs, and the strong subset
        test must reject.  At realistic scale (previous test) the
        deviation is O(p) and undetectable."""
        def sample_fn(values, child):
            mid = len(values) // 2
            # N=4, n_F=3, p=0.05: P(|S| >= n_F) ~ 0.27 per input.
            s1 = hb_sample(values[:mid], 3, child.spawn("a"), p=0.05)
            s2 = hb_sample(values[mid:], 3, child.spawn("b"), p=0.05)
            merged = hb_merge(s1, s2, rng=child.spawn("m"))
            return merged.values()

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(8)), size=2, trials=40_000,
                rng=child),
            rng=rng, seeds=3, alpha=1e-4)
        assert result.all_rejected, \
            "expected the toy-scale truncation bias to be detectable: " \
            + result.describe()


class TestHrMergeTheorem1:
    def test_merged_size_is_min(self, rng):
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(5_000, 15_000)), 64, rng.spawn(2))
        m = hr_merge(s1, s2, rng=rng)
        assert m.kind is SampleKind.RESERVOIR
        assert m.size == 64
        assert m.population_size == 15_000

    def test_target_size(self, rng):
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(5_000, 10_000)), 64, rng.spawn(2))
        m = hr_merge(s1, s2, rng=rng, target_size=10)
        assert m.size == 10

    def test_target_size_validation(self, rng):
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(5_000, 10_000)), 64, rng.spawn(2))
        with pytest.raises(ConfigurationError):
            hr_merge(s1, s2, rng=rng, target_size=65)
        with pytest.raises(ConfigurationError):
            hr_merge(s1, s2, rng=rng, target_size=-1)

    def test_target_size_zero_gives_empty_uniform(self, rng):
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(5_000, 10_000)), 64, rng.spawn(2))
        m = hr_merge(s1, s2, rng=rng, target_size=0)
        assert m.size == 0
        assert m.kind is SampleKind.RESERVOIR
        assert m.population_size == 10_000
        m.check_invariants()

    def test_theorem1_subset_uniformity(self, rng):
        """The heart of the paper's Theorem 1: HRMerge of two simple
        random samples is a simple random sample of the union — verified
        by exhaustive subset-frequency chi-square on a small universe."""
        def sample_fn(values, child):
            mid = len(values) // 2
            r1 = child.spawn("r1")
            r2 = child.spawn("r2")
            from repro.sampling.reservoir import reservoir_subsample

            sub1 = reservoir_subsample(values[:mid], 2, r1)
            sub2 = reservoir_subsample(values[mid:], 2, r2)
            s1 = WarehouseSample(
                histogram=CompactHistogram.from_values(sub1),
                kind=SampleKind.RESERVOIR, population_size=mid,
                bound_values=2, scheme="hr", model=MODEL)
            s2 = WarehouseSample(
                histogram=CompactHistogram.from_values(sub2),
                kind=SampleKind.RESERVOIR, population_size=len(values) - mid,
                bound_values=2, scheme="hr", model=MODEL)
            return hr_merge(s1, s2, rng=child.spawn("m")).values()

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(8)), size=2, trials=3_000,
                rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_exhaustive_case(self, rng):
        s1 = hr_sample(list(range(50)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(50, 10_050)), 64, rng.spawn(2))
        assert s1.kind is SampleKind.EXHAUSTIVE
        m = hr_merge(s1, s2, rng=rng)
        m.check_invariants()
        assert m.population_size == 10_050

    def test_rejects_bernoulli_with_exhaustive(self, rng):
        s1 = hr_sample(list(range(50)), 64, rng.spawn(1))
        s2 = hb_sample(list(range(30_000)), 64, rng.spawn(2))
        with pytest.raises(IncompatibleSamplesError):
            hr_merge(s1, s2, rng=rng)

    def test_alias_cache_used(self, rng):
        # The alias-table cache backs the pure-Python kernel; the
        # numpy backend keeps its own cdf cache instead.
        cache = CachedHypergeometric()
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(5_000, 10_000)), 64, rng.spawn(2))
        with use_backend("python"):
            hr_merge(s1, s2, rng=rng, cache=cache)
        assert len(cache) == 1


class TestSbUnion:
    def test_equal_rates_plain_union(self, rng):
        s1 = sb_sample(list(range(10_000)), 0.01, rng.spawn(1))
        s2 = sb_sample(list(range(10_000, 20_000)), 0.01, rng.spawn(2))
        m = sb_union([s1, s2], rng=rng)
        assert m.kind is SampleKind.BERNOULLI
        assert m.rate == 0.01
        assert m.size == s1.size + s2.size
        assert m.population_size == 20_000

    def test_rate_equalization(self, rng):
        s1 = sb_sample(list(range(20_000)), 0.02, rng.spawn(1))
        s2 = sb_sample(list(range(20_000, 40_000)), 0.01, rng.spawn(2))
        m = sb_union([s1, s2], rng=rng)
        assert m.rate == 0.01
        # s1 was thinned to half: merged size ~ 0.01 * 40000 = 400.
        assert 300 < m.size < 500

    def test_empty_input(self, rng):
        with pytest.raises(ConfigurationError):
            sb_union([], rng=rng)

    def test_requires_bernoulli(self, rng):
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        with pytest.raises(IncompatibleSamplesError):
            sb_union([s1], rng=rng)


class TestMergeSamplesDispatch:
    def test_sb_pair_unions(self, rng):
        s1 = sb_sample(list(range(1000)), 0.1, rng.spawn(1))
        s2 = sb_sample(list(range(1000, 2000)), 0.1, rng.spawn(2))
        m = merge_samples(s1, s2, rng=rng)
        assert m.scheme == "sb"

    def test_hr_pair_uses_hr_merge(self, rng):
        s1 = hr_sample(list(range(5_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(5_000, 10_000)), 64, rng.spawn(2))
        m = merge_samples(s1, s2, rng=rng)
        assert m.scheme == "hr"
        assert m.size == 64

    def test_mixed_goes_through_hb(self, rng):
        s1 = hb_sample(list(range(30_000)), 64, rng.spawn(1))
        s2 = hr_sample(list(range(30_000, 60_000)), 64, rng.spawn(2))
        m = merge_samples(s1, s2, rng=rng)
        m.check_invariants()
        assert m.population_size == 60_000


class TestMergeTree:
    def test_empty(self, rng):
        with pytest.raises(ConfigurationError):
            merge_tree([], rng=rng)

    def test_single(self, rng):
        s = hr_sample(list(range(100)), 64, rng)
        assert merge_tree([s], rng=rng) is s

    @pytest.mark.parametrize("mode", ["serial", "balanced"])
    def test_modes_cover_population(self, rng, mode):
        samples = [hr_sample(list(range(i * 2000, (i + 1) * 2000)), 64,
                             rng.spawn(i)) for i in range(7)]
        m = merge_tree(samples, rng=rng, mode=mode)
        assert m.population_size == 14_000
        assert m.size == 64
        assert set(m.values()) <= set(range(14_000))

    def test_unknown_mode(self, rng):
        s = hr_sample(list(range(100)), 64, rng)
        with pytest.raises(ConfigurationError):
            merge_tree([s, s], rng=rng, mode="bogus")

    def test_custom_merger(self, rng):
        calls = []

        def merger(a, b):
            calls.append((a.size, b.size))
            return hr_merge(a, b, rng=rng)

        samples = [hr_sample(list(range(i * 2000, (i + 1) * 2000)), 32,
                             rng.spawn(i)) for i in range(4)]
        merge_tree(samples, rng=rng, merger=merger)
        assert len(calls) == 3

    def test_odd_carry_joins_next_level_front(self, rng):
        # Five single-value exhaustive samples of distinct population
        # sizes make each merge's operands readable off its output.
        # The unpaired fifth sample (pop 30) must be carried into the
        # NEXT level's first pairing — not ride the tail to the root:
        # level 0: (30,30) (30,30) carry 30
        # level 1: (30,60) carry 60 -> (60,90) at the root.
        calls = []

        def merger(a, b):
            calls.append((a.population_size, b.population_size))
            return hr_merge(a, b, rng=rng)

        pops = [30, 30, 30, 30, 30]
        samples = [hr_sample(list(range(sum(pops[:i]),
                                        sum(pops[:i + 1]))), 30,
                             rng.spawn(i)) for i in range(len(pops))]
        merged = merge_tree(samples, rng=rng, merger=merger)
        assert merged.population_size == 150
        assert calls == [(30, 30), (30, 30), (30, 60), (60, 90)]

    def test_parallel_mode_covers_population(self, rng):
        samples = [hr_sample(list(range(i * 2000, (i + 1) * 2000)), 64,
                             rng.spawn(i)) for i in range(7)]
        m = merge_tree(samples, rng=rng, mode="parallel")
        assert m.population_size == 14_000
        assert m.size == 64
        assert set(m.values()) <= set(range(14_000))

    def test_parallel_rejects_custom_merger(self, rng):
        samples = [hr_sample(list(range(100)), 16, rng.spawn(i))
                   for i in range(2)]
        with pytest.raises(ConfigurationError):
            merge_tree(samples, rng=rng, mode="parallel",
                       merger=lambda a, b: a)

    def test_executor_requires_parallel_mode(self, rng):
        from repro.warehouse.parallel import ThreadExecutor

        samples = [hr_sample(list(range(100)), 16, rng.spawn(i))
                   for i in range(2)]
        with pytest.raises(ConfigurationError):
            merge_tree(samples, rng=rng, mode="serial",
                       executor=ThreadExecutor(2))


class TestMergeProperties:
    @given(st.integers(min_value=2, max_value=6),
           st.integers(min_value=100, max_value=2000),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_random_merge_trees_keep_invariants(self, parts, per_part,
                                                seed):
        rng = SplittableRng(seed)
        samples = []
        for i in range(parts):
            values = [rng.randrange(500) for _ in range(per_part)]
            if i % 2 == 0:
                samples.append(hb_sample(values, 64, rng.spawn("s", i)))
            else:
                samples.append(hr_sample(values, 64, rng.spawn("s", i)))
        m = merge_tree(samples, rng=rng)
        m.check_invariants()
        assert m.population_size == parts * per_part

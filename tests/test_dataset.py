"""Tests for repro.warehouse.dataset (PartitionKey)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.warehouse.dataset import PartitionKey


class TestPartitionKey:
    def test_str_round_trip(self):
        k = PartitionKey("orders.amount", 2, 5)
        assert PartitionKey.parse(str(k)) == k

    def test_defaults(self):
        k = PartitionKey("d")
        assert k.stream == 0
        assert k.seq == 0

    def test_ordering(self):
        a = PartitionKey("d", 0, 1)
        b = PartitionKey("d", 0, 2)
        c = PartitionKey("d", 1, 0)
        assert sorted([c, b, a]) == [a, b, c]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PartitionKey("")
        with pytest.raises(ConfigurationError):
            PartitionKey("a/b")
        with pytest.raises(ConfigurationError):
            PartitionKey("d", -1, 0)
        with pytest.raises(ConfigurationError):
            PartitionKey("d", 0, -1)

    def test_parse_errors(self):
        with pytest.raises(ConfigurationError):
            PartitionKey.parse("no-slashes")
        with pytest.raises(ConfigurationError):
            PartitionKey.parse("d/x/y")

    def test_hashable(self):
        assert len({PartitionKey("d", 0, 0), PartitionKey("d", 0, 0)}) == 1

    def test_filename_safe(self):
        name = PartitionKey("sch:tab.col", 1, 2).filename()
        assert "/" not in name
        assert ":" not in name
        assert name.endswith(".sample.json")

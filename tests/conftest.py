"""Shared fixtures for the test suite.

All statistical acceptance tests run on fixed seeds (so the suite is
deterministic) with generous significance thresholds: a uniformity test
asserts ``p > ALPHA`` with ``ALPHA = 1e-4``, i.e. it only fails on
overwhelming evidence of non-uniformity — which is exactly what we want
for detecting real bugs without flakiness.
"""

from __future__ import annotations

import pytest

from repro.rng import SplittableRng

#: Significance floor for statistical acceptance tests.
ALPHA = 1e-4


@pytest.fixture()
def rng() -> SplittableRng:
    """A deterministic master RNG, fresh per test."""
    return SplittableRng(987_654_321)

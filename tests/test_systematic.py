"""Tests for repro.sampling.systematic."""

from __future__ import annotations

import pytest

from conftest import ALPHA
from repro.core.phases import SampleKind
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.sampling.systematic import SystematicSampler
from repro.stats.uniformity import (inclusion_frequency_test,
                                    subset_frequency_test)
from repro.testkit import sweep


class TestBasics:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            SystematicSampler(0, rng)

    def test_step_one_takes_everything(self, rng):
        s = SystematicSampler(1, rng)
        s.feed_many(range(10))
        assert s.sample == list(range(10))

    def test_size_tightly_controlled(self, rng):
        for seed in range(10):
            s = SystematicSampler(10, SplittableRng(seed))
            s.feed_many(range(105))
            assert len(s.sample) in (10, 11)

    def test_fixed_stride(self, rng):
        s = SystematicSampler(7, rng)
        s.feed_many(range(100))
        taken = s.sample
        diffs = {b - a for a, b in zip(taken, taken[1:])}
        assert diffs == {7}
        assert taken[0] == s.start

    def test_feed_equivalent_to_feed_many(self):
        a = SystematicSampler(5, SplittableRng(3))
        for v in range(53):
            a.feed(v)
        b = SystematicSampler(5, SplittableRng(3))
        b.feed_many(list(range(53)))
        assert a.sample == b.sample

    def test_feed_many_across_batches(self):
        a = SystematicSampler(5, SplittableRng(4))
        a.feed_many(list(range(23)))
        a.feed_many(list(range(23, 53)))
        b = SystematicSampler(5, SplittableRng(4))
        b.feed_many(list(range(53)))
        assert a.sample == b.sample

    def test_finalize_closes(self, rng):
        s = SystematicSampler(2, rng)
        s.finalize()
        with pytest.raises(ProtocolError):
            s.feed(1)


class TestStatistics:
    def test_first_order_uniform(self, rng):
        """Each element included with probability exactly 1/step."""
        def sample_fn(values, child):
            s = SystematicSampler(4, child)
            s.feed_many(values)
            return s.finalize()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(20)), trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_not_second_order_uniform(self, rng):
        """The design caveat: subsets are NOT equally likely (elements a
        step apart always co-occur) — the subset test must reject."""
        def sample_fn(values, child):
            s = SystematicSampler(3, child)
            s.feed_many(values)
            return s.finalize()

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(6)), size=2, trials=1_000,
                rng=child),
            rng=rng, seeds=3, alpha=1e-10)
        assert result.all_rejected, result.describe()


class TestToSample:
    def test_warehouse_packaging(self, rng):
        s = SystematicSampler(10, rng)
        s.feed_many(range(1000))
        ws = s.to_sample()
        assert ws.kind is SampleKind.RESERVOIR
        assert ws.scheme == "systematic"
        assert ws.population_size == 1000
        assert ws.size == 100

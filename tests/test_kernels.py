"""The kernel backend layer: selection plumbing and cross-backend laws.

Byte-identity across merge modes/executors per backend is covered by
``tests/test_parallel_merge.py`` (whose differential sweep repeats per
backend); this file tests the registry itself — resolution, the env
contract, error cases — plus the statistical and numerical agreement
between the numpy backend and the pure-Python reference.
"""

from __future__ import annotations

import math
import os

import pytest

from conftest import ALPHA
from repro import SplittableRng
from repro.core.histogram import CompactHistogram
from repro.core.purge import purge_bernoulli, purge_reservoir
from repro.errors import ConfigurationError
from repro.kernels import (KERNEL_BACKEND_ENV, active_backend,
                           available_backends, binomial_counts,
                           draw_hypergeometric, draw_hypergeometric_batch,
                           hypergeometric_pmf, numpy_available, set_backend,
                           srs_counts, use_backend)
from repro.sampling.distributions import \
    hypergeometric_pmf as reference_pmf
from repro.stats.uniformity import chi_square_pvalue
from repro.testkit import sweep

requires_numpy = pytest.mark.skipif(not numpy_available(),
                                    reason="numpy not installed")


class TestSelection:
    def test_active_backend_is_available(self):
        assert active_backend() in available_backends()

    def test_python_backend_always_available(self):
        assert "python" in available_backends()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            set_backend("fortran")

    def test_unknown_backend_leaves_selection_untouched(self):
        before = active_backend()
        with pytest.raises(ConfigurationError):
            set_backend("fortran")
        assert active_backend() == before

    def test_numpy_rejected_when_unavailable(self, monkeypatch):
        monkeypatch.setattr("repro.kernels.numpy_available",
                            lambda: False)
        with pytest.raises(ConfigurationError, match="perf"):
            set_backend("numpy")

    def test_auto_degrades_without_numpy(self, monkeypatch):
        before = active_backend()
        monkeypatch.setattr("repro.kernels.numpy_available",
                            lambda: False)
        assert set_backend("auto") == "python"
        assert active_backend() == "python"
        monkeypatch.undo()  # before restoring a possibly-numpy backend
        set_backend(before)

    def test_set_backend_syncs_environment(self):
        with use_backend("python"):
            assert os.environ[KERNEL_BACKEND_ENV] == "python"

    def test_use_backend_restores_previous(self):
        before = active_backend()
        with use_backend("python"):
            assert active_backend() == "python"
        assert active_backend() == before

    def test_use_backend_restores_after_exception(self):
        before = active_backend()
        with pytest.raises(RuntimeError):
            with use_backend("python"):
                raise RuntimeError("boom")
        assert active_backend() == before


class TestPythonBackendLaws:
    """The reference backend against the closed-form distributions."""

    def test_pmf_matches_reference(self):
        with use_backend("python"):
            assert hypergeometric_pmf(13, 9, 7) == reference_pmf(13, 9, 7)

    def test_batch_is_iterated_scalar_draws(self):
        # A batch and one-by-one draws off an identical rng consume the
        # same stream and must produce the same values.
        with use_backend("python"):
            batch = draw_hypergeometric_batch(40, 60, 12,
                                              SplittableRng(3), 6)
            rng = SplittableRng(3)
            singles = [draw_hypergeometric(40, 60, 12, rng)
                       for _ in range(6)]
        assert batch == singles

    def test_binomial_counts_validates_rate(self):
        with use_backend("python"):
            with pytest.raises(ConfigurationError):
                binomial_counts([3, 2], 1.5, SplittableRng(1))

    def test_srs_counts_edges(self):
        with use_backend("python"):
            rng = SplittableRng(1)
            assert srs_counts([3, 2], 0, rng) == [0, 0]
            assert srs_counts([3, 2], 5, rng) == [3, 2]
            with pytest.raises(ConfigurationError):
                srs_counts([3, 2], 6, rng)

    def test_srs_counts_preserves_total(self):
        with use_backend("python"):
            rng = SplittableRng(9)
            for size in (1, 3, 6, 9):
                kept = srs_counts([4, 1, 3, 2], size, rng)
                assert sum(kept) == size
                assert all(0 <= k <= r
                           for k, r in zip(kept, [4, 1, 3, 2]))


@requires_numpy
class TestNumpyBackendLaws:
    """The vectorized backend against the same laws."""

    def test_pmf_close_to_reference(self):
        for n1, n2, k in ((13, 9, 7), (200, 150, 64), (5, 5, 10),
                          (1000, 2, 2), (3, 400, 100)):
            want = reference_pmf(n1, n2, k)
            with use_backend("numpy"):
                got = hypergeometric_pmf(n1, n2, k)
            assert len(got) == len(want)
            for w, g in zip(want, got):
                assert math.isclose(w, g, rel_tol=1e-9, abs_tol=1e-12)

    def test_draws_repeatable_same_seed(self):
        with use_backend("numpy"):
            a = draw_hypergeometric_batch(40, 60, 12, SplittableRng(5), 20)
            b = draw_hypergeometric_batch(40, 60, 12, SplittableRng(5), 20)
        assert a == b

    def test_draws_in_support(self):
        n1, n2, k = 7, 30, 12
        lo, hi = max(0, k - n2), min(k, n1)
        with use_backend("numpy"):
            draws = draw_hypergeometric_batch(n1, n2, k,
                                              SplittableRng(5), 200)
        assert all(lo <= d <= hi for d in draws)

    def test_batch_gof_against_pmf(self, rng):
        n1, n2, k = 13, 9, 7
        pmf = reference_pmf(n1, n2, k)
        lo = max(0, k - n2)
        draws = 4000

        def gof(child):
            with use_backend("numpy"):
                values = draw_hypergeometric_batch(n1, n2, k, child,
                                                   draws)
            observed = [0] * len(pmf)
            for v in values:
                observed[v - lo] += 1
            return chi_square_pvalue(observed,
                                     [p_ * draws for p_ in pmf])

        result = sweep(gof, rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_srs_counts_preserves_total(self):
        with use_backend("numpy"):
            rng = SplittableRng(9)
            for size in (0, 1, 5, 10):
                kept = srs_counts([4, 1, 3, 2], size, rng)
                assert sum(kept) == size

    def test_binomial_counts_vectorized_matches_law(self):
        n, q, trials = 40, 0.3, 3000
        with use_backend("numpy"):
            kept = binomial_counts([n] * trials, q, SplittableRng(23))
        mean = sum(kept) / trials
        # Mean within 5 sigma of n*q.
        sigma = math.sqrt(n * q * (1 - q) / trials)
        assert abs(mean - n * q) < 5 * sigma


class TestPurgesPerBackend:
    """The Fig. 3/4 purges hold their invariants on every backend."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_purge_reservoir_size_exact(self, backend):
        hist = CompactHistogram.from_values([1, 1, 1, 2, 3, 3, 4, 5, 5, 5])
        with use_backend(backend):
            out = purge_reservoir(hist, 4, SplittableRng(2))
        assert out.size == 4

    @pytest.mark.parametrize("backend", available_backends())
    def test_purge_bernoulli_subset(self, backend):
        hist = CompactHistogram.from_values(list(range(30)) * 2)
        with use_backend(backend):
            out = purge_bernoulli(hist, 0.5, SplittableRng(2))
        pairs = dict(out.pairs())
        assert all(0 < c <= 2 for c in pairs.values())
        assert set(pairs) <= set(range(30))

    @pytest.mark.parametrize("backend", available_backends())
    def test_purges_repeatable_within_backend(self, backend):
        hist = CompactHistogram.from_values(list(range(50)) * 3)
        with use_backend(backend):
            first = dict(purge_reservoir(hist, 20,
                                         SplittableRng(4)).pairs())
            second = dict(purge_reservoir(hist, 20,
                                          SplittableRng(4)).pairs())
        assert first == second

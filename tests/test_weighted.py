"""Tests for repro.sampling.weighted (biased sampling designs)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.sampling.weighted import (WeightedBernoulliSampler,
                                     WeightedReservoirSampler,
                                     merge_weighted)


class TestWeightedReservoir:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            WeightedReservoirSampler(0, rng)
        s = WeightedReservoirSampler(2, rng)
        with pytest.raises(ConfigurationError):
            s.feed("x", weight=0.0)

    def test_fixed_size(self, rng):
        s = WeightedReservoirSampler(16, rng)
        s.feed_many((v, 1.0) for v in range(1000))
        assert len(s.values()) == 16
        assert s.seen == 1000
        assert s.total_weight == pytest.approx(1000.0)

    def test_short_stream_keeps_everything(self, rng):
        s = WeightedReservoirSampler(10, rng)
        s.feed_many((v, 2.0) for v in range(4))
        assert sorted(s.values()) == [0, 1, 2, 3]

    def test_heavy_element_nearly_always_kept(self, rng):
        hits = 0
        trials = 300
        for t in range(trials):
            s = WeightedReservoirSampler(5, rng.spawn(t))
            for v in range(200):
                s.feed(v, weight=10_000.0 if v == 42 else 1.0)
            hits += 42 in s.values()
        assert hits > 0.95 * trials

    def test_unit_weights_reduce_to_uniform(self, rng):
        """All weights 1 -> inclusion probability k/n for everyone."""
        n, k, trials = 40, 4, 3_000
        counts = [0] * n
        for t in range(trials):
            s = WeightedReservoirSampler(k, rng.spawn(t))
            for v in range(n):
                s.feed(v, 1.0)
            for v in s.values():
                counts[v] += 1
        expected = trials * k / n
        for c in counts:
            assert abs(c - expected) < 6 * (expected ** 0.5) + 5

    def test_selection_proportional_to_weight(self, rng):
        """With capacity 1, selection probability is w_i / W exactly."""
        weights = {0: 1.0, 1: 2.0, 2: 7.0}
        trials = 6_000
        counts = {v: 0 for v in weights}
        for t in range(trials):
            s = WeightedReservoirSampler(1, rng.spawn(t))
            for v, w in weights.items():
                s.feed(v, w)
            counts[s.values()[0]] += 1
        total = sum(weights.values())
        for v, w in weights.items():
            assert abs(counts[v] / trials - w / total) < 0.03

    def test_finalize_closes(self, rng):
        s = WeightedReservoirSampler(2, rng)
        s.finalize()
        with pytest.raises(ProtocolError):
            s.feed("x", 1.0)


class TestMergeWeighted:
    def test_merged_size(self, rng):
        a = WeightedReservoirSampler(8, rng.spawn("a"))
        b = WeightedReservoirSampler(8, rng.spawn("b"))
        a.feed_many((v, 1.0) for v in range(100))
        b.feed_many((v, 1.0) for v in range(100, 200))
        merged = merge_weighted(a, b)
        assert len(merged) == 8
        assert set(merged) <= set(range(200))

    def test_capacity_validation(self, rng):
        a = WeightedReservoirSampler(4, rng.spawn("a"))
        b = WeightedReservoirSampler(4, rng.spawn("b"))
        with pytest.raises(ConfigurationError):
            merge_weighted(a, b, capacity=0)

    def test_merge_matches_single_pass_distribution(self, rng):
        """Merging two A-Res halves = A-Res over the whole stream:
        per-element inclusion frequencies agree."""
        n, k, trials = 30, 3, 2_500
        counts_merged = [0] * n
        counts_single = [0] * n
        for t in range(trials):
            child = rng.spawn(t)
            a = WeightedReservoirSampler(k, child.spawn("a"))
            b = WeightedReservoirSampler(k, child.spawn("b"))
            for v in range(n // 2):
                a.feed(v, 1.0 + v % 3)
            for v in range(n // 2, n):
                b.feed(v, 1.0 + v % 3)
            for v in merge_weighted(a, b):
                counts_merged[v] += 1
            s = WeightedReservoirSampler(k, child.spawn("s"))
            for v in range(n):
                s.feed(v, 1.0 + v % 3)
            for v in s.values():
                counts_single[v] += 1
        for v in range(n):
            diff = abs(counts_merged[v] - counts_single[v])
            assert diff < 6 * (max(counts_single[v], 20) ** 0.5) + 10


class TestWeightedBernoulli:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            WeightedBernoulliSampler(0.0, rng)
        s = WeightedBernoulliSampler(10.0, rng)
        with pytest.raises(ConfigurationError):
            s.feed("x", -1.0)

    def test_heavy_always_included(self, rng):
        s = WeightedBernoulliSampler(10.0, rng)
        assert s.feed("heavy", weight=15.0) is True

    def test_inclusion_proportional(self, rng):
        s = WeightedBernoulliSampler(100.0, rng)
        trials = 20_000
        included = sum(s.feed(i, weight=25.0) for i in range(trials))
        assert abs(included / trials - 0.25) < 0.02

    def test_thin_to(self, rng):
        s = WeightedBernoulliSampler(10.0, rng)
        s.feed_many((v, 5.0) for v in range(10_000))
        before = len(s.sample)
        s.thin_to(20.0)
        # Survival ratio = (5/20)/(5/10) = 0.5.
        assert abs(len(s.sample) / before - 0.5) < 0.1
        with pytest.raises(ConfigurationError):
            s.thin_to(5.0)

    def test_total_weight_estimate(self, rng):
        s = WeightedBernoulliSampler(50.0, rng)
        weights = [float(1 + i % 100) for i in range(20_000)]
        s.feed_many(zip(range(20_000), weights))
        truth = sum(weights)
        est = s.estimate_total_weight()
        assert abs(est - truth) / truth < 0.05

    def test_finalize_closes(self, rng):
        s = WeightedBernoulliSampler(1.0, rng)
        s.finalize()
        with pytest.raises(ProtocolError):
            s.feed("x", 1.0)

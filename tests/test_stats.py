"""Tests for repro.stats (uniformity machinery and summaries)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.sampling.reservoir import reservoir_subsample
from repro.stats.summaries import (coefficient_of_variation, mean,
                                   relative_error, sem, stdev)
from repro.stats.uniformity import (chi_square_pvalue,
                                    concise_nonuniformity_demo,
                                    inclusion_frequency_test,
                                    regularized_gamma_q,
                                    subset_frequency_test)
from repro.testkit import sweep


class TestSummaries:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        with pytest.raises(ConfigurationError):
            mean([])

    def test_stdev(self):
        assert stdev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == \
            pytest.approx(2.138, rel=1e-3)
        assert stdev([5.0]) == 0.0
        with pytest.raises(ConfigurationError):
            stdev([])

    def test_sem(self):
        xs = [1.0, 2.0, 3.0, 4.0]
        assert sem(xs) == pytest.approx(stdev(xs) / 2.0)

    def test_relative_error(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)
        assert relative_error(5.0, 0.0) == 5.0

    def test_cv(self):
        assert coefficient_of_variation([10.0, 10.0]) == 0.0
        assert coefficient_of_variation([0.0, 0.0]) == 0.0
        assert coefficient_of_variation([5.0, 15.0]) > 0.0


class TestGammaQ:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            regularized_gamma_q(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            regularized_gamma_q(1.0, -1.0)

    def test_edges(self):
        assert regularized_gamma_q(2.0, 0.0) == 1.0

    def test_exponential_case(self):
        """Q(1, x) = exp(-x)."""
        for x in (0.1, 1.0, 3.0, 10.0):
            assert math.isclose(regularized_gamma_q(1.0, x),
                                math.exp(-x), rel_tol=1e-10)

    def test_matches_scipy(self):
        scipy_special = pytest.importorskip("scipy.special")
        for a, x in [(0.5, 0.3), (5.0, 4.0), (50.0, 60.0), (2.5, 0.01)]:
            assert math.isclose(regularized_gamma_q(a, x),
                                scipy_special.gammaincc(a, x),
                                rel_tol=1e-9, abs_tol=1e-14)


class TestChiSquare:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chi_square_pvalue([1.0], [1.0])
        with pytest.raises(ConfigurationError):
            chi_square_pvalue([1.0, 2.0], [1.0])
        with pytest.raises(ConfigurationError):
            chi_square_pvalue([1.0, 2.0], [0.0, 3.0])

    def test_perfect_fit(self):
        assert chi_square_pvalue([10.0, 10.0], [10.0, 10.0]) == \
            pytest.approx(1.0)

    def test_terrible_fit(self):
        # Deterministic input: the p-value is a fixed constant, not a
        # random variate, so no seed sweep applies here.
        assert chi_square_pvalue(  # repro: noqa[RPR051]
            [100.0, 0.0], [50.0, 50.0]) < 1e-10

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        observed = [48.0, 52.0, 61.0, 39.0]
        expected = [50.0] * 4
        ours = chi_square_pvalue(observed, expected)
        stat, theirs = scipy_stats.chisquare(observed, expected)
        assert math.isclose(ours, theirs, rel_tol=1e-8)


class TestUniformityHarness:
    def test_inclusion_requires_distinct(self, rng):
        with pytest.raises(ConfigurationError):
            inclusion_frequency_test(lambda v, r: v, [1, 1, 2], 10, rng)

    def test_inclusion_detects_bias(self, rng):
        """A deliberately biased sampler must be rejected."""
        def biased(values, child):
            # Always keep the first element, sample the rest fairly.
            rest = reservoir_subsample(values[1:], 2, child)
            return [values[0]] + rest

        result = sweep(
            lambda child: inclusion_frequency_test(
                biased, list(range(10)), trials=1_000, rng=child),
            rng=rng, seeds=3, alpha=1e-6)
        assert result.all_rejected, result.describe()

    def test_inclusion_accepts_uniform(self, rng):
        def uniform(values, child):
            return reservoir_subsample(values, 3, child)

        result = sweep(
            lambda child: inclusion_frequency_test(
                uniform, list(range(10)), trials=1_000, rng=child),
            rng=rng, seeds=3, alpha=1e-4)
        assert result.accepted, result.describe()

    def test_subset_requires_enough_trials(self, rng):
        def uniform(values, child):
            return reservoir_subsample(values, 2, child)

        with pytest.raises(ConfigurationError):
            subset_frequency_test(uniform, list(range(6)), size=2,
                                  trials=10, rng=rng)

    def test_subset_detects_nonuniform_scheme(self, rng):
        """A scheme uniform element-wise but not subset-wise: sample two
        *adjacent* elements (cyclically).  Inclusion frequencies are
        perfectly even, but most 2-subsets never occur."""
        def adjacent(values, child):
            i = child.randrange(len(values))
            return [values[i], values[(i + 1) % len(values)]]

        # Element-level test cannot see the problem...
        incl = sweep(
            lambda child: inclusion_frequency_test(
                adjacent, list(range(6)), trials=1_000, rng=child),
            rng=rng.spawn("incl"), seeds=3, alpha=1e-4)
        assert incl.accepted, incl.describe()
        # ...the subset-level test nails it.
        sub = sweep(
            lambda child: subset_frequency_test(
                adjacent, list(range(6)), size=2, trials=1_000,
                rng=child),
            rng=rng.spawn("sub"), seeds=3, alpha=1e-10)
        assert sub.all_rejected, sub.describe()


class TestConciseDemo:
    def test_counts_sum_to_trials(self, rng):
        counts = concise_nonuniformity_demo(500, rng)
        assert sum(counts.values()) == 500
        assert counts["H3"] == 0

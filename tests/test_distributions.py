"""Tests for repro.sampling.distributions."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ALPHA
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.sampling.distributions import (AliasTable, CachedHypergeometric,
                                          hypergeometric_logpmf_term,
                                          hypergeometric_pmf,
                                          sample_hypergeometric, zipf_pmf,
                                          ZipfSampler)
from repro.stats.uniformity import chi_square_pvalue
from repro.testkit import sweep


def gof_pvalue(sample_once, pmf, trials, child):
    """Draw ``trials`` samples and chi-square them against ``pmf``,
    dropping cells whose expected count falls below 5."""
    counts = [0] * len(pmf)
    for _ in range(trials):
        counts[sample_once(child)] += 1
    observed, expected = [], []
    for c, p in zip(counts, pmf):
        if p * trials >= 5:
            observed.append(c)
            expected.append(p * trials)
    return chi_square_pvalue(observed, expected)


class TestHypergeometricPmf:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hypergeometric_pmf(-1, 5, 2)
        with pytest.raises(ConfigurationError):
            hypergeometric_pmf(5, 5, 11)

    def test_normalization(self):
        for n1, n2, k in [(5, 5, 4), (100, 50, 30), (3, 7, 9),
                          (100_000, 50_000, 890), (1, 1, 2)]:
            pmf = hypergeometric_pmf(n1, n2, k)
            assert math.isclose(math.fsum(pmf), 1.0, rel_tol=1e-8)
            assert len(pmf) == k + 1
            assert all(p >= 0.0 for p in pmf)

    def test_support(self):
        """P(l) = 0 outside max(0, k-n2) <= l <= min(k, n1)."""
        pmf = hypergeometric_pmf(5, 3, 6)
        assert pmf[0] == pmf[1] == pmf[2] == 0.0  # l < k - n2 = 3
        assert pmf[6] == 0.0                       # l > n1 = 5
        assert all(p > 0.0 for p in pmf[3:6])

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        n1, n2, k = 40, 25, 18
        ours = hypergeometric_pmf(n1, n2, k)
        theirs = [scipy_stats.hypergeom.pmf(l, n1 + n2, n1, k)
                  for l in range(k + 1)]
        for o, t in zip(ours, theirs):
            assert math.isclose(o, t, rel_tol=1e-9, abs_tol=1e-12)

    def test_recursion_identity_eq3(self):
        """Adjacent pmf values satisfy eq. (3) exactly."""
        n1, n2, k = 30, 20, 12
        pmf = hypergeometric_pmf(n1, n2, k)
        for l in range(k):
            if pmf[l] == 0.0:
                continue
            expected = pmf[l] * ((k - l) * (n1 - l)
                                 / ((l + 1) * (n2 - k + l + 1)))
            assert math.isclose(pmf[l + 1], expected, rel_tol=1e-9)

    def test_mean(self):
        """E[L] = k * n1 / (n1 + n2)."""
        n1, n2, k = 60, 40, 25
        pmf = hypergeometric_pmf(n1, n2, k)
        mean = sum(l * p for l, p in enumerate(pmf))
        assert math.isclose(mean, k * n1 / (n1 + n2), rel_tol=1e-9)

    def test_logpmf_term_out_of_support(self):
        assert hypergeometric_logpmf_term(5, 3, 6, 0) == float("-inf")
        assert hypergeometric_logpmf_term(5, 3, 6, 7) == float("-inf")

    @given(st.integers(min_value=0, max_value=40),
           st.integers(min_value=0, max_value=40),
           st.data())
    @settings(max_examples=60)
    def test_property_normalized(self, n1, n2, data):
        if n1 + n2 == 0:
            return
        k = data.draw(st.integers(min_value=0, max_value=n1 + n2))
        pmf = hypergeometric_pmf(n1, n2, k)
        assert math.isclose(math.fsum(pmf), 1.0, rel_tol=1e-8)


class TestSampleHypergeometric:
    def test_unknown_method(self, rng):
        with pytest.raises(ConfigurationError):
            sample_hypergeometric(5, 5, 3, rng, method="bogus")

    @pytest.mark.parametrize("method", ["inversion", "alias"])
    def test_distribution(self, rng, method):
        n1, n2, k = 12, 8, 6
        pmf = hypergeometric_pmf(n1, n2, k)
        result = sweep(
            lambda child: gof_pvalue(
                lambda c: sample_hypergeometric(n1, n2, k, c,
                                                method=method),
                pmf, 7_000, child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, f"{method}: {result.describe()}"


class TestAliasTable:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AliasTable([])
        with pytest.raises(ConfigurationError):
            AliasTable([0.0, 0.0])
        with pytest.raises(ConfigurationError):
            AliasTable([0.5, -0.1])

    def test_len(self):
        assert len(AliasTable([0.3, 0.7])) == 2

    def test_degenerate_single(self, rng):
        t = AliasTable([1.0])
        assert all(t.sample(rng) == 0 for _ in range(50))

    def test_point_mass(self, rng):
        t = AliasTable([0.0, 1.0, 0.0])
        assert all(t.sample(rng) == 1 for _ in range(100))

    def test_distribution(self, rng):
        pmf = [0.1, 0.2, 0.3, 0.25, 0.15]
        t = AliasTable(pmf)
        result = sweep(
            lambda child: gof_pvalue(t.sample, pmf, 10_000, child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_unnormalized_input(self, rng):
        """Weights are normalized internally."""
        t = AliasTable([2.0, 6.0])  # 25% / 75%
        trials = 20_000
        ones = sum(t.sample(rng) == 1 for _ in range(trials))
        assert abs(ones / trials - 0.75) < 0.02


class TestCachedHypergeometric:
    def test_cache_reuse(self, rng):
        cache = CachedHypergeometric()
        cache.sample(10, 10, 5, rng)
        cache.sample(10, 10, 5, rng)
        assert len(cache) == 1
        cache.sample(20, 10, 5, rng)
        assert len(cache) == 2

    def test_distribution_through_cache(self, rng):
        cache = CachedHypergeometric()
        n1, n2, k = 10, 6, 5
        pmf = hypergeometric_pmf(n1, n2, k)
        result = sweep(
            lambda child: gof_pvalue(
                lambda c: cache.sample(n1, n2, k, c),
                pmf, 7_000, child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()


class TestZipf:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            zipf_pmf(0)
        with pytest.raises(ConfigurationError):
            zipf_pmf(10, -1.0)

    def test_normalized_and_monotone(self):
        pmf = zipf_pmf(100, 1.0)
        assert math.isclose(math.fsum(pmf), 1.0, rel_tol=1e-9)
        assert all(pmf[i] >= pmf[i + 1] for i in range(len(pmf) - 1))

    def test_exponent_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert all(math.isclose(p, 0.1) for p in pmf)

    def test_sampler_range(self, rng):
        z = ZipfSampler(4000)
        values = z.sample_many(2_000, rng)
        assert all(1 <= v <= 4000 for v in values)
        assert z.v_max == 4000
        assert z.exponent == 1.0

    def test_sampler_skew(self, rng):
        """Value 1 should be by far the most frequent under exponent 1."""
        z = ZipfSampler(1000)
        values = z.sample_many(20_000, rng)
        ones = values.count(1)
        # P(1) = 1/H_1000 ~ 0.133.
        assert abs(ones / len(values) - 1.0 / sum(1 / v for v in
                                                  range(1, 1001))) < 0.02

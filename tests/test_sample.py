"""Tests for repro.core.sample (WarehouseSample) and repro.core.runs."""

from __future__ import annotations

import pytest

from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.runs import RepeatedValue
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

MODEL = FootprintModel(value_bytes=8, count_bytes=4)


def make_sample(values, kind, population, bound=1000, rate=None,
                scheme="hb"):
    return WarehouseSample(
        histogram=CompactHistogram.from_values(values),
        kind=kind,
        population_size=population,
        bound_values=bound,
        rate=rate,
        scheme=scheme,
        model=MODEL,
    )


class TestValidation:
    def test_bernoulli_needs_rate(self):
        with pytest.raises(ConfigurationError):
            make_sample([1], SampleKind.BERNOULLI, 10)

    def test_rate_range(self):
        with pytest.raises(ConfigurationError):
            make_sample([1], SampleKind.BERNOULLI, 10, rate=0.0)
        with pytest.raises(ConfigurationError):
            make_sample([1], SampleKind.BERNOULLI, 10, rate=1.5)

    def test_exhaustive_must_cover_population(self):
        with pytest.raises(ConfigurationError):
            make_sample([1, 2], SampleKind.EXHAUSTIVE, 10)

    def test_sample_cannot_exceed_population(self):
        with pytest.raises(ConfigurationError):
            make_sample([1, 2, 3], SampleKind.RESERVOIR, 2)

    def test_negative_population(self):
        with pytest.raises(ConfigurationError):
            make_sample([], SampleKind.RESERVOIR, -1)

    def test_bound_positive(self):
        with pytest.raises(ConfigurationError):
            make_sample([1], SampleKind.RESERVOIR, 10, bound=0)


class TestProperties:
    def test_exhaustive_scale_factor(self):
        s = make_sample([1, 2, 3], SampleKind.EXHAUSTIVE, 3)
        assert s.scale_factor == 1.0
        assert s.sampling_fraction == 1.0

    def test_bernoulli_scale_factor(self):
        s = make_sample([1, 2], SampleKind.BERNOULLI, 100, rate=0.02)
        assert s.scale_factor == pytest.approx(50.0)

    def test_reservoir_scale_factor(self):
        s = make_sample([1, 2, 3, 4], SampleKind.RESERVOIR, 100)
        assert s.scale_factor == pytest.approx(25.0)

    def test_empty_reservoir_scale(self):
        s = make_sample([], SampleKind.RESERVOIR, 100)
        assert s.scale_factor == 0.0

    def test_footprint_accounting(self):
        s = make_sample([1, 1, 2], SampleKind.RESERVOIR, 10, bound=10)
        assert s.footprint_bytes == (8 + 4) + 8
        assert s.bound_bytes == 80

    def test_values_expand(self):
        s = make_sample([1, 1, 2], SampleKind.RESERVOIR, 10)
        assert sorted(s.values()) == [1, 1, 2]

    def test_with_scheme(self):
        s = make_sample([1], SampleKind.RESERVOIR, 10)
        assert s.with_scheme("hr").scheme == "hr"
        assert s.scheme == "hb"  # original untouched


class TestInvariants:
    def test_check_invariants_ok(self):
        s = make_sample([1, 2], SampleKind.RESERVOIR, 10, bound=5)
        s.check_invariants()

    def test_check_invariants_size_violation(self):
        s = make_sample(list(range(10)), SampleKind.RESERVOIR, 100,
                        bound=5)
        with pytest.raises(ConfigurationError):
            s.check_invariants()


class TestRepeatedValue:
    def test_basics(self):
        r = RepeatedValue("x", 3)
        assert len(r) == 3
        assert r[0] == r[2] == "x"
        assert list(r) == ["x", "x", "x"]

    def test_negative_index(self):
        assert RepeatedValue("x", 3)[-1] == "x"

    def test_index_out_of_range(self):
        with pytest.raises(IndexError):
            RepeatedValue("x", 3)[3]

    def test_slice(self):
        r = RepeatedValue("x", 10)[2:5]
        assert isinstance(r, RepeatedValue)
        assert len(r) == 3

    def test_negative_count(self):
        with pytest.raises(ConfigurationError):
            RepeatedValue("x", -1)

    def test_empty(self):
        assert list(RepeatedValue("x", 0)) == []

"""Cross-cutting property-based tests (hypothesis).

These exercise invariants that span multiple modules: arbitrary
feed/merge/rollout sequences must preserve the footprint bound, account
for every parent element exactly once, and keep samples loadable through
the serialization layer.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.merge import merge_tree
from repro.core.phases import SampleKind
from repro.rng import SplittableRng
from repro.warehouse.parallel import SampleTask, sample_partition
from repro.warehouse.storage import sample_from_dict, sample_to_dict

# Strategy: a partition spec = (scheme, size, value modulus).
partition_specs = st.tuples(
    st.sampled_from(["hb", "hr"]),
    st.integers(min_value=1, max_value=1500),
    st.integers(min_value=1, max_value=2000),
)


def build_sample(spec, bound, seed):
    scheme, size, modulus = spec
    values = [(i * 2654435761) % modulus for i in range(size)]
    return sample_partition(SampleTask(values=values, scheme=scheme,
                                       bound_values=bound, seed=seed))


class TestPipelineInvariants:
    @given(st.lists(partition_specs, min_size=1, max_size=5),
           st.integers(min_value=8, max_value=256),
           st.integers(min_value=0, max_value=10**6),
           st.sampled_from(["serial", "balanced"]))
    @settings(max_examples=30, deadline=None)
    def test_merge_tree_preserves_all_invariants(self, specs, bound, seed,
                                                 mode):
        rng = SplittableRng(seed)
        samples = [build_sample(spec, bound, seed + i)
                   for i, spec in enumerate(specs)]
        merged = merge_tree(samples, rng=rng, mode=mode)
        merged.check_invariants()
        # Population accounting: exact sum of parents.
        assert merged.population_size == sum(s[1] for s in specs)
        # Sample values must come from the union of parents' domains.
        moduli = max(s[2] for s in specs)
        assert all(0 <= v < moduli for v in merged.values())
        # The bound holds for non-exhaustive merges.
        if merged.kind is not SampleKind.EXHAUSTIVE:
            assert merged.size <= bound

    @given(partition_specs, st.integers(min_value=4, max_value=128),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_serialization_round_trip_arbitrary(self, spec, bound, seed):
        sample = build_sample(spec, bound, seed)
        restored = sample_from_dict(sample_to_dict(sample))
        assert restored.histogram == sample.histogram
        assert restored.kind is sample.kind
        assert restored.population_size == sample.population_size
        assert restored.rate == sample.rate
        restored.check_invariants()

    @given(partition_specs, st.integers(min_value=4, max_value=64),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_sample_size_never_exceeds_parent(self, spec, bound, seed):
        sample = build_sample(spec, bound, seed)
        assert sample.size <= sample.population_size
        assert sample.footprint_bytes <= sample.bound_bytes

    @given(st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_determinism(self, seed):
        spec = ("hr", 700, 900)
        a = build_sample(spec, 32, seed)
        b = build_sample(spec, 32, seed)
        assert a.histogram == b.histogram


class TestMergeAlgebra:
    @given(st.integers(min_value=0, max_value=10**5))
    @settings(max_examples=15, deadline=None)
    def test_merge_order_independence_of_population(self, seed):
        """Whatever the merge order, population accounting agrees and
        invariants hold (sample contents legitimately differ)."""
        rng = SplittableRng(seed)
        samples = [build_sample(("hr", 800, 5000), 64, seed + i)
                   for i in range(4)]
        serial = merge_tree(samples, rng=rng.spawn("s"), mode="serial")
        balanced = merge_tree(samples, rng=rng.spawn("b"),
                              mode="balanced")
        assert serial.population_size == balanced.population_size == 3200
        assert serial.size == balanced.size  # both pinned at min size

"""Tests for repro.testkit: corrections, battery, sweep, reporters.

The battery is the thing the rest of the suite leans on, so it gets
adversarial coverage of its own: a rigged always-biased sampler the
battery must reject, a fair sampler it must accept, tier/select
plumbing, negative-control semantics, exact checks, and the reporter
round-trip.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import capture
from repro.rng import SplittableRng
from repro.sampling.reservoir import reservoir_subsample
from repro.stats.uniformity import inclusion_frequency_test
from repro.testkit import (Battery, Check, adjust_pvalues, bh_adjust,
                           default_battery, holm_adjust, parse_json,
                           render_json, render_text, sweep)


class TestHolm:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            holm_adjust([])
        with pytest.raises(ConfigurationError):
            holm_adjust([0.5, 1.2])

    def test_single_pvalue_unchanged(self):
        assert holm_adjust([0.03]) == [0.03]

    def test_textbook_example(self):
        # Smallest is multiplied by m, next by m-1, ...
        adjusted = holm_adjust([0.01, 0.04, 0.03])
        assert adjusted[0] == pytest.approx(0.03)   # 0.01 * 3
        assert adjusted[2] == pytest.approx(0.06)   # 0.03 * 2
        assert adjusted[1] == pytest.approx(0.06)   # max(0.04*1, running)

    def test_monotone_and_clamped(self):
        adjusted = holm_adjust([0.9, 0.8, 0.5, 0.001])
        assert all(0.0 <= a <= 1.0 for a in adjusted)
        ranked = sorted(zip([0.9, 0.8, 0.5, 0.001], adjusted))
        assert all(a1 <= a2 for (_, a1), (_, a2)
                   in zip(ranked, ranked[1:]))

    def test_never_below_raw(self):
        raw = [0.2, 0.01, 0.7, 0.05]
        for p, a in zip(raw, holm_adjust(raw)):
            assert a >= p


class TestBH:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bh_adjust([])

    def test_single_pvalue_unchanged(self):
        assert bh_adjust([0.03]) == [0.03]

    def test_textbook_example(self):
        # m=4: sorted raws 0.01,0.02,0.03,0.04 -> i-th * m/i with a
        # reverse running min gives 0.04 across the board.
        adjusted = bh_adjust([0.04, 0.01, 0.03, 0.02])
        assert adjusted == pytest.approx([0.04] * 4)

    def test_less_conservative_than_holm(self):
        raw = [0.001, 0.008, 0.039, 0.041]
        for h, b in zip(holm_adjust(raw), bh_adjust(raw)):
            assert b <= h + 1e-12

    def test_dispatch(self):
        raw = [0.2, 0.01]
        assert adjust_pvalues(raw, "holm") == holm_adjust(raw)
        assert adjust_pvalues(raw, "bh") == bh_adjust(raw)
        with pytest.raises(ConfigurationError):
            adjust_pvalues(raw, "bonferroni")


def _uniformity_pvalue(sample_fn, child, trials):
    return inclusion_frequency_test(sample_fn, list(range(10)),
                                    trials=trials, rng=child)


def _fair(values, child):
    return reservoir_subsample(values, 3, child)


def _rigged(values, child):
    """Always keeps the first element: maximally biased inclusion."""
    return [values[0]] + reservoir_subsample(values[1:], 2, child)


class TestBatteryVerdicts:
    """The battery's raison d'etre: accept fair, reject rigged."""

    def _battery(self):
        battery = Battery()

        @battery.check("fair.inclusion")
        def fair_check(rng, scale):
            return _uniformity_pvalue(_fair, rng, 300 * scale)

        @battery.check("rigged.inclusion")
        def rigged_check(rng, scale):
            return _uniformity_pvalue(_rigged, rng, 300 * scale)

        return battery

    def test_fair_sampler_accepted(self, rng):
        report = self._battery().run(rng=rng, select=["fair.inclusion"])
        assert report.passed
        assert report.results[0].passed
        assert not any(report.results[0].rejected)

    def test_rigged_sampler_rejected(self, rng):
        report = self._battery().run(rng=rng,
                                     select=["rigged.inclusion"])
        assert not report.passed
        result = report.results[0]
        assert not result.passed
        assert all(result.rejected)  # bias this gross fails every seed

    def test_pooled_correction_spans_checks(self, rng):
        report = self._battery().run(rng=rng)
        assert report.pvalue_count == 2 * report.seeds
        # The fair check still passes even though the rigged check's
        # tiny p-values entered the same pooled correction.
        by_name = {r.check.name: r for r in report.results}
        assert by_name["fair.inclusion"].passed
        assert not by_name["rigged.inclusion"].passed

    def test_negative_controls_do_not_contaminate_positives(self, rng):
        """Control p-values (~0 by design) must stay out of the
        positive family's correction: BH's step-up would otherwise
        deflate the positives' adjusted p-values and reject spuriously.
        """
        feed = iter([0.02, 0.9])
        battery = Battery()
        battery.add(Check(name="pos", fn=lambda r, s: next(feed)))
        battery.add(Check(name="neg", expect_reject=True,
                          fn=lambda r, s: 1e-12))
        report = battery.run(rng=rng, seeds=2, alpha=0.03, method="bh")
        by_name = {r.check.name: r for r in report.results}
        # BH within the positive family alone: min(0.02 * 2, 0.9) =
        # 0.04 > alpha.  Pooled with the two ~0 controls it would be
        # 0.02 * 4/3 ~= 0.027 < alpha — a spurious rejection.
        assert by_name["pos"].adjusted == pytest.approx([0.04, 0.9])
        assert by_name["pos"].passed
        assert by_name["neg"].passed
        assert report.passed

    def test_negative_control_semantics(self, rng):
        battery = Battery()
        battery.add(Check(name="control", expect_reject=True,
                          fn=lambda r, scale: _uniformity_pvalue(
                              _rigged, r, 300 * scale)))
        report = battery.run(rng=rng)
        assert report.passed  # rejected on every seed == pass
        battery2 = Battery()
        battery2.add(Check(name="control", expect_reject=True,
                           fn=lambda r, scale: _uniformity_pvalue(
                               _fair, r, 300 * scale)))
        assert not battery2.run(rng=rng).passed


class TestBatteryPlumbing:
    def test_duplicate_name_rejected(self):
        battery = Battery()
        battery.add(Check(name="x", fn=lambda r, s: 0.5))
        with pytest.raises(ConfigurationError):
            battery.add(Check(name="x", fn=lambda r, s: 0.5))

    def test_check_validation(self):
        with pytest.raises(ConfigurationError):
            Check(name="x", fn=lambda r, s: 0.5, kind="bogus")
        with pytest.raises(ConfigurationError):
            Check(name="x", fn=lambda r, s: 0.5, tier="bogus")
        with pytest.raises(ConfigurationError):
            Check(name="x", fn=lambda r, s: [], kind="exact",
                  expect_reject=True)

    def test_decorator_description_from_docstring(self):
        battery = Battery()

        @battery.check("doc.check")
        def documented(rng, scale):
            """First line becomes the description.

            Not this one.
            """
            return 0.5

        check = battery.checks()[0]
        assert check.description == "First line becomes the description."

    def test_tier_selection_is_superset(self):
        battery = Battery()
        battery.add(Check(name="f", fn=lambda r, s: 0.5, tier="fast"))
        battery.add(Check(name="d", fn=lambda r, s: 0.5, tier="deep"))
        assert [c.name for c in battery.checks("fast")] == ["f"]
        assert [c.name for c in battery.checks("deep")] == ["f", "d"]
        assert [c.name for c in battery.checks()] == ["f", "d"]
        with pytest.raises(ConfigurationError):
            battery.checks("bogus")

    def test_select_deep_only_under_fast_tier_errors(self, rng):
        """Selecting a deep check under the fast tier must say so,
        not silently run an empty-or-partial battery with exit 0."""
        battery = Battery()
        battery.add(Check(name="f", fn=lambda r, s: 0.5, tier="fast"))
        battery.add(Check(name="d", fn=lambda r, s: 0.5, tier="deep"))
        with pytest.raises(ConfigurationError, match="--tier deep"):
            battery.run(rng=rng, select=["d"])
        with pytest.raises(ConfigurationError, match="'d'"):
            battery.run(rng=rng, select=["f", "d"])
        report = battery.run(rng=rng, tier="deep", seeds=2,
                             select=["d"])
        assert [r.check.name for r in report.results] == ["d"]

    def test_run_validation(self, rng):
        battery = Battery()
        battery.add(Check(name="x", fn=lambda r, s: 0.5))
        with pytest.raises(ConfigurationError):
            battery.run(rng=rng, tier="bogus")
        with pytest.raises(ConfigurationError):
            battery.run(rng=rng, alpha=0.0)
        with pytest.raises(ConfigurationError):
            battery.run(rng=rng, method="bogus")
        with pytest.raises(ConfigurationError):
            battery.run(rng=rng, seeds=0)
        with pytest.raises(ConfigurationError):
            battery.run(rng=rng, select=["nope"])

    def test_bad_pvalue_rejected(self, rng):
        battery = Battery()
        battery.add(Check(name="x", fn=lambda r, s: 1.5))
        with pytest.raises(ConfigurationError):
            battery.run(rng=rng)

    def test_exact_check_collects_failures(self, rng):
        battery = Battery()
        battery.add(Check(name="diff", kind="exact",
                          fn=lambda r, s: ["boom"]))
        report = battery.run(rng=rng, seeds=2)
        result = report.results[0]
        assert not result.passed
        assert result.failures == ["boom", "boom"]
        assert result.pvalues == []

    def test_exact_check_passes_when_silent(self, rng):
        battery = Battery()
        battery.add(Check(name="diff", kind="exact",
                          fn=lambda r, s: []))
        assert battery.run(rng=rng, seeds=1).passed

    def test_deterministic_given_seed(self):
        battery = Battery()
        battery.add(Check(name="p", fn=lambda r, s: r.random()))
        a = battery.run(rng=SplittableRng(7), seeds=3)
        b = battery.run(rng=SplittableRng(7), seeds=3)
        assert a.results[0].pvalues == b.results[0].pvalues

    def test_obs_metrics_emitted(self, rng):
        battery = Battery()
        battery.add(Check(name="good", fn=lambda r, s: 0.5))
        battery.add(Check(name="bad", fn=lambda r, s: 1e-12))
        with capture() as (registry, _):
            battery.run(rng=rng, seeds=2)
        snap = registry.snapshot()
        assert snap["verify.checks"]["value"] == 2
        assert snap["verify.failures"]["value"] == 1
        assert snap["verify.check.seconds"]["count"] == 2


class TestSweep:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            sweep(lambda c: 0.5, rng=rng, seeds=0)
        with pytest.raises(ConfigurationError):
            sweep(lambda c: 0.5, rng=rng, alpha=1.0)
        with pytest.raises(ConfigurationError):
            sweep(lambda c: 2.0, rng=rng)

    def test_accepts_uniform_pvalues(self, rng):
        result = sweep(lambda c: c.random(), rng=rng, seeds=5,
                       alpha=1e-6)
        assert result.accepted
        assert not result.all_rejected
        assert len(result.pvalues) == 5

    def test_rejects_tiny_pvalues(self, rng):
        result = sweep(lambda c: 1e-12, rng=rng, seeds=3, alpha=1e-4)
        assert result.all_rejected
        assert not result.accepted

    def test_describe_mentions_method_and_alpha(self, rng):
        result = sweep(lambda c: 0.5, rng=rng, seeds=2, alpha=1e-4)
        text = result.describe()
        assert "holm" in text and "0.0001" in text

    def test_seeds_are_independent_of_draw_order(self):
        first = sweep(lambda c: c.random(), rng=SplittableRng(3),
                      seeds=3)
        second = sweep(lambda c: c.random(), rng=SplittableRng(3),
                       seeds=3)
        assert first.pvalues == second.pvalues


class TestReporters:
    def _report(self, rng):
        battery = Battery()
        battery.add(Check(name="good", fn=lambda r, s: 0.5,
                          description="always fine"))
        battery.add(Check(name="control", expect_reject=True,
                          fn=lambda r, s: 1e-12))
        battery.add(Check(name="diff", kind="exact",
                          fn=lambda r, s: []))
        return battery.run(rng=rng, seeds=2)

    def test_text_report(self, rng):
        text = render_text(self._report(rng))
        assert "good" in text and "PASS" in text
        assert "REJECTED (expected)" in text
        assert "exact agreement" in text
        assert "ok: 3 check(s)" in text

    def test_text_report_failure_states(self, rng):
        battery = Battery()
        battery.add(Check(name="bad", fn=lambda r, s: 1e-12))
        battery.add(Check(name="limp.control", expect_reject=True,
                          fn=lambda r, s: 0.5))
        battery.add(Check(name="broken", kind="exact",
                          fn=lambda r, s: ["first", "second"]))
        text = render_text(battery.run(rng=rng, seeds=2))
        assert "FAIL" in text
        assert "NOT REJECTED (negative control failed)" in text
        # Two seeds x two messages: the first failure plus three more.
        assert "first (+3 more)" in text
        assert "3 check(s) failed" in text

    def test_json_round_trip(self, rng):
        report = self._report(rng)
        payload = parse_json(render_json(report, indent=2))
        assert payload == report.to_dict()
        assert payload["passed"] is True
        assert payload["pvalue_count"] == 4
        names = [c["name"] for c in payload["checks"]]
        assert names == ["good", "control", "diff"]


class TestDefaultBattery:
    def test_catalog_shape(self):
        battery = default_battery()
        names = battery.names()
        assert len(names) == len(set(names))
        assert len(names) >= 12
        # The Section 3.3 negative controls must be registered, and on
        # the fast tier: acceptances mean nothing if the battery can't
        # see a known non-uniformity.
        by_name = {c.name: c for c in battery.checks()}
        for name in ("negative.concise", "negative.counting"):
            assert by_name[name].expect_reject
            assert by_name[name].tier == "fast"
        kinds = {c.kind for c in battery.checks()}
        assert kinds == {"pvalue", "exact"}

    def test_fast_single_check_runs(self, rng):
        report = default_battery().run(
            rng=rng, seeds=2, select=["hypergeom.gof.inversion"])
        assert report.passed
        assert report.pvalue_count == 2
        assert all(math.isfinite(p)
                   for r in report.results for p in r.pvalues)

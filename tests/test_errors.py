"""Tests for repro.errors: hierarchy and catchability contracts."""

from __future__ import annotations

import pytest

from repro.errors import (CatalogError, ConfigurationError,
                          DatasetNotFoundError, FootprintExceededError,
                          IncompatibleSamplesError, MergeError,
                          PartitionNotFoundError, ProtocolError,
                          ReproError, StorageError)


class TestHierarchy:
    @pytest.mark.parametrize("exc", [
        ConfigurationError, ProtocolError, MergeError,
        IncompatibleSamplesError, CatalogError, PartitionNotFoundError,
        DatasetNotFoundError, StorageError, FootprintExceededError,
    ])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_configuration_is_value_error(self):
        """Callers used to stdlib semantics can catch ValueError."""
        assert issubclass(ConfigurationError, ValueError)

    def test_protocol_is_runtime_error(self):
        assert issubclass(ProtocolError, RuntimeError)

    def test_incompatible_is_merge_and_value_error(self):
        assert issubclass(IncompatibleSamplesError, MergeError)
        assert issubclass(IncompatibleSamplesError, ValueError)

    def test_not_found_are_catalog_and_key_errors(self):
        assert issubclass(PartitionNotFoundError, CatalogError)
        assert issubclass(DatasetNotFoundError, CatalogError)
        assert issubclass(CatalogError, KeyError)

    def test_storage_is_os_error(self):
        assert issubclass(StorageError, OSError)


class TestCatchability:
    def test_library_errors_catchable_as_repro_error(self, rng):
        """A single except ReproError covers user-facing failures."""
        from repro.core.hybrid_bernoulli import AlgorithmHB
        from repro.warehouse.storage import InMemoryStore
        from repro.warehouse.dataset import PartitionKey

        with pytest.raises(ReproError):
            AlgorithmHB(0, bound_values=1, rng=rng)
        with pytest.raises(ReproError):
            InMemoryStore().get(PartitionKey("x", 0, 0))
        sampler = AlgorithmHB(10, bound_values=4, rng=rng)
        sampler.finalize()
        with pytest.raises(ReproError):
            sampler.finalize()

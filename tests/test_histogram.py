"""Tests for repro.core.histogram (compact (value, count) storage)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.errors import ConfigurationError

MODEL = FootprintModel(value_bytes=8, count_bytes=4)


class TestBasics:
    def test_empty(self):
        h = CompactHistogram()
        assert h.size == 0
        assert h.distinct == 0
        assert h.singletons == 0
        assert len(h) == 0
        assert h.expand() == []

    def test_insert_tracks_counters(self):
        h = CompactHistogram()
        h.insert("a")
        assert (h.size, h.distinct, h.singletons) == (1, 1, 1)
        h.insert("a")
        assert (h.size, h.distinct, h.singletons) == (2, 1, 0)
        h.insert("b")
        assert (h.size, h.distinct, h.singletons) == (3, 2, 1)

    def test_from_values_and_contains(self):
        h = CompactHistogram.from_values([1, 2, 2, 3])
        assert 2 in h
        assert 5 not in h
        assert h.count(2) == 2
        assert h.count(5) == 0

    def test_from_pairs(self):
        h = CompactHistogram.from_pairs([("x", 3), ("y", 1), ("x", 2)])
        assert h.count("x") == 5
        assert h.size == 6

    def test_from_pairs_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            CompactHistogram.from_pairs([("x", 0)])

    def test_equality(self):
        a = CompactHistogram.from_values([1, 1, 2])
        b = CompactHistogram.from_pairs([(1, 2), (2, 1)])
        assert a == b
        b.insert(3)
        assert a != b

    def test_copy_independent(self):
        a = CompactHistogram.from_values([1, 2])
        b = a.copy()
        b.insert(3)
        assert 3 not in a
        assert a.size == 2


class TestMutation:
    def test_insert_count(self):
        h = CompactHistogram()
        h.insert_count("v", 5)
        assert h.count("v") == 5
        assert h.singletons == 0
        h2 = CompactHistogram()
        h2.insert_count("v", 1)
        assert h2.singletons == 1

    def test_insert_count_validation(self):
        with pytest.raises(ConfigurationError):
            CompactHistogram().insert_count("v", 0)

    def test_remove(self):
        h = CompactHistogram.from_values(["a", "a", "b"])
        h.remove("a")
        assert h.count("a") == 1
        assert h.singletons == 2
        h.remove("a")
        assert "a" not in h
        assert h.size == 1

    def test_remove_validation(self):
        h = CompactHistogram.from_values(["a"])
        with pytest.raises(ConfigurationError):
            h.remove("a", 2)
        with pytest.raises(ConfigurationError):
            h.remove("a", 0)
        with pytest.raises(ConfigurationError):
            h.remove("missing")

    def test_set_count(self):
        h = CompactHistogram.from_values(["a", "a"])
        h.set_count("a", 5)
        assert h.count("a") == 5
        assert h.size == 5
        h.set_count("a", 1)
        assert h.singletons == 1
        h.set_count("a", 0)
        assert "a" not in h
        assert h.size == 0

    def test_set_count_validation(self):
        with pytest.raises(ConfigurationError):
            CompactHistogram().set_count("a", -1)


class TestViewsAndConversions:
    def test_expand_round_trip(self):
        values = [1, 1, 2, 3, 3, 3]
        h = CompactHistogram.from_values(values)
        assert sorted(h.expand()) == sorted(values)
        again = CompactHistogram.from_values(h.expand())
        assert again == h

    def test_sorted_pairs_stable(self):
        h = CompactHistogram.from_values(["b", "a", "b"])
        assert h.sorted_pairs() == [("a", 1), ("b", 2)]

    def test_join(self):
        a = CompactHistogram.from_values([1, 1, 2])
        b = CompactHistogram.from_values([2, 3])
        j = a.join(b)
        assert dict(j.pairs()) == {1: 2, 2: 2, 3: 1}
        # operands untouched
        assert a.size == 3 and b.size == 2

    def test_join_commutative(self):
        a = CompactHistogram.from_values([1, 1, 2])
        b = CompactHistogram.from_values([2, 3, 3, 3, 4])
        assert a.join(b) == b.join(a)

    def test_joined_footprint_matches_join(self):
        a = CompactHistogram.from_values([1, 1, 2, 5])
        b = CompactHistogram.from_values([2, 3, 3, 5, 6])
        predicted = a.joined_footprint(b, MODEL)
        actual = a.join(b).footprint(MODEL)
        assert predicted == actual


class TestFootprint:
    def test_empty(self):
        assert CompactHistogram().footprint(MODEL) == 0

    def test_singletons_cost_value_bytes(self):
        h = CompactHistogram.from_values([1, 2, 3])
        assert h.footprint(MODEL) == 3 * 8

    def test_pairs_cost_extra(self):
        h = CompactHistogram.from_values([1, 1, 2])
        assert h.footprint(MODEL) == (8 + 4) + 8

    @given(st.lists(st.sampled_from("abcdefgh"), max_size=200))
    @settings(max_examples=100)
    def test_incremental_tracking_matches_recount(self, values):
        """The O(1) footprint equals a from-scratch recount, always."""
        h = CompactHistogram.from_values(values)
        pairs = dict(h.pairs())
        distinct = len(pairs)
        singles = sum(1 for c in pairs.values() if c == 1)
        assert h.distinct == distinct
        assert h.singletons == singles
        assert h.size == sum(pairs.values()) == len(values)
        assert h.footprint(MODEL) == \
            MODEL.histogram_footprint(distinct, singles)

    @given(st.lists(st.tuples(st.sampled_from("abcd"),
                              st.sampled_from(["insert", "remove",
                                               "set3", "set0"])),
                    max_size=100))
    @settings(max_examples=100)
    def test_mutation_sequence_invariants(self, ops):
        """Random mutation sequences keep counters consistent."""
        h = CompactHistogram()
        shadow = {}
        for value, op in ops:
            if op == "insert":
                h.insert(value)
                shadow[value] = shadow.get(value, 0) + 1
            elif op == "remove":
                if shadow.get(value, 0) > 0:
                    h.remove(value)
                    shadow[value] -= 1
                    if shadow[value] == 0:
                        del shadow[value]
            elif op == "set3":
                h.set_count(value, 3)
                shadow[value] = 3
            else:  # set0
                h.set_count(value, 0)
                shadow.pop(value, None)
        assert dict(h.pairs()) == shadow
        assert h.size == sum(shadow.values())
        assert h.singletons == sum(1 for c in shadow.values() if c == 1)

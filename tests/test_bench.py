"""Tests for repro.bench (harness, report, experiment drivers)."""

from __future__ import annotations

import pytest

from repro.bench.experiments import (fig05_qapprox, sample_size_experiment,
                                     scaleup_experiment, speedup_experiment)
from repro.bench.harness import repeat_pipeline, run_pipeline
from repro.bench.report import format_cell, format_table
from repro.errors import ConfigurationError
from repro.workloads.scenarios import Scenario


class TestHarness:
    def test_pipeline_result_shape(self, rng):
        scenario = Scenario("unique", 4_000, 4)
        result = run_pipeline(scenario, "hr", bound_values=64, rng=rng)
        assert len(result.partition_sample_seconds) == 4
        assert result.sample_seconds >= result.sample_seconds_parallel
        assert result.total_seconds >= result.merge_seconds
        assert result.elapsed_seconds <= result.total_seconds + 1e-9
        assert result.merged_size == 64
        assert result.merged.population_size == 4_000
        assert len(result.partition_sample_sizes) == 4

    def test_batch_arrival_mode(self, rng):
        scenario = Scenario("uniform", 4_000, 2)
        result = run_pipeline(scenario, "hb", bound_values=64, rng=rng,
                              arrival_mode="batch")
        result.merged.check_invariants()

    def test_sb_default_rate(self, rng):
        scenario = Scenario("unique", 8_000, 2)
        result = run_pipeline(scenario, "sb", bound_values=64, rng=rng)
        # Expected merged size ~ bound.
        assert 20 < result.merged_size < 160

    def test_repeat_pipeline(self, rng):
        scenario = Scenario("unique", 2_000, 2)
        results = repeat_pipeline(scenario, "hr", bound_values=32,
                                  rng=rng, repeats=3)
        assert len(results) == 3
        with pytest.raises(ConfigurationError):
            repeat_pipeline(scenario, "hr", bound_values=32, rng=rng,
                            repeats=0)


class TestExperiments:
    def test_fig05_small_grid(self):
        rows = fig05_qapprox(population=10_000, p_values=(1e-3,),
                             bounds=(100, 1000))
        assert len(rows) == 2
        for _p, _b, exact, approx, err in rows:
            assert 0 < exact < 1
            assert err == pytest.approx(
                abs(approx - exact) / exact * 100.0)

    def test_speedup_rows(self, rng):
        rows = speedup_experiment("hr", population=4_000,
                                  partition_counts=(1, 2, 4),
                                  bound_values=32, rng=rng, repeats=1)
        assert [r[0] for r in rows] == [1, 2, 4]
        for _parts, sample_s, merge_s, total_s in rows:
            assert total_s == pytest.approx(sample_s + merge_s)

    def test_speedup_skips_oversized_counts(self, rng):
        rows = speedup_experiment("hr", population=4,
                                  partition_counts=(2, 8),
                                  bound_values=8, rng=rng, repeats=1)
        assert [r[0] for r in rows] == [2]

    def test_scaleup_rows(self, rng):
        rows = scaleup_experiment("sb", partition_size=500,
                                  scale_factors=(2, 4),
                                  bound_values=32, rng=rng,
                                  distributions=("uniform",), repeats=1)
        assert [(r[0], r[1]) for r in rows] == [(2, "uniform"),
                                                (4, "uniform")]

    def test_sizes_rows(self, rng):
        rows = sample_size_experiment("hr", partition_size=512,
                                      partition_counts=(1, 2),
                                      bound_values=128, rng=rng,
                                      distributions=("unique",),
                                      repeats=2)
        for parts, dist, p, mean_size, cv in rows:
            assert dist == "unique"
            assert mean_size == 128.0  # pinned at the bound
            assert cv == 0.0


class TestReport:
    def test_format_cell(self):
        assert format_cell(3) == "3"
        assert format_cell(0.0) == "0"
        assert format_cell(1.5) == "1.5"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell(True) == "True"

    def test_format_table(self):
        text = format_table(["a", "bb"], [[1, 2.0], [30, 4.5]],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

"""Tests for repro.analytics.aqp (the approximate query engine)."""

from __future__ import annotations

import pytest

from repro.analytics.aqp import ApproximateQueryEngine
from repro.rng import SplittableRng
from repro.warehouse.warehouse import SampleWarehouse


@pytest.fixture()
def warehouse():
    wh = SampleWarehouse(bound_values=512, rng=SplittableRng(21))
    wh.ingest_batch("sales", list(range(100_000)), partitions=4)
    wh.ingest_batch("days", [i % 7 for i in range(7_000)], partitions=2,
                    labels=["w1", "w2"])
    return wh


class TestAggregates:
    def test_count(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        est = engine.count("sales")
        assert abs(est.value - 100_000) / 100_000 < 0.10

    def test_count_where(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        est = engine.count("sales", where=lambda v: v < 50_000)
        assert abs(est.value - 50_000) / 50_000 < 0.20

    def test_sum(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        truth = sum(range(100_000))
        est = engine.sum("sales")
        assert abs(est.value - truth) / truth < 0.10

    def test_avg(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        est = engine.avg("sales")
        assert abs(est.value - 49999.5) / 49999.5 < 0.10

    def test_quantile(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        q = engine.quantile("sales", 0.25)
        assert abs(q - 25_000) < 10_000

    def test_exact_on_exhaustive_dataset(self, warehouse):
        """'days' has 7 distinct values: samples stay exhaustive and the
        engine answers exactly."""
        engine = ApproximateQueryEngine(warehouse)
        est = engine.count("days")
        assert est.value == 7_000.0
        assert est.exact


class TestGroupBy:
    def test_group_by_count(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        groups = dict(engine.group_by_count("days", key_fn=lambda v: v))
        assert len(groups) == 7
        assert sum(groups.values()) == pytest.approx(7_000)

    def test_top_truncation(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        groups = engine.group_by_count("sales",
                                       key_fn=lambda v: v % 10, top=3)
        assert len(groups) == 3
        # sorted descending
        assert groups[0][1] >= groups[1][1] >= groups[2][1]


class TestLabelsAndCache:
    def test_label_scoped_query(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        est = engine.count("days", labels=["w1"])
        assert est.value == pytest.approx(3_500)

    def test_cache_reuse(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        a = engine.count("sales")
        b = engine.count("sales")
        assert a.value == b.value  # same cached merged sample

    def test_invalidate(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        engine.count("sales")
        warehouse.ingest_batch("sales", list(range(100_000, 120_000)),
                               partitions=1)
        engine.invalidate()
        est = engine.count("sales")
        assert abs(est.value - 120_000) / 120_000 < 0.10


class TestSummary:
    def test_sampling_summary(self, warehouse):
        engine = ApproximateQueryEngine(warehouse)
        info = engine.sampling_summary("sales")
        assert info["population_size"] == 100_000
        assert 0 < info["sample_size"] <= 512
        assert info["kind"] in ("BERNOULLI", "RESERVOIR")
        assert not info["exact"]

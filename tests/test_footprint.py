"""Tests for repro.core.footprint."""

from __future__ import annotations

import pytest

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.errors import ConfigurationError


class TestValidation:
    def test_value_bytes_positive(self):
        with pytest.raises(ConfigurationError):
            FootprintModel(value_bytes=0)

    def test_count_bytes_non_negative(self):
        with pytest.raises(ConfigurationError):
            FootprintModel(count_bytes=-1)

    def test_count_bytes_cannot_exceed_value_bytes(self):
        # Otherwise compact form could exceed the expanded bound.
        with pytest.raises(ConfigurationError):
            FootprintModel(value_bytes=4, count_bytes=8)


class TestArithmetic:
    def test_bag_footprint(self):
        assert DEFAULT_MODEL.bag_footprint(10) == 80

    def test_histogram_footprint(self):
        m = FootprintModel(8, 4)
        assert m.histogram_footprint(distinct=5, singletons=2) == \
            5 * 8 + 3 * 4

    def test_bound_values_round_trip(self):
        m = FootprintModel(8, 4)
        assert m.bound_values(65536) == 8192
        assert m.footprint_for_values(8192) == 65536

    def test_bound_values_floor(self):
        assert FootprintModel(8, 4).bound_values(100) == 12

    def test_bound_values_validation(self):
        with pytest.raises(ConfigurationError):
            FootprintModel(8, 4).bound_values(4)
        with pytest.raises(ConfigurationError):
            FootprintModel(8, 4).footprint_for_values(0)

    def test_compact_never_beats_bound(self):
        """For any split of n_F-or-fewer elements into singletons/pairs,
        the compact footprint stays within the bound (the reason
        count_bytes <= value_bytes is enforced)."""
        m = FootprintModel(8, 4)
        bound_values = 64
        budget = m.footprint_for_values(bound_values)
        for pairs in range(bound_values // 2 + 1):
            singles = bound_values - 2 * pairs  # elements in pairs count 2x
            footprint = m.histogram_footprint(singles + pairs, singles)
            assert footprint <= budget

    def test_frozen(self):
        with pytest.raises(AttributeError):
            DEFAULT_MODEL.value_bytes = 16


class TestEquality:
    def test_dataclass_equality(self):
        assert FootprintModel(8, 4) == FootprintModel(8, 4)
        assert FootprintModel(8, 4) != FootprintModel(8, 2)

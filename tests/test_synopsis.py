"""Tests for repro.warehouse.synopsis (partition summary statistics)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.parallel import SampleTask, sample_partition
from repro.warehouse.synopsis import (PartitionSynopsis,
                                      SynopsisAccumulator)


def moments(values):
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return mean, var


class TestFromValues:
    def test_exact_moments(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        s = PartitionSynopsis.from_values(values)
        assert s.exact and s.numeric
        assert s.count == 8 and s.basis == 8
        mean, var = moments(values)
        assert math.isclose(s.mean, mean)
        assert math.isclose(s.variance, var)
        assert s.minimum == 1.0 and s.maximum == 9.0

    def test_heavy_hitters_ranked(self):
        values = [1] * 5 + [2] * 3 + [3]
        s = PartitionSynopsis.from_values(values, top=2)
        assert [v for v, _ in s.top_k] == [1, 2]
        assert [c for _, c in s.top_k] == [5, 3]

    def test_non_numeric_values(self):
        s = PartitionSynopsis.from_values(["a", "b", "a"])
        assert s.count == 3 and not s.numeric
        assert s.top_k[0] == ("a", 2)
        with pytest.raises(ConfigurationError):
            s.mean

    def test_bool_is_not_numeric(self):
        assert not PartitionSynopsis.from_values([True, False]).numeric

    def test_accumulator_matches_batch(self):
        values = [float(i % 7) for i in range(100)]
        acc = SynopsisAccumulator()
        for v in values:
            acc.feed(v)
        assert acc.finalize() == PartitionSynopsis.from_values(values)


class TestFromSample:
    def sample(self, values, *, bound=32, seed=1, scheme="hr", sb_rate=None):
        return sample_partition(SampleTask(
            values=values, scheme=scheme, bound_values=bound, sb_rate=sb_rate,
            seed=SplittableRng(seed).spawn("s").seed_value))

    def test_exhaustive_is_exact(self):
        values = [1.0, 2.0, 3.0]
        s = PartitionSynopsis.from_sample(self.sample(values, bound=32))
        assert s.exact
        assert s.count == 3 and s.basis == 3
        assert math.isclose(s.total, 6.0)

    def test_scaled_up_is_estimated(self):
        values = [float(v) for v in range(2_000)]
        sample = self.sample(values)
        s = PartitionSynopsis.from_sample(sample)
        assert not s.exact
        assert s.count == 2_000
        assert s.basis == sample.size
        # HT scale-up: the estimated total is unbiased, so for a
        # 32-of-2000 uniform sample it lands well within a few sigma.
        truth = sum(values)
        assert abs(s.total - truth) < truth

    def test_empty_sample_of_nonempty_parent(self):
        values = list(range(100))
        for seed in range(20):
            sample = self.sample(values, bound=8, scheme="sb",
                                 sb_rate=0.001, seed=seed)
            if sample.size == 0:  # Bernoulli can keep nothing
                s = PartitionSynopsis.from_sample(sample)
                assert not s.numeric
                return
        pytest.skip("no seed produced an empty Bernoulli sample")


class TestMerge:
    def test_merge_equals_recompute(self):
        a = [float(i) for i in range(50)]
        b = [float(i) for i in range(50, 120)]
        merged = PartitionSynopsis.merge([
            PartitionSynopsis.from_values(a),
            PartitionSynopsis.from_values(b)])
        assert merged == PartitionSynopsis.from_values(a + b)

    def test_merge_mixed_exactness(self):
        exact = PartitionSynopsis.from_values([1.0, 2.0])
        est = PartitionSynopsis(count=10, total=30.0, total_sq=100.0,
                                minimum=1.0, maximum=5.0,
                                exact=False, basis=4)
        merged = PartitionSynopsis.merge([exact, est])
        assert not merged.exact
        assert merged.count == 12 and merged.basis == 6

    def test_merge_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            PartitionSynopsis.merge([])


class TestWithout:
    def test_exact_decrement(self):
        values = [1.0, 2.0, 2.0, 5.0]
        s = PartitionSynopsis.from_values(values)
        shrunk = s.without(2.0)
        expected = PartitionSynopsis.from_values([1.0, 2.0, 5.0])
        assert shrunk.count == expected.count
        assert math.isclose(shrunk.total, expected.total)
        assert math.isclose(shrunk.total_sq, expected.total_sq)
        assert dict(shrunk.top_k)[2.0] == 1

    def test_empty_rejected(self):
        s = PartitionSynopsis.from_values([1.0])
        with pytest.raises(ConfigurationError):
            s.without(1.0).without(1.0)


class TestSerialization:
    def test_round_trip_numeric(self):
        s = PartitionSynopsis.from_values([1.0, 2.0, 2.0, 7.5])
        assert PartitionSynopsis.from_dict(s.to_dict()) == s

    def test_round_trip_non_numeric(self):
        s = PartitionSynopsis.from_values(["x", "y", "x"])
        back = PartitionSynopsis.from_dict(s.to_dict())
        assert back.count == 3 and not back.numeric
        assert back.top_k == s.top_k

    def test_defaults_for_sparse_dicts(self):
        # A minimal dict (e.g. written by an older producer) loads with
        # conservative defaults.
        s = PartitionSynopsis.from_dict({"count": 5})
        assert s.count == 5 and s.exact and s.basis == 0
        assert not s.numeric

"""Tests for repro.analytics.accuracy (sample-size planning)."""

from __future__ import annotations

import pytest

from repro.analytics.accuracy import (expected_hb_sample_size, plan_bound,
                                      required_sample_size_for_mean,
                                      required_sample_size_for_proportion)
from repro.analytics.estimators import estimate_avg
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.errors import ConfigurationError
from repro.stats.summaries import mean


class TestMeanPlanning:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_sample_size_for_mean(std_dev=-1.0,
                                          target_half_width=1.0,
                                          population=100)
        with pytest.raises(ConfigurationError):
            required_sample_size_for_mean(std_dev=1.0,
                                          target_half_width=0.0,
                                          population=100)
        with pytest.raises(ConfigurationError):
            required_sample_size_for_mean(std_dev=1.0,
                                          target_half_width=1.0,
                                          population=0)
        with pytest.raises(ConfigurationError):
            required_sample_size_for_mean(std_dev=1.0,
                                          target_half_width=1.0,
                                          population=100, confidence=1.0)

    def test_zero_variance(self):
        assert required_sample_size_for_mean(
            std_dev=0.0, target_half_width=1.0, population=100) == 1

    def test_classic_formula(self):
        # n0 = (1.96 * 10 / 1)^2 ~ 384 for an effectively infinite N.
        n = required_sample_size_for_mean(
            std_dev=10.0, target_half_width=1.0, population=10**9)
        assert 380 <= n <= 390

    def test_fpc_caps_at_population(self):
        n = required_sample_size_for_mean(
            std_dev=1000.0, target_half_width=0.001, population=500)
        assert n == 500

    def test_tighter_target_needs_more(self):
        loose = required_sample_size_for_mean(
            std_dev=10.0, target_half_width=2.0, population=10**6)
        tight = required_sample_size_for_mean(
            std_dev=10.0, target_half_width=0.5, population=10**6)
        assert tight > loose

    def test_planned_size_achieves_target(self, rng):
        """End-to-end: plan, sample, measure the realized half-width."""
        import math

        population = list(range(100_000))
        std_dev = math.sqrt((len(population) ** 2 - 1) / 12.0)
        target = 500.0
        n = required_sample_size_for_mean(
            std_dev=std_dev, target_half_width=target,
            population=len(population))
        widths = []
        for t in range(20):
            hr = AlgorithmHR(bound_values=n, rng=rng.spawn(t))
            hr.feed_many(population)
            widths.append(estimate_avg(hr.finalize()).half_width)
        assert mean(widths) <= target * 1.15


class TestProportionPlanning:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            required_sample_size_for_proportion(
                target_half_width=0.05, population=100, proportion=1.5)

    def test_worst_case_default(self):
        # Classic n ~ 1067 for ±3% at 95% over a large population.
        n = required_sample_size_for_proportion(
            target_half_width=0.03, population=10**9)
        assert 1050 <= n <= 1080

    def test_known_small_share_needs_less(self):
        worst = required_sample_size_for_proportion(
            target_half_width=0.03, population=10**9)
        skewed = required_sample_size_for_proportion(
            target_half_width=0.03, population=10**9, proportion=0.05)
        assert skewed < worst

    def test_degenerate_proportion(self):
        assert required_sample_size_for_proportion(
            target_half_width=0.03, population=100, proportion=0.0) == 1


class TestHbExpectation:
    def test_small_population_exhaustive(self):
        assert expected_hb_sample_size(100, 200) == 100.0

    def test_expectation_below_bound(self):
        exp = expected_hb_sample_size(1_000_000, 8192)
        assert 7_500 < exp < 8192

    def test_matches_realized_sizes(self, rng):
        n, bound, trials = 50_000, 512, 25
        expectation = expected_hb_sample_size(n, bound)
        sizes = []
        for t in range(trials):
            hb = AlgorithmHB(n, bound_values=bound, rng=rng.spawn(t))
            hb.feed_many(list(range(n)))
            sizes.append(hb.finalize().size)
        assert abs(mean(sizes) - expectation) / expectation < 0.05


class TestPlanBound:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_bound(required_merged_size=0, population=100)
        with pytest.raises(ConfigurationError):
            plan_bound(required_merged_size=200, population=100)
        with pytest.raises(ConfigurationError):
            plan_bound(required_merged_size=10, population=100,
                       scheme="sb")

    def test_hr_identity(self):
        assert plan_bound(required_merged_size=1000, population=10**6,
                          scheme="hr") == 1000

    def test_hb_inflates_for_margin(self):
        bound = plan_bound(required_merged_size=1000, population=10**6,
                           scheme="hb")
        assert bound > 1000
        assert expected_hb_sample_size(10**6, bound) >= 1000

    def test_hb_bound_realizes_target(self, rng):
        n, target = 50_000, 400
        bound = plan_bound(required_merged_size=target, population=n,
                           scheme="hb")
        sizes = []
        for t in range(20):
            hb = AlgorithmHB(n, bound_values=bound, rng=rng.spawn(t))
            hb.feed_many(list(range(n)))
            sizes.append(hb.finalize().size)
        assert mean(sizes) >= target * 0.97

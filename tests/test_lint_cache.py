"""The incremental cache: warm runs must be byte-identical to cold
runs while re-parsing only what changed.

Covers the invalidation triggers (file edit, catalog bump, spelled
path change), tolerance of corrupt cache documents, the ``--no-cache``
escape hatch at the API level, ``--jobs`` equivalence, and a
hypothesis property test generating random file trees and edits.
"""

from __future__ import annotations

import json
import textwrap

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import LintCache, run_lint

#: A tree with one finding per file so cache hits are observable in
#: the findings themselves, not just in parse counts.
TREE = {
    "core/a.py": """\
        import time

        def sample_budget(n):
            return n * time.time()
        """,
    "core/b.py": """\
        import random

        def jitter():
            return random.random()
        """,
    "warehouse/c.py": """\
        def merge(parts):
            return sorted(parts)
        """,
}


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def render(findings):
    return [f.render() for f in findings]


@pytest.fixture()
def tree(tmp_path):
    return write_tree(tmp_path / "pkg", TREE)


def run(tree, cache):
    return run_lint([str(tree)], contract_doc=None, cache=cache)


class TestWarmRuns:
    def test_warm_run_is_byte_identical(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        cold, _ = run(tree, LintCache(cache_path))
        warm, _ = run(tree, LintCache(cache_path))
        assert render(warm) == render(cold)
        assert cold  # the tree is seeded with real findings

    def test_warm_run_parses_nothing(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        run(tree, LintCache(cache_path))
        warm_cache = LintCache(cache_path)
        _, project = run(tree, warm_cache)
        assert project.parsed == []
        assert warm_cache.hits == len(TREE)
        assert warm_cache.misses == 0

    def test_edit_reparses_only_the_changed_file(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        run(tree, LintCache(cache_path))
        target = tree / "warehouse" / "c.py"
        target.write_text("def merge(parts):\n    return parts\n",
                          encoding="utf-8")
        warm_cache = LintCache(cache_path)
        _, project = run(tree, warm_cache)
        assert [sf.display_path for sf in project.parsed] == \
            [str(target)]
        assert warm_cache.misses == 1

    def test_cross_file_finding_tracks_edits(self, tree, tmp_path):
        # Project rules rerun from merged summaries, so an RPR061
        # chain anchored in an *unchanged* file must still disappear
        # when the effect source is edited away.
        files = {
            "core/entry.py": """\
                from repro.util.helper import route

                def ingest(values):
                    return route(values)
                """,
            "util/helper.py": """\
                import time

                def route(values):
                    return time.time(), values
                """,
        }
        root = write_tree(tmp_path / "xpkg", files)
        cache_path = tmp_path / "xcache.json"
        cold, _ = run_lint([str(root)], contract_doc=None,
                           select=["RPR061"],
                           cache=LintCache(cache_path))
        assert [f.code for f in cold] == ["RPR061"]
        (root / "util" / "helper.py").write_text(
            "def route(values):\n    return sorted(values)\n",
            encoding="utf-8")
        warm_cache = LintCache(cache_path)
        warm, project = run_lint([str(root)], contract_doc=None,
                                 select=["RPR061"], cache=warm_cache)
        assert warm == []
        # entry.py (where the finding anchored) was not re-parsed.
        assert [sf.display_path for sf in project.parsed] == \
            [str(root / "util" / "helper.py")]


class TestInvalidation:
    def test_catalog_bump_invalidates_everything(self, tree, tmp_path,
                                                 monkeypatch):
        cache_path = tmp_path / "cache.json"
        run(tree, LintCache(cache_path))
        import repro.analysis.rules as rules_pkg
        monkeypatch.setattr(rules_pkg, "CATALOG_VERSION",
                            rules_pkg.CATALOG_VERSION + ".test")
        bumped = LintCache(cache_path)
        _, project = run(tree, bumped)
        assert len(project.parsed) == len(TREE)
        assert bumped.hits == 0

    def test_corrupt_cache_is_ignored(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        cold, _ = run(tree, None)
        cache_path.write_text("{not json", encoding="utf-8")
        warm, project = run(tree, LintCache(cache_path))
        assert render(warm) == render(cold)
        assert len(project.parsed) == len(TREE)

    def test_wrong_format_version_is_ignored(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        run(tree, LintCache(cache_path))
        doc = json.loads(cache_path.read_text(encoding="utf-8"))
        doc["version"] = doc["version"] + 1
        cache_path.write_text(json.dumps(doc), encoding="utf-8")
        stale = LintCache(cache_path)
        _, project = run(tree, stale)
        assert len(project.parsed) == len(TREE)

    def test_no_cache_always_parses(self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        run(tree, LintCache(cache_path))
        _, project = run(tree, None)  # the --no-cache path
        assert len(project.parsed) == len(TREE)

    def test_cache_file_written_atomically_and_reloadable(
            self, tree, tmp_path):
        cache_path = tmp_path / "cache.json"
        run(tree, LintCache(cache_path))
        doc = json.loads(cache_path.read_text(encoding="utf-8"))
        assert set(doc) >= {"version", "catalog", "files"}
        assert len(doc["files"]) == len(TREE)


class TestJobs:
    def test_parallel_load_matches_serial(self, tree):
        serial, _ = run_lint([str(tree)], contract_doc=None, jobs=1)
        parallel, _ = run_lint([str(tree)], contract_doc=None, jobs=4)
        assert render(parallel) == render(serial)

    def test_jobs_zero_means_cpu_count(self, tree):
        auto, _ = run_lint([str(tree)], contract_doc=None, jobs=0)
        serial, _ = run_lint([str(tree)], contract_doc=None, jobs=1)
        assert render(auto) == render(serial)


# -- property test: cold and warm runs agree on arbitrary trees -------

_SNIPPETS = (
    "def clean(xs):\n    return sorted(xs)\n",
    "import time\n\ndef stamp():\n    return time.time()\n",
    "import random\n\ndef jitter():\n    return random.random()\n",
    "_CACHE = {}\n\ndef remember(k, v):\n    _CACHE[k] = v\n",
    "def sample_rate(n, rng):\n    return rng.next_float() * n\n",
    "import time\n\nasync def poll():\n    time.sleep(0.1)\n",
    "import asyncio\n\nasync def job():\n    return 1\n\n"
    "async def main():\n    asyncio.create_task(job())\n",
)

_tree_strategy = st.dictionaries(
    keys=st.sampled_from(
        ["core/a.py", "core/b.py", "util/c.py", "warehouse/d.py"]),
    values=st.sampled_from(range(len(_SNIPPETS))),
    min_size=1, max_size=4)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(layout=_tree_strategy,
       edit=st.sampled_from(range(len(_SNIPPETS))))
def test_cold_and_warm_findings_agree(tmp_path_factory, layout, edit):
    """For any generated tree and any single-file edit, a warm run
    over the edited tree renders exactly the findings a cold run
    over the same tree renders."""
    base = tmp_path_factory.mktemp("prop")
    root = write_tree(
        base / "pkg", {rel: _SNIPPETS[i] for rel, i in layout.items()})
    cache_path = base / "cache.json"
    run_lint([str(root)], contract_doc=None,
             cache=LintCache(cache_path))

    # Edit one file (possibly to identical content — also a case).
    victim = sorted(layout)[0]
    (root / victim).write_text(_SNIPPETS[edit], encoding="utf-8")

    warm, _ = run_lint([str(root)], contract_doc=None,
                       cache=LintCache(cache_path))
    cold, _ = run_lint([str(root)], contract_doc=None, cache=None)
    assert render(warm) == render(cold)

"""Tests for repro.analytics.estimators."""

from __future__ import annotations

import pytest

from repro.analytics.estimators import (chao_distinct, estimate_avg,
                                        estimate_count, estimate_quantile,
                                        estimate_sum,
                                        frequency_of_frequencies,
                                        gee_distinct, naive_distinct)
from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

MODEL = FootprintModel(8, 4)


def exhaustive_sample(values):
    return WarehouseSample(
        histogram=CompactHistogram.from_values(values),
        kind=SampleKind.EXHAUSTIVE,
        population_size=len(values),
        bound_values=max(1, len(values)),
        model=MODEL,
    )


def hb_of(values, bound, rng):
    hb = AlgorithmHB(len(values), bound_values=bound, rng=rng, model=MODEL)
    hb.feed_many(values)
    return hb.finalize()


def hr_of(values, bound, rng):
    hr = AlgorithmHR(bound_values=bound, rng=rng, model=MODEL)
    hr.feed_many(values)
    return hr.finalize()


class TestExhaustiveExactness:
    def test_count(self):
        s = exhaustive_sample([1, 2, 2, 3])
        est = estimate_count(s)
        assert est.value == 4.0
        assert est.exact
        assert est.ci_low == est.ci_high == 4.0

    def test_count_with_predicate(self):
        s = exhaustive_sample([1, 2, 2, 3])
        est = estimate_count(s, where=lambda v: v == 2)
        assert est.value == 2.0
        assert est.exact

    def test_sum_and_avg(self):
        s = exhaustive_sample([1, 2, 3, 4])
        assert estimate_sum(s).value == 10.0
        assert estimate_avg(s).value == 2.5


class TestBernoulliEstimates:
    def test_count_scales_by_rate(self, rng):
        values = list(range(50_000))
        s = hb_of(values, 1024, rng)
        assert s.kind is SampleKind.BERNOULLI
        est = estimate_count(s)
        assert abs(est.value - 50_000) / 50_000 < 0.10
        assert est.ci_low < 50_000 < est.ci_high

    def test_sum_estimate(self, rng):
        values = list(range(50_000))
        truth = sum(values)
        s = hb_of(values, 1024, rng)
        est = estimate_sum(s)
        assert abs(est.value - truth) / truth < 0.10

    def test_avg_estimate(self, rng):
        values = list(range(50_000))
        s = hb_of(values, 1024, rng)
        est = estimate_avg(s)
        assert abs(est.value - 24999.5) / 24999.5 < 0.10


class TestReservoirEstimates:
    def test_count_exact_without_predicate(self, rng):
        s = hr_of(list(range(10_000)), 256, rng)
        est = estimate_count(s)
        assert est.value == 10_000.0
        assert est.exact

    def test_count_with_predicate(self, rng):
        s = hr_of(list(range(10_000)), 512, rng)
        est = estimate_count(s, where=lambda v: v < 5_000)
        assert abs(est.value - 5_000) < 1_500
        assert est.ci_low <= est.value <= est.ci_high

    def test_avg_with_fpc(self, rng):
        s = hr_of(list(range(10_000)), 512, rng)
        est = estimate_avg(s)
        assert abs(est.value - 4999.5) / 4999.5 < 0.15

    def test_sum_scales(self, rng):
        values = list(range(10_000))
        s = hr_of(values, 512, rng)
        est = estimate_sum(s)
        assert abs(est.value - sum(values)) / sum(values) < 0.15


class TestQuantile:
    def test_validation(self):
        s = exhaustive_sample([1, 2, 3])
        with pytest.raises(ConfigurationError):
            estimate_quantile(s, 1.5)

    def test_exhaustive_median(self):
        s = exhaustive_sample(list(range(1, 102)))
        assert estimate_quantile(s, 0.5) == 51

    def test_extremes(self):
        s = exhaustive_sample([3, 1, 2])
        assert estimate_quantile(s, 0.0) == 1
        assert estimate_quantile(s, 1.0) == 3

    def test_sampled_median_close(self, rng):
        s = hr_of(list(range(10_000)), 512, rng)
        median = estimate_quantile(s, 0.5)
        assert abs(median - 5_000) < 1_000


class TestDistinct:
    def test_frequency_of_frequencies(self):
        s = exhaustive_sample([1, 1, 2, 3, 3, 3])
        assert frequency_of_frequencies(s) == {1: 1, 2: 1, 3: 1}

    def test_exhaustive_exact(self):
        s = exhaustive_sample([1, 1, 2, 3])
        assert chao_distinct(s) == 3.0
        assert gee_distinct(s) == 3.0
        assert naive_distinct(s) == 3.0

    def test_unique_data_estimates(self, rng):
        """All-distinct population: GEE is within its sqrt guarantee."""
        n = 20_000
        s = hr_of(list(range(n)), 512, rng)
        gee = gee_distinct(s)
        # GEE for all-singleton sample: sqrt(N/n)*n_sample ~ sqrt(N*n).
        assert 0.1 * n < gee <= n * (n / s.size) ** 0.5

    def test_low_cardinality_estimates(self, rng):
        """Few distinct values, all common: estimators ~ exact."""
        values = [i % 50 for i in range(20_000)]
        s = hr_of(values, 512, rng)
        assert abs(chao_distinct(s) - 50) < 10
        assert abs(gee_distinct(s) - 50) < 10

    def test_empty_edge(self):
        s = WarehouseSample(
            histogram=CompactHistogram(),
            kind=SampleKind.RESERVOIR,
            population_size=100,
            bound_values=10,
            model=MODEL)
        assert naive_distinct(s) == 0.0
        assert gee_distinct(s) == 0.0


class TestEstimateObject:
    def test_confidence_validation(self):
        s = exhaustive_sample([1])
        with pytest.raises(ConfigurationError):
            estimate_count(s, confidence=0.0)

    def test_avg_empty_sample(self):
        s = WarehouseSample(
            histogram=CompactHistogram(),
            kind=SampleKind.RESERVOIR,
            population_size=100,
            bound_values=10,
            model=MODEL)
        with pytest.raises(ConfigurationError):
            estimate_avg(s)

    def test_half_width(self, rng):
        s = hr_of(list(range(10_000)), 256, rng)
        est = estimate_avg(s)
        assert est.half_width == pytest.approx(
            (est.ci_high - est.ci_low) / 2)

"""Tests for repro.core.purge (Figures 3 and 4) and the Fenwick tree."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ALPHA
from repro.core.histogram import CompactHistogram
from repro.core.purge import (FenwickTree, purge_bernoulli, purge_reservoir,
                              purge_reservoir_concat)
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.stats.uniformity import (inclusion_frequency_test,
                                    subset_frequency_test)
from repro.testkit import sweep


class TestFenwickTree:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FenwickTree(-1)
        t = FenwickTree(3)
        with pytest.raises(ConfigurationError):
            t.add(3, 1)
        with pytest.raises(ConfigurationError):
            t.find_by_rank(1)  # empty

    def test_add_and_prefix_sum(self):
        t = FenwickTree(5)
        t.add(0, 3)
        t.add(2, 2)
        t.add(4, 1)
        assert t.total == 6
        assert t.prefix_sum(0) == 3
        assert t.prefix_sum(1) == 3
        assert t.prefix_sum(2) == 5
        assert t.prefix_sum(4) == 6

    def test_find_by_rank(self):
        t = FenwickTree(3)
        t.add(0, 3)
        t.add(2, 2)
        # counts = [3, 0, 2]; ranks 1..3 -> 0, ranks 4..5 -> 2
        assert [t.find_by_rank(r) for r in range(1, 6)] == [0, 0, 0, 2, 2]

    def test_counts_materialization(self):
        t = FenwickTree(4)
        t.add(1, 2)
        t.add(3, 5)
        assert t.counts() == [0, 2, 0, 5]

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                              st.integers(min_value=1, max_value=5)),
                    max_size=60))
    @settings(max_examples=80)
    def test_matches_linear_scan(self, updates):
        t = FenwickTree(10)
        shadow = [0] * 10
        for idx, delta in updates:
            t.add(idx, delta)
            shadow[idx] += delta
        assert t.counts() == shadow
        assert t.total == sum(shadow)
        for rank in range(1, sum(shadow) + 1):
            # linear-scan reference for find_by_rank
            acc = 0
            for i, c in enumerate(shadow):
                acc += c
                if acc >= rank:
                    expected = i
                    break
            assert t.find_by_rank(rank) == expected


class TestPurgeBernoulli:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            purge_bernoulli(CompactHistogram(), 1.5, rng)

    def test_rate_edges(self, rng):
        h = CompactHistogram.from_values([1, 1, 2])
        assert purge_bernoulli(h, 0.0, rng).size == 0
        full = purge_bernoulli(h, 1.0, rng)
        assert full == h
        assert full is not h  # a copy, input untouched

    def test_input_untouched(self, rng):
        h = CompactHistogram.from_values(list(range(100)) * 2)
        before = dict(h.pairs())
        purge_bernoulli(h, 0.3, rng)
        assert dict(h.pairs()) == before

    def test_counts_within_originals(self, rng):
        h = CompactHistogram.from_pairs([("a", 10), ("b", 1), ("c", 5)])
        out = purge_bernoulli(h, 0.5, rng)
        for v, n in out.pairs():
            assert n <= h.count(v)

    def test_expected_size(self, rng):
        h = CompactHistogram.from_pairs([(i, 7) for i in range(100)])
        q, trials = 0.3, 200
        sizes = [purge_bernoulli(h, q, rng.spawn(t)).size
                 for t in range(trials)]
        mean = sum(sizes) / trials
        n = h.size
        assert abs(mean - n * q) < 5 * math.sqrt(n * q * (1 - q) / trials)

    def test_per_element_uniformity(self, rng):
        """Every element (occurrence) survives equally often."""
        h = CompactHistogram.from_values(list("aabbbc"))

        def sample_fn(values, child):
            # use distinct-value histogram for attribution
            hist = CompactHistogram.from_values(values)
            return purge_bernoulli(hist, 0.4, child).expand()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(12)), trials=1_000, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()
        del h


class TestPurgeReservoir:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            purge_reservoir(CompactHistogram(), -1, rng)

    def test_size_zero(self, rng):
        h = CompactHistogram.from_values([1, 2])
        assert purge_reservoir(h, 0, rng).size == 0

    def test_oversize_returns_copy(self, rng):
        h = CompactHistogram.from_values([1, 1, 2])
        out = purge_reservoir(h, 10, rng)
        assert out == h
        assert out is not h

    def test_exact_size(self, rng):
        h = CompactHistogram.from_pairs([(i, 5) for i in range(50)])
        for m in (1, 10, 100, 249):
            assert purge_reservoir(h, m, rng).size == m

    def test_counts_within_originals(self, rng):
        h = CompactHistogram.from_pairs([("a", 10), ("b", 2)])
        out = purge_reservoir(h, 5, rng)
        assert out.size == 5
        for v, n in out.pairs():
            assert n <= h.count(v)

    def test_input_untouched(self, rng):
        h = CompactHistogram.from_pairs([("a", 10), ("b", 2)])
        before = dict(h.pairs())
        purge_reservoir(h, 3, rng)
        assert dict(h.pairs()) == before

    def test_subset_uniformity(self, rng):
        """purgeReservoir is an SRS of the bag: all k-subsets equally
        likely (distinct-valued bag, so subsets are identifiable)."""
        def sample_fn(values, child):
            hist = CompactHistogram.from_values(values)
            return purge_reservoir(hist, 2, child).expand()

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(6)), size=2, trials=2_000,
                rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_duplicate_occurrences_uniform(self, rng):
        """With duplicated values, expected kept count per value is
        proportional to its multiplicity."""
        h = CompactHistogram.from_pairs([("a", 30), ("b", 10)])
        trials, m = 2_000, 4
        total_a = 0
        for t in range(trials):
            out = purge_reservoir(h, m, rng.spawn(t))
            total_a += out.count("a")
        mean_a = total_a / trials
        assert abs(mean_a - m * 30 / 40) < 0.1

    @given(st.lists(st.tuples(st.sampled_from("abcdef"),
                              st.integers(min_value=1, max_value=9)),
                    min_size=1, max_size=10),
           st.integers(min_value=0, max_value=60))
    @settings(max_examples=80)
    def test_property_size_and_containment(self, pairs, m):
        rng = SplittableRng(hash((tuple(pairs), m)) & 0xFFFFF)
        h = CompactHistogram.from_pairs(pairs)
        out = purge_reservoir(h, m, rng)
        assert out.size == min(m, h.size)
        for v, n in out.pairs():
            assert n <= h.count(v)


class TestPurgeReservoirConcat:
    def test_size_zero(self, rng):
        a = CompactHistogram.from_values([1])
        b = CompactHistogram.from_values([2])
        assert purge_reservoir_concat(a, b, 0, rng).size == 0

    def test_oversize_joins(self, rng):
        a = CompactHistogram.from_values([1, 2])
        b = CompactHistogram.from_values([2, 3])
        out = purge_reservoir_concat(a, b, 10, rng)
        assert out == a.join(b)

    def test_exact_size_and_coalescing(self, rng):
        a = CompactHistogram.from_pairs([("x", 10)])
        b = CompactHistogram.from_pairs([("x", 10), ("y", 5)])
        out = purge_reservoir_concat(a, b, 12, rng)
        assert out.size == 12
        assert out.count("x") <= 20
        assert out.count("y") <= 5

    def test_subset_uniformity_across_inputs(self, rng):
        """SRS over the concatenated bag: inclusion frequencies even out
        across both inputs."""
        def sample_fn(values, child):
            mid = len(values) // 2
            a = CompactHistogram.from_values(values[:mid])
            b = CompactHistogram.from_values(values[mid:])
            return purge_reservoir_concat(a, b, 4, child).expand()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(16)), trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

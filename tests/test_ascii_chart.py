"""Tests for repro.bench.ascii_chart."""

from __future__ import annotations

import pytest

from repro.bench.ascii_chart import bar_chart, line_chart, stacked_bar_chart
from repro.errors import ConfigurationError


class TestBarChart:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart([])
        with pytest.raises(ConfigurationError):
            bar_chart([("a", 1.0)], width=0)
        with pytest.raises(ConfigurationError):
            bar_chart([("a", -1.0)])

    def test_proportional_bars(self):
        out = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        out = bar_chart([("a", 1.0)], title="T")
        assert out.splitlines()[0] == "T"

    def test_zero_values(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in out

    def test_labels_aligned(self):
        out = bar_chart([("x", 1.0), ("longer", 1.0)])
        positions = {line.index("|") for line in out.splitlines()}
        assert len(positions) == 1


class TestStackedBarChart:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stacked_bar_chart([])
        with pytest.raises(ConfigurationError):
            stacked_bar_chart([("a", -1.0, 1.0)])

    def test_segments(self):
        out = stacked_bar_chart([("a", 1.0, 1.0)], width=10)
        bar_line = out.splitlines()[-1]
        assert bar_line.count("#") == 5
        assert bar_line.count("%") == 5

    def test_legend(self):
        out = stacked_bar_chart([("a", 1.0, 2.0)],
                                legend=("light", "dark"))
        assert "light" in out and "dark" in out

    def test_total_shown(self):
        out = stacked_bar_chart([("a", 1.0, 2.0)])
        assert "3" in out


class TestLineChart:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            line_chart({})
        with pytest.raises(ConfigurationError):
            line_chart({"s": []})
        with pytest.raises(ConfigurationError):
            line_chart({"s": [(1, 1)]}, width=1)
        with pytest.raises(ConfigurationError):
            line_chart({"s": [(1, 0.0)]}, logy=True)

    def test_glyphs_and_legend(self):
        out = line_chart({"up": [(0, 0), (1, 1)],
                          "down": [(0, 1), (1, 0)]})
        assert "*" in out and "o" in out
        assert "* up" in out and "o down" in out

    def test_extremes_plotted(self):
        out = line_chart({"s": [(0, 0), (10, 5)]}, width=20, height=5)
        lines = out.splitlines()
        # max y on the first plot row, min on the last
        assert "*" in lines[0]
        assert "*" in lines[4]

    def test_axis_labels(self):
        out = line_chart({"s": [(2, 10), (8, 90)]})
        assert "2" in out and "8" in out
        assert "90" in out and "10" in out

    def test_logy_marker(self):
        out = line_chart({"s": [(0, 1), (1, 1000)]}, logy=True)
        assert "(log y axis)" in out

    def test_constant_series(self):
        out = line_chart({"s": [(0, 5), (1, 5)]})
        assert "*" in out

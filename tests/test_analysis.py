"""Tests for repro.analysis: the AST invariant checker itself.

Fixture-driven: each rule gets at least one triggering and one clean
snippet, laid out in a tmp tree that mimics the package layout
(``core/``, ``obs/``, ``rng.py`` ...) so the rules' scoping logic is
exercised for real.  Plus suppression semantics, reporter round-trips,
and framework plumbing (registry, syntax errors, bad paths).
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import (Finding, all_rules, finding_from_dict,
                            parse_json, render_json, render_text,
                            rule, rule_for, run_lint)
from repro.errors import ConfigurationError


def lint_tree(tmp_path, files, *, doc=None, select=None):
    """Write ``{relpath: source}`` under a tmp package root and lint it."""
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    contract = None
    if doc is not None:
        contract = tmp_path / "observability.md"
        contract.write_text(textwrap.dedent(doc), encoding="utf-8")
    findings, _ = run_lint([str(root)], contract_doc=contract,
                           select=select)
    return findings


def codes(findings):
    return [f.code for f in findings]


class TestRngDiscipline:
    def test_random_import_outside_rng_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": "import random\n"})
        assert codes(found) == ["RPR001"]

    def test_from_random_import_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "sampling/x.py": "from random import choice\n"})
        assert "RPR001" in codes(found)

    def test_rng_module_itself_may_import_random(self, tmp_path):
        found = lint_tree(tmp_path, {"rng.py": "import random\n"})
        assert found == []

    def test_module_level_draw_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def pick(xs):
                return random.choice(xs)
            """})
        assert codes(found) == ["RPR002"]

    def test_direct_random_instance_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/x.py": "r = random.Random(3)\n"})
        assert codes(found) == ["RPR002"]

    def test_splittable_rng_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.rng import SplittableRng

            def sampler(seed):
                rng = SplittableRng(seed)
                return rng.spawn("part", 0).random()
            """})
        assert found == []

    def test_urandom_flagged_even_in_rng(self, tmp_path):
        found = lint_tree(tmp_path, {
            "rng.py": "import os\nseed = os.urandom(8)\n"})
        assert codes(found) == ["RPR003"]

    def test_secrets_and_numpy_random_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            token = secrets.token_bytes(4)
            draw = np.random.rand()
            """})
        assert codes(found) == ["RPR003", "RPR003"]

    def test_unseeded_random_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"rng.py": """\
            import random
            r = random.Random()
            """})
        assert codes(found) == ["RPR004"]

    def test_clock_seeded_rng_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.rng import SplittableRng
            import time

            def fresh():
                return SplittableRng(int(time.time()))
            """})
        # The clock read also trips the determinism and timing-discipline
        # rules — all three fire.
        assert sorted(set(codes(found))) == ["RPR004", "RPR011", "RPR081"]

    def test_derived_seed_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.rng import SplittableRng, derive_seed

            def fresh(master):
                return SplittableRng(derive_seed(master, "ds", 3))
            """})
        assert found == []


class TestDeterminism:
    def test_wall_clock_on_sampling_path_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            import time

            def label():
                return time.time()
            """})
        # RPR011 (determinism) and RPR081 (timing discipline) both fire
        # on a wall-clock read inside a sampling package.
        assert codes(found) == ["RPR011", "RPR081"]

    def test_monotonic_clock_not_a_determinism_problem(self, tmp_path):
        # A monotonic read never feeds sampling decisions, so the
        # determinism family stays quiet; only the timing-discipline
        # rule asks it to go through repro.obs.clock.
        found = lint_tree(tmp_path, {"warehouse/x.py": """\
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """})
        assert codes(found) == ["RPR081"]

    def test_wall_clock_off_sampling_path_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"bench/x.py": """\
            import time

            def stamp():
                return time.time()
            """})
        assert found == []

    def test_builtin_hash_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"stream/x.py": """\
            def route(v, k):
                return hash(v) % k
            """})
        assert codes(found) == ["RPR012"]

    def test_id_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def key(obj):
                return id(obj)
            """})
        assert codes(found) == ["RPR012"]

    def test_stable_hash_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"stream/x.py": """\
            from repro.rng import stable_hash

            def route(v, k):
                return stable_hash(v) % k
            """})
        assert found == []

    def test_set_iteration_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def walk(values):
                for v in set(values):
                    yield v
            """})
        assert codes(found) == ["RPR013"]

    def test_set_comprehension_source_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"sampling/x.py": """\
            def dedupe(values):
                return [v for v in {1, 2, 3}]
            """})
        assert codes(found) == ["RPR013"]

    def test_sorted_set_iteration_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def walk(values):
                for v in sorted(set(values)):
                    yield v
            """})
        assert found == []


class TestTimingDiscipline:
    def test_perf_counter_outside_clock_packages_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            import time

            def elapsed(t0):
                return time.perf_counter() - t0
            """}, select=["RPR081"])
        assert codes(found) == ["RPR081"]

    def test_module_alias_caught(self, tmp_path):
        found = lint_tree(tmp_path, {"warehouse/x.py": """\
            import time as clock

            def stamp():
                return clock.monotonic_ns()
            """}, select=["RPR081"])
        assert codes(found) == ["RPR081"]

    def test_from_import_rename_caught(self, tmp_path):
        found = lint_tree(tmp_path, {"stream/x.py": """\
            from time import perf_counter as pc

            def elapsed(t0):
                return pc() - t0
            """}, select=["RPR081"])
        assert codes(found) == ["RPR081"]

    def test_bench_and_obs_are_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {
            "bench/x.py": """\
                import time

                def t():
                    return time.perf_counter()
                """,
            "obs/x.py": """\
                from time import monotonic

                def t():
                    return monotonic()
                """}, select=["RPR081"])
        assert found == []

    def test_non_clock_time_functions_are_clean(self, tmp_path):
        # time.sleep and unrelated bare names must not trip the rule.
        found = lint_tree(tmp_path, {"core/x.py": """\
            import time

            def nap(monotonic):
                time.sleep(0.1)
                return monotonic()
            """}, select=["RPR081"])
        assert found == []

    def test_obs_clock_front_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"warehouse/x.py": """\
            from repro.obs.clock import monotonic

            def elapsed(t0):
                return monotonic() - t0
            """}, select=["RPR081"])
        assert found == []


_DOC_WITH_FOO = """\
    # Contract

    | name | kind |
    |---|---|
    | `foo.bar` | counter |
    """


class TestObsContract:
    def test_fstring_span_name_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.obs import span

            def work(i):
                with span(f"work.{i}"):
                    pass
            """})
        assert codes(found) == ["RPR021"]

    def test_variable_metric_name_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"warehouse/x.py": """\
            def bump(reg, name):
                reg.counter(name).inc()
            """})
        assert codes(found) == ["RPR021"]

    def test_literal_names_are_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.obs import span
            from repro.obs.runtime import OBS

            def work():
                with span("work.step", size=3):
                    OBS.registry.counter("foo.bar").inc()
            """}, doc=_DOC_WITH_FOO + "    | `work.step` | span |\n",
            select=["RPR021", "RPR022"])
        assert found == []

    def test_obs_package_is_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {"obs/metrics.py": """\
            class Registry:
                def bump(self, reg, name):
                    reg.counter(name).inc()
            """})
        assert found == []

    def test_undocumented_emission_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.obs.runtime import OBS

            def work(reg):
                reg.counter("foo.bar").inc()
                reg.histogram("not.in.doc").observe(1)
            """}, doc=_DOC_WITH_FOO, select=["RPR022"])
        assert codes(found) == ["RPR022"]
        assert "not.in.doc" in found[0].message

    def test_ghost_doc_row_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "obs/__init__.py": "",
            "core/x.py": """\
            def work(reg):
                reg.counter("foo.bar").inc()
            """}, doc=_DOC_WITH_FOO + "    | `ghost.name` | gauge |\n",
            select=["RPR023"])
        assert codes(found) == ["RPR023"]
        assert "ghost.name" in found[0].message
        assert found[0].path.endswith("observability.md")

    def test_ghost_rows_need_obs_in_view(self, tmp_path):
        # A partial run without the obs implementation (e.g. linting
        # only tests/) must not flag every contract row as a ghost.
        found = lint_tree(tmp_path, {"core/x.py": """\
            def work(reg):
                reg.counter("foo.bar").inc()
            """}, doc=_DOC_WITH_FOO + "    | `ghost.name` | gauge |\n",
            select=["RPR023"])
        assert found == []

    def test_traced_timer_keyword_is_resolved(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.obs import traced

            @traced("merge.x", timer="merge.x.seconds")
            def merge():
                pass
            """}, doc="""\
            | `merge.x` | span |
            | `merge.x.seconds` | timer |
            """, select=["RPR022", "RPR023"])
        assert found == []

    def test_no_doc_skips_contract_rules(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def work(reg):
                reg.counter("undocumented.name").inc()
            """}, select=["RPR022", "RPR023"])
        assert found == []


class TestErrorDiscipline:
    def test_bare_valueerror_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"analytics/x.py": """\
            def check(p):
                if p < 0:
                    raise ValueError(f"bad {p}")
            """})
        assert codes(found) == ["RPR031"]

    def test_uncalled_builtin_raise_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def boom():
                raise RuntimeError
            """})
        assert codes(found) == ["RPR031"]

    def test_repro_error_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.errors import ConfigurationError

            def check(p):
                if p < 0:
                    raise ConfigurationError(f"bad {p}")
            """})
        assert found == []

    def test_protocol_builtins_allowlisted(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            class Seq:
                def __getitem__(self, i):
                    if i >= 0:
                        raise IndexError(i)
                    raise NotImplementedError
            """})
        assert found == []

    def test_reraise_and_variable_raise_are_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def relay(exc):
                try:
                    raise exc
                except Exception:
                    raise
            """})
        assert found == []


_LOCKED_CLASS = """\
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self._value = 0

        def inc(self):
            with self._lock:
                self._value += 1
    """


class TestLockDiscipline:
    def test_unlocked_augassign_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"obs/x.py": """\
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def inc(self):
                    self._value += 1
            """})
        assert codes(found) == ["RPR041"]

    def test_locked_mutation_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"obs/x.py": _LOCKED_CLASS})
        assert found == []

    def test_unlocked_attribute_write_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"obs/x.py": """\
            import threading

            class Gauge:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = None

                def set(self, value):
                    self._value = float(value)
            """})
        assert codes(found) == ["RPR041"]

    def test_unlocked_container_mutation_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"obs/x.py": """\
            import threading

            class Sink:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._spans = []

                def emit(self, span):
                    self._spans.append(span)
            """})
        assert codes(found) == ["RPR041"]

    def test_lockless_class_is_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {"obs/x.py": """\
            class Timer:
                def __init__(self):
                    self._t0 = 0.0

                def start(self, now):
                    self._t0 = now
            """})
        assert found == []

    def test_any_package_is_covered(self, tmp_path):
        # RPR041 is project-wide: any class claiming the self._lock
        # convention is held to it, wherever it lives.
        found = lint_tree(tmp_path, {"core/x.py": """\
            import threading

            class State:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    self._n += 1
            """})
        assert codes(found) == ["RPR041"]

    def test_unlocked_delete_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"warehouse/x.py": """\
            import threading

            class Index:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._entries = {}

                def drop(self, key):
                    del self._entries[key]
            """})
        assert codes(found) == ["RPR041"]

    def test_test_modules_are_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/helper.py": """\
            import threading

            class FakeStore:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    self._n += 1
            """})
        assert found == []


class TestPvalueDiscipline:
    def test_direct_producer_threshold_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_uniform(rng):
                assert inclusion_frequency_test(fn, pop, 100, rng) > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_tainted_name_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_uniform(rng):
                score = subset_frequency_test(fn, pop, 2, 100, rng)
                assert score > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_tuple_unpack_tainted(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_gof(draws):
                stat, out = scipy_stats.kstest(draws, cdf)
                assert out > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_annotated_assignment_tainted(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_fit(draws):
                score: float = chi_square_pvalue(draws, expected)
                assert score > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_walrus_assignment_tainted(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_fit(draws):
                if (score := chi_square_pvalue(draws, expected)) < 1:
                    assert score > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_pvalue_spelling_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_fit(pval):
                assert pval > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_local_chi_square_wrapper_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def chi_square_vs_exact(draws):
                return 0.5

            def test_fit(draws):
                assert chi_square_vs_exact(draws) > 1e-4
            """})
        assert codes(found) == ["RPR051"]

    def test_sweep_result_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_uniform(rng):
                result = sweep(check, rng=rng, seeds=3, alpha=1e-4)
                assert result.accepted, result.describe()
            """})
        assert found == []

    def test_equality_comparison_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"tests/test_x.py": """\
            def test_machinery():
                assert chi_square_pvalue([10.0], [10.0]) == 1.0
            """})
        assert found == []

    def test_non_test_module_is_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {"stats/helpers.py": """\
            def gate(pval):
                assert pval > 1e-4
            """})
        assert found == []


class TestKernelDiscipline:
    def test_loop_draw_in_vectorized_backend_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"kernels/numpy_backend.py": """\
            def binomial_counts(counts, q, rng):
                out = []
                for n in counts:
                    out.append(rng.binomial(n, q))
                return out
            """})
        assert codes(found) == ["RPR091"]

    def test_comprehension_draw_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"kernels/numpy_backend.py": """\
            def binomial_counts(counts, q, rng):
                return [rng.binomial(n, q) for n in counts]
            """})
        assert codes(found) == ["RPR091"]

    def test_nested_loops_flag_each_draw_once(self, tmp_path):
        found = lint_tree(tmp_path, {"kernels/numpy_backend.py": """\
            def draw_grid(rows, cols, q, rng):
                out = []
                for _ in range(rows):
                    for _ in range(cols):
                        out.append(rng.binomial(1, q))
                return out
            """})
        assert codes(found) == ["RPR091"]

    def test_reference_backend_is_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {"kernels/python.py": """\
            def binomial_counts(counts, q, rng):
                return [rng.binomial(n, q) for n in counts]
            """})
        assert found == []

    def test_batched_generator_call_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"kernels/numpy_backend.py": """\
            def binomial_counts(counts, q, rng):
                gen = _generator(rng)
                return gen.binomial(_np.asarray(counts), q).tolist()
            """})
        assert found == []

    def test_loop_draw_outside_kernels_not_rpr091(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            def binomial_counts(counts, q, rng):
                return [rng.binomial(n, q) for n in counts]
            """})
        assert "RPR091" not in codes(found)

    def test_seeded_numpy_generator_is_clean(self, tmp_path):
        # The RPR003 exemption the numpy backend rides on: explicitly
        # seeded generator construction is deterministic.
        found = lint_tree(tmp_path, {"kernels/numpy_backend.py": """\
            def _generator(rng):
                return np.random.Generator(np.random.PCG64(rng.seed_value))
            """})
        assert found == []

    def test_unseeded_numpy_generator_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"kernels/numpy_backend.py": """\
            def _generator():
                return np.random.default_rng()
            """})
        assert codes(found) == ["RPR003"]


class TestSuppressions:
    def test_noqa_with_code_suppresses(self, tmp_path):
        found = lint_tree(tmp_path, {
            "core/x.py":
                "import random  # repro: noqa[RPR001]\n"})
        assert found == []

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        found = lint_tree(tmp_path, {
            "core/x.py": "import random  # repro: noqa\n"})
        assert found == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        found = lint_tree(tmp_path, {
            "core/x.py":
                "import random  # repro: noqa[RPR011]\n"})
        assert codes(found) == ["RPR001"]

    def test_noqa_is_line_scoped(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            import random  # repro: noqa[RPR001]

            def pick(xs):
                return random.choice(xs)
            """})
        assert codes(found) == ["RPR002"]

    def test_noqa_anywhere_in_multiline_statement(self, tmp_path):
        # The statement spans three physical lines; the noqa sits on
        # the *last* one but the finding anchors on the first.  Any
        # physical line of the statement must suppress the whole
        # statement.
        found = lint_tree(tmp_path, {"core/x.py": """\
            import random

            xs = random.choice(
                [1, 2,
                 3])  # repro: noqa[RPR002]
            """})
        assert codes(found) == ["RPR001"]

    def test_noqa_on_first_line_covers_continuation(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            import random

            xs = random.choice(  # repro: noqa[RPR002]
                [1, 2,
                 3])
            """})
        assert codes(found) == ["RPR001"]

    def test_multiline_noqa_does_not_leak_to_neighbors(self, tmp_path):
        # Suppression stops at the statement boundary: the second
        # choice() call on the following statement still fires.
        found = lint_tree(tmp_path, {"core/x.py": """\
            import random  # repro: noqa[RPR001]

            xs = random.choice(
                [1, 2])  # repro: noqa[RPR002]
            ys = random.choice([3, 4])
            """})
        assert codes(found) == ["RPR002"]


class TestSelection:
    SOURCE = {"core/x.py": "import random\nbad = hash(3)\n"}

    def test_comma_separated_tokens(self, tmp_path):
        found = lint_tree(tmp_path, self.SOURCE,
                          select=["RPR001,RPR012"])
        assert codes(found) == ["RPR001", "RPR012"]

    def test_family_prefix_expands(self, tmp_path):
        found = lint_tree(tmp_path, self.SOURCE, select=["RPR01x"])
        assert codes(found) == ["RPR012"]

    def test_family_prefix_is_case_insensitive(self, tmp_path):
        found = lint_tree(tmp_path, self.SOURCE, select=["rpr01X"])
        assert codes(found) == ["RPR012"]

    def test_unknown_code_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="RPR999"):
            lint_tree(tmp_path, self.SOURCE, select=["RPR999"])

    def test_empty_family_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="RPR90X"):
            lint_tree(tmp_path, self.SOURCE, select=["RPR90x"])

    def test_expand_select_mixes_codes_and_families(self):
        from repro.analysis import expand_select

        got = expand_select(["RPR061", "RPR07x"])
        assert got == {"RPR061", "RPR071", "RPR072"}

    def test_expand_select_none_passthrough(self):
        from repro.analysis import expand_select

        assert expand_select(None) is None


class TestReporters:
    def _sample_findings(self, tmp_path):
        return lint_tree(tmp_path, {
            "core/x.py": "import random\nbad = hash(3)\n"})

    def test_text_report_lines(self, tmp_path):
        found = self._sample_findings(tmp_path)
        text = render_text(found, checked_files=1)
        assert "RPR001" in text and "RPR012" in text
        assert "2 finding(s) in 1 file(s)" in text

    def test_clean_text_report(self):
        assert render_text([], checked_files=4) == "ok: 4 file(s) clean"

    def test_json_round_trip(self, tmp_path):
        found = self._sample_findings(tmp_path)
        payload = render_json(found, checked_files=1)
        assert parse_json(payload) == found
        data = json.loads(payload)
        assert data["checked_files"] == 1
        assert data["counts"] == {"RPR001": 1, "RPR012": 1}

    def test_finding_dict_round_trip(self):
        f = Finding(path="a.py", line=3, col=7, code="RPR001",
                    message="msg")
        assert finding_from_dict(f.to_dict()) == f


class TestFramework:
    def test_syntax_error_becomes_finding(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": "def broken(:\n"})
        assert codes(found) == ["RPR000"]

    def test_missing_path_raises(self):
        with pytest.raises(ConfigurationError):
            run_lint(["/no/such/dir/anywhere"])

    def test_select_restricts_rules(self, tmp_path):
        found = lint_tree(tmp_path, {
            "core/x.py": "import random\nbad = hash(3)\n"},
            select=["RPR012"])
        assert codes(found) == ["RPR012"]

    def test_rule_for_unknown_code_raises(self):
        with pytest.raises(ConfigurationError):
            rule_for("RPR999")

    def test_duplicate_code_rejected(self):
        existing = all_rules()[0]
        with pytest.raises(ConfigurationError):
            rule(existing.code, "dup", "duplicate")(lambda sf: iter(()))

    def test_bad_code_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            rule("XX1", "bad", "bad code shape")(lambda sf: iter(()))

    def test_findings_are_sorted(self, tmp_path):
        found = lint_tree(tmp_path, {
            "core/b.py": "import random\n",
            "core/a.py": "import random\n"})
        assert [f.path for f in found] == sorted(f.path for f in found)

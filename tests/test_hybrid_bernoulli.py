"""Tests for repro.core.hybrid_bernoulli (Algorithm HB, Figure 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ALPHA
from repro.core.footprint import FootprintModel
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.phases import SampleKind
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.stats.uniformity import inclusion_frequency_test
from repro.testkit import sweep

MODEL = FootprintModel(value_bytes=8, count_bytes=4)


class TestConfiguration:
    def test_population_positive(self, rng):
        with pytest.raises(ConfigurationError):
            AlgorithmHB(0, bound_values=10, rng=rng)

    def test_exactly_one_bound_spec(self, rng):
        with pytest.raises(ConfigurationError):
            AlgorithmHB(100, rng=rng)
        with pytest.raises(ConfigurationError):
            AlgorithmHB(100, bound_values=10, footprint_bytes=80, rng=rng)

    def test_footprint_bytes_spec(self, rng):
        hb = AlgorithmHB(100, footprint_bytes=80, model=MODEL, rng=rng)
        assert hb.bound_values == 10

    def test_exceedance_validation(self, rng):
        with pytest.raises(ConfigurationError):
            AlgorithmHB(100, bound_values=10, exceedance_p=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            AlgorithmHB(100, bound_values=10, exceedance_p=1.0, rng=rng)


class TestPhases:
    def test_small_data_stays_exhaustive(self, rng):
        hb = AlgorithmHB(100, bound_values=1000, rng=rng)
        hb.feed_many(list(range(100)))
        s = hb.finalize()
        assert s.kind is SampleKind.EXHAUSTIVE
        assert sorted(s.values()) == list(range(100))
        assert s.population_size == 100

    def test_duplicates_keep_exhaustive_longer(self, rng):
        """Heavy duplication compresses: the whole partition fits."""
        hb = AlgorithmHB(10_000, bound_values=64, rng=rng)
        hb.feed_many([i % 10 for i in range(10_000)])
        s = hb.finalize()
        assert s.kind is SampleKind.EXHAUSTIVE
        assert s.size == 10_000
        assert s.distinct == 10

    def test_distinct_data_triggers_bernoulli(self, rng):
        hb = AlgorithmHB(50_000, bound_values=256, rng=rng)
        hb.feed_many(list(range(50_000)))
        s = hb.finalize()
        assert s.kind is SampleKind.BERNOULLI
        assert s.rate is not None and 0.0 < s.rate < 1.0
        assert s.size <= 256

    def test_phase3_reachable_with_underdeclared_population(self, rng):
        """Declaring a tiny N makes q huge; feeding much more data pushes
        the sample to the bound and hence into reservoir mode.  (The
        library forbids finalizing in that state, so we inspect the live
        phase.)"""
        hb = AlgorithmHB(600, bound_values=64, rng=rng)
        hb.feed_many(list(range(4_000)))
        assert hb.phase is SampleKind.RESERVOIR
        assert hb.sample_size <= 64

    def test_phase_progression_monotone(self, rng):
        hb = AlgorithmHB(5_000, bound_values=128, rng=rng)
        seen_phases = []
        for v in range(5_000):
            hb.feed(v)
            if not seen_phases or seen_phases[-1] != hb.phase:
                seen_phases.append(hb.phase)
        assert seen_phases == sorted(seen_phases)


class TestBound:
    @pytest.mark.parametrize("n,bound", [(1000, 16), (5000, 64),
                                         (20_000, 128)])
    def test_bound_holds(self, rng, n, bound):
        hb = AlgorithmHB(n, bound_values=bound, rng=rng,
                         model=MODEL)
        hb.feed_many(list(range(n)))
        s = hb.finalize()
        s.check_invariants()
        if s.kind is not SampleKind.EXHAUSTIVE:
            assert s.size <= bound

    @given(st.integers(min_value=1, max_value=4000),
           st.integers(min_value=4, max_value=128),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_bound_and_population(self, n, bound, seed):
        rng = SplittableRng(seed)
        hb = AlgorithmHB(n, bound_values=bound, rng=rng)
        values = [rng.randrange(max(2, n // 3)) for _ in range(n)]
        hb.feed_many(values)
        s = hb.finalize()
        s.check_invariants()
        assert s.population_size == n
        assert s.size <= n


class TestStatistics:
    def test_phase2_sample_size_near_expectation(self, rng):
        n, bound, trials = 8_192, 256, 60
        sizes = []
        for t in range(trials):
            hb = AlgorithmHB(n, bound_values=bound, rng=rng.spawn(t))
            hb.feed_many(list(range(n)))
            s = hb.finalize()
            assert s.kind is SampleKind.BERNOULLI
            sizes.append(s.size)
        mean = sum(sizes) / trials
        # Mean should be within a few percent of n*q (just below bound).
        assert 0.8 * bound < mean <= bound

    def test_uniformity_inclusion_frequencies(self, rng):
        """Every element equally likely to be sampled."""
        def sample_fn(values, child):
            hb = AlgorithmHB(len(values), bound_values=8, rng=child)
            hb.feed_many(values)
            return hb.finalize().values()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(40)), trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_feed_matches_feed_many_distribution(self, rng):
        """Per-element and batched feeding produce samples with the same
        size statistics."""
        n, bound, trials = 2_000, 64, 120
        mean_sizes = []
        for mode in ("single", "batch"):
            sizes = []
            for t in range(trials):
                hb = AlgorithmHB(n, bound_values=bound,
                                 rng=rng.spawn(mode, t))
                if mode == "single":
                    for v in range(n):
                        hb.feed(v)
                else:
                    hb.feed_many(list(range(n)))
                sizes.append(hb.finalize().size)
            mean_sizes.append(sum(sizes) / trials)
        assert abs(mean_sizes[0] - mean_sizes[1]) < 4.0


class TestFeedRun:
    def test_run_equals_repeated_feeds_size(self, rng):
        hb = AlgorithmHB(10_000, bound_values=64, rng=rng)
        hb.feed_run("x", 6_000)
        hb.feed_run("y", 4_000)
        s = hb.finalize()
        assert s.population_size == 10_000
        # Two distinct values fit exhaustively.
        assert s.kind is SampleKind.EXHAUSTIVE
        assert s.histogram.count("x") == 6_000

    def test_run_crossing_phase_boundary(self, rng):
        hb = AlgorithmHB(9_000, bound_values=64, rng=rng)
        for v in range(200):
            hb.feed_run(v, 1)      # distinct singletons -> trigger
        hb.feed_run("tail", 8_800)
        s = hb.finalize()
        s.check_invariants()
        assert s.population_size == 9_000
        assert s.size <= 9_000


class TestProtocol:
    def test_finalize_twice(self, rng):
        hb = AlgorithmHB(10, bound_values=4, rng=rng)
        hb.finalize()
        with pytest.raises(ProtocolError):
            hb.finalize()

    def test_feed_after_finalize(self, rng):
        hb = AlgorithmHB(10, bound_values=4, rng=rng)
        hb.finalize()
        with pytest.raises(ProtocolError):
            hb.feed(1)

    def test_overfeeding_declared_population(self, rng):
        hb = AlgorithmHB(10, bound_values=4, rng=rng)
        hb.feed_many(list(range(20)))
        with pytest.raises(ProtocolError):
            hb.finalize()

    def test_underfeeding_allowed(self, rng):
        hb = AlgorithmHB(1_000_000, bound_values=64, rng=rng)
        hb.feed_many(list(range(500)))
        s = hb.finalize()
        assert s.population_size == 500


class TestResume:
    def test_resume_exhaustive(self, rng):
        hb = AlgorithmHB(50, bound_values=1000, rng=rng)
        hb.feed_many(list(range(50)))
        s = hb.finalize()
        resumed = AlgorithmHB.resume(s, 100, rng=rng)
        resumed.feed_many(list(range(50, 100)))
        merged = resumed.finalize()
        assert merged.kind is SampleKind.EXHAUSTIVE
        assert merged.population_size == 100
        assert sorted(merged.values()) == list(range(100))

    def test_resume_bernoulli_keeps_rate(self, rng):
        hb = AlgorithmHB(20_000, bound_values=128, rng=rng)
        hb.feed_many(list(range(20_000)))
        s = hb.finalize()
        assert s.kind is SampleKind.BERNOULLI
        resumed = AlgorithmHB.resume(s, 40_000, rng=rng)
        assert resumed.rate == s.rate
        resumed.feed_many(list(range(20_000, 40_000)))
        merged = resumed.finalize()
        merged.check_invariants()
        assert merged.population_size == 40_000

    def test_resume_population_validation(self, rng):
        hb = AlgorithmHB(50, bound_values=1000, rng=rng)
        hb.feed_many(list(range(50)))
        s = hb.finalize()
        with pytest.raises(ConfigurationError):
            AlgorithmHB.resume(s, 10, rng=rng)

"""Failure injection for the serving layer.

Drives the resilience machinery through its unhappy paths with
deterministic shims — no real sleeping, no real time:

* breaker FSM: closed → open → half-open → closed (and half-open →
  open on a failed probe), clocked by ``ManualClock``;
* retry backoff: the schedule a seeded policy issues is *exactly*
  ``backoff_delays`` of an identically seeded rng;
* end-to-end: a fault shim on the warehouse makes storage fail, the
  served responses walk 500 → 503 circuit-open → recovery;
* OCC: racing compare-and-swap mutations admit exactly one winner;
* hypothesis property: no interleaving of ingests and queries ever
  serves a merge that is stale w.r.t. the version it claims.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (CircuitOpenError, ConfigurationError,
                          StorageError, VersionConflictError)
from repro.obs import ManualClock, capture
from repro.rng import SplittableRng
from repro.serve import (CLOSED, HALF_OPEN, OPEN, CircuitBreaker,
                         RetryPolicy, ServeConfig, WarehouseService,
                         backoff_delays)
from repro.serve.http import Request
from repro.serve.resilience import BREAKER_STATE_GAUGE
from repro.warehouse.storage import sample_to_dict
from repro.warehouse.warehouse import SampleWarehouse


def make_warehouse(seed=42, bound=64):
    return SampleWarehouse(bound_values=bound, scheme="hr",
                           rng=SplittableRng(seed))


class TestCircuitBreakerFSM:
    def _breaker(self, clock, threshold=3, recovery=5.0, probes=1):
        return CircuitBreaker(failure_threshold=threshold,
                              recovery_seconds=recovery,
                              half_open_max=probes, clock=clock)

    def test_parameter_validation(self):
        for kwargs in ({"failure_threshold": 0},
                       {"recovery_seconds": 0.0},
                       {"half_open_max": 0}):
            with pytest.raises(ConfigurationError):
                CircuitBreaker(**kwargs)

    def test_closed_to_open_after_threshold(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(2):
            breaker.allow()
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.allow()
        breaker.record_failure()            # third consecutive failure
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.allow()
        assert excinfo.value.retry_after == pytest.approx(5.0)

    def test_success_resets_the_failure_streak(self):
        breaker = self._breaker(ManualClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()            # streak broken
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_to_half_open_after_recovery(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.999)
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(0.001)
        breaker.allow()                     # admitted as a probe
        assert breaker.state == HALF_OPEN

    def test_half_open_probe_quota(self):
        clock = ManualClock()
        breaker = self._breaker(clock, probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        with pytest.raises(CircuitOpenError):
            breaker.allow()                 # quota of 1 in use

    def test_half_open_success_closes(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        breaker.allow()                     # and traffic flows again

    def test_half_open_failure_reopens_with_fresh_recovery(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()
        breaker.record_failure()            # failed probe
        assert breaker.state == OPEN
        clock.advance(4.0)                  # recovery restarted: not yet
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        clock.advance(1.0)
        breaker.allow()
        assert breaker.state == HALF_OPEN

    def test_neutral_outcome_releases_the_half_open_probe(self):
        """A client-caused error through an admitted probe is neither
        success nor failure — the slot must come back, because
        half-open has no time-based escape: a leaked probe would make
        the breaker reject every later call forever."""
        clock = ManualClock()
        breaker = self._breaker(clock, probes=1)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(5.0)
        breaker.allow()                     # the one probe slot
        breaker.record_neutral()            # e.g. a 409 outcome
        assert breaker.state == HALF_OPEN
        breaker.allow()                     # slot came back
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_transitions_emit_counter_and_gauge(self):
        clock = ManualClock()
        breaker = self._breaker(clock)
        with capture() as (reg, _):
            for _ in range(3):
                breaker.record_failure()    # -> open
            clock.advance(5.0)
            breaker.allow()                 # -> half-open
            breaker.record_success()        # -> closed
            assert reg.counter("serve.breaker.transitions").value == 3
            assert reg.gauge("serve.breaker.state").value == \
                BREAKER_STATE_GAUGE[CLOSED]


class RecordingSleep:
    """An async sleep shim that records instead of waiting."""

    def __init__(self):
        self.delays = []

    async def __call__(self, seconds):
        self.delays.append(seconds)


class TestRetryPolicy:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_schedule_is_the_seeded_rng_schedule(self):
        """The sleeps the policy issues are exactly backoff_delays of
        an identically seeded rng — fully deterministic backoff."""
        shape = dict(attempts=4, base_delay=0.1, multiplier=3.0,
                     max_delay=0.5)
        expected = list(backoff_delays(rng=SplittableRng(1234), **shape))
        assert len(expected) == 3
        # Caps apply: ceilings are 0.1, 0.3, 0.5 (0.9 capped).
        assert all(d <= c for d, c in zip(expected, (0.1, 0.3, 0.5)))
        sleep = RecordingSleep()
        policy = RetryPolicy(rng=SplittableRng(1234), sleep=sleep,
                             **shape)
        calls = []

        async def flaky():
            calls.append(1)
            if len(calls) < 4:
                raise StorageError("transient")
            return "recovered"

        assert asyncio.run(policy.call(flaky)) == "recovered"
        assert sleep.delays == expected

    def test_exhausted_attempts_reraise_the_last_error(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=3, rng=SplittableRng(1),
                             sleep=sleep)

        async def always_down():
            raise StorageError("still down")

        with pytest.raises(StorageError):
            asyncio.run(policy.call(always_down))
        assert len(sleep.delays) == 2       # no sleep after the last try

    def test_non_retryable_errors_propagate_immediately(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=5, rng=SplittableRng(1),
                             sleep=sleep)
        calls = []

        async def client_error():
            calls.append(1)
            raise ConfigurationError("your fault")

        with pytest.raises(ConfigurationError):
            asyncio.run(policy.call(client_error))
        assert (len(calls), sleep.delays) == (1, [])

    def test_retry_reports_to_breaker_and_open_aborts_retry(self):
        """Each failed attempt feeds the breaker; once it trips, the
        retry loop aborts with CircuitOpenError instead of burning the
        remaining attempts against a dead store."""
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=2,
                                 recovery_seconds=10.0, clock=clock)
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=5, rng=SplittableRng(1),
                             sleep=sleep)
        calls = []

        async def always_down():
            calls.append(1)
            raise StorageError("down")

        with pytest.raises(CircuitOpenError):
            asyncio.run(policy.call(always_down, breaker=breaker))
        assert len(calls) == 2              # third allow() was refused
        assert breaker.state == OPEN

    def test_non_retryable_error_frees_the_breaker_probe(self):
        """Regression: a non-retry_on exception (here a 409) through a
        half-open probe used to report nothing to the breaker, leaking
        the probe slot and wedging the service at 503 forever."""
        clock = ManualClock()
        breaker = CircuitBreaker(failure_threshold=1,
                                 recovery_seconds=1.0, clock=clock)
        breaker.record_failure()            # -> open
        clock.advance(1.0)
        policy = RetryPolicy(attempts=3, rng=SplittableRng(1),
                             sleep=RecordingSleep())

        async def conflict():
            raise VersionConflictError("tag moved",
                                       expected=0, actual=1)

        with pytest.raises(VersionConflictError):
            asyncio.run(policy.call(conflict, breaker=breaker))
        assert breaker.state == HALF_OPEN
        breaker.allow()                     # probe quota not leaked

    def test_retry_counter_emitted(self):
        sleep = RecordingSleep()
        policy = RetryPolicy(attempts=3, rng=SplittableRng(1),
                             sleep=sleep)
        calls = []

        async def once_flaky():
            calls.append(1)
            if len(calls) < 2:
                raise StorageError("blip")
            return "ok"

        with capture() as (reg, _):
            assert asyncio.run(policy.call(once_flaky)) == "ok"
        assert reg.counter("serve.retry.attempts").value == 1


class TestServiceUnderFaults:
    """End-to-end breaker recovery through served responses.

    The shim replaces the warehouse's merge entry point; the service's
    clock is a ManualClock, so the open → half-open wait is driven by
    ``advance`` instead of wall time.  retry_attempts=1 keeps the
    arithmetic one-request-one-breaker-event.
    """

    def _service(self, clock):
        warehouse = make_warehouse()
        config = ServeConfig(retry_attempts=1,
                             breaker_failure_threshold=3,
                             breaker_recovery_seconds=60.0)
        service = WarehouseService(warehouse, config=config, clock=clock,
                                   retry_rng=SplittableRng(7),
                                   sleep=RecordingSleep())
        return warehouse, service

    @staticmethod
    def _get(service, path):
        request = Request(method="GET", path=path)
        response = asyncio.run(service.handle(request))
        return response.status, response.payload

    @staticmethod
    def _ingest(service, values):
        request = Request(
            method="POST", path="/datasets/d/ingest",
            body=json.dumps({"values": values,
                             "partitions": 1}).encode())
        response = asyncio.run(service.handle(request))
        return response.status, response.payload

    def test_breaker_opens_under_storage_faults_and_recovers(self):
        clock = ManualClock()
        warehouse, service = self._service(clock)
        assert self._ingest(service, [1, 2, 3])[0] == 200
        healthy = self._get(service, "/datasets/d/sample")
        assert healthy[0] == 200

        real_sample_of = warehouse.sample_of

        def broken(*args, **kwargs):
            raise StorageError("disk on fire")

        warehouse.sample_of = broken
        # Cache is version-keyed, so the cached merge still serves.
        assert self._get(service, "/datasets/d/sample")[0] == 200
        # Force merges past the cache: every estimate selector differs
        # only in stat, but the cache key ignores stat — so invalidate
        # by mutating, which also moves the version tag.
        service.cache.invalidate("d")

        for i in range(3):
            status, payload = self._get(service, "/datasets/d/sample")
            assert (status, payload["error"]) == (500, "storage")
        assert service.breaker.state == OPEN

        status, payload = self._get(service, "/datasets/d/sample")
        assert (status, payload["error"]) == (503, "circuit-open")
        assert self._get(service, "/healthz")[1]["breaker"] == "open"

        warehouse.sample_of = real_sample_of    # storage healed
        # Still open until the recovery clock runs down.
        assert self._get(service, "/datasets/d/sample")[0] == 503
        clock.advance(60.0)
        status, payload = self._get(service, "/datasets/d/sample")
        assert status == 200                    # the half-open probe
        assert service.breaker.state == CLOSED
        assert self._get(service, "/healthz")[1]["breaker"] == "closed"

    def test_failed_probe_reopens_the_breaker(self):
        clock = ManualClock()
        warehouse, service = self._service(clock)
        assert self._ingest(service, [1, 2, 3])[0] == 200

        def broken(*args, **kwargs):
            raise StorageError("still broken")

        warehouse.sample_of = broken
        for _ in range(3):
            self._get(service, "/datasets/d/sample")
        assert service.breaker.state == OPEN
        clock.advance(60.0)
        status, _ = self._get(service, "/datasets/d/sample")
        assert status == 500                    # the probe itself failed
        assert service.breaker.state == OPEN    # and re-opened at once
        assert self._get(service, "/datasets/d/sample")[0] == 503


class TestMutationRetrySafety:
    """Mutations run through the breaker exactly once.

    ``ingest_batch`` registers partitions one by one and the version
    tag only moves when the whole mutation commits, so a retry after a
    mid-batch StorageError would pass the CAS check again and silently
    duplicate the already-committed prefix.  Reads are idempotent and
    keep their retries.
    """

    def _service(self, clock=None, retry_attempts=3, **config_kwargs):
        warehouse = make_warehouse()
        config = ServeConfig(retry_attempts=retry_attempts,
                             **config_kwargs)
        service = WarehouseService(
            warehouse, config=config,
            clock=clock if clock is not None else ManualClock(),
            retry_rng=SplittableRng(7), sleep=RecordingSleep())
        return warehouse, service

    @staticmethod
    def _ingest(service, values, expected_version=None):
        body = {"values": values, "partitions": 1}
        if expected_version is not None:
            body["expected_version"] = expected_version
        request = Request(method="POST", path="/datasets/d/ingest",
                          body=json.dumps(body).encode())
        response = asyncio.run(service.handle(request))
        return response.status, response.payload

    @staticmethod
    def _sample(service):
        request = Request(method="GET", path="/datasets/d/sample")
        response = asyncio.run(service.handle(request))
        return response.status, response.payload

    def test_failed_ingest_is_not_retried(self):
        warehouse, service = self._service()
        calls = []

        def dying_ingest(*args, **kwargs):
            calls.append(1)
            raise StorageError("disk died mid-batch")

        warehouse.ingest_batch = dying_ingest
        status, payload = self._ingest(service, [1, 2, 3])
        assert (status, payload["error"]) == (500, "storage")
        assert len(calls) == 1              # one attempt, no replay
        assert service.occ.version("d") == 0

    def test_failed_roll_is_not_retried(self):
        warehouse, service = self._service()
        assert self._ingest(service, [1, 2, 3])[0] == 200
        key = next(iter(warehouse.catalog.partitions("d"))).key
        calls = []

        def dying_roll(*args, **kwargs):
            calls.append(1)
            raise StorageError("catalog store down")

        warehouse.roll_out = dying_roll
        request = Request(method="POST", path="/datasets/d/rollout",
                          body=json.dumps({"key": str(key)}).encode())
        response = asyncio.run(service.handle(request))
        assert response.status == 500
        assert len(calls) == 1

    def test_reads_are_still_retried(self):
        warehouse, service = self._service()
        assert self._ingest(service, [1, 2, 3])[0] == 200
        real_sample_of = warehouse.sample_of
        calls = []

        def flaky(*args, **kwargs):
            calls.append(1)
            if len(calls) == 1:
                raise StorageError("blip")
            return real_sample_of(*args, **kwargs)

        warehouse.sample_of = flaky
        status, _ = self._sample(service)
        assert status == 200
        assert len(calls) == 2              # the retry healed the read

    def test_conflict_during_half_open_does_not_wedge_the_breaker(self):
        """End-to-end regression: a 409 consuming the half-open probe
        must hand the slot back — before the fix every later request
        got 'probe quota in use' 503s until a restart."""
        clock = ManualClock()
        warehouse, service = self._service(
            clock=clock, retry_attempts=1,
            breaker_failure_threshold=1,
            breaker_recovery_seconds=60.0)
        assert self._ingest(service, [1, 2, 3])[0] == 200

        real_sample_of = warehouse.sample_of

        def broken(*args, **kwargs):
            raise StorageError("disk on fire")

        warehouse.sample_of = broken
        assert self._sample(service)[0] == 500  # trips at threshold 1
        assert service.breaker.state == OPEN
        clock.advance(60.0)
        # The half-open probe is a CAS ingest with a stale tag: 409.
        status, _ = self._ingest(service, [4, 5], expected_version=0)
        assert status == 409
        assert service.breaker.state == HALF_OPEN
        warehouse.sample_of = real_sample_of
        status, _ = self._sample(service)       # probe slot was free
        assert status == 200
        assert service.breaker.state == CLOSED


class TestOccUnderConcurrency:
    def test_racing_cas_admits_exactly_one_winner(self):
        from repro.serve import VersionedCatalog

        occ = VersionedCatalog()
        barrier = threading.Barrier(2)
        outcomes = []

        def contender(tag):
            barrier.wait()
            try:
                occ.mutate("d", lambda: tag, expected=0)
                outcomes.append(("win", tag))
            except VersionConflictError as exc:
                outcomes.append(("conflict", exc.actual))

        threads = [threading.Thread(target=contender, args=(t,))
                   for t in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(kind for kind, _ in outcomes) == \
            ["conflict", "win"]
        assert occ.version("d") == 1
        conflict = next(o for o in outcomes if o[0] == "conflict")
        assert conflict[1] == 1             # loser saw the winner's tag

    def test_unconditional_mutations_serialize(self):
        from repro.serve import VersionedCatalog

        occ = VersionedCatalog()
        threads = [threading.Thread(
            target=lambda: occ.mutate("d", lambda: None))
            for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert occ.version("d") == 16

    def test_conflicting_ingests_through_the_service(self):
        """Two clients CAS-ingest against the same observed version:
        one 200, one 409, and the 409 names the winner's version."""
        warehouse = make_warehouse()
        service = WarehouseService(warehouse)

        async def run():
            host, port = await service.start(port=0)
            try:
                async def ingest(values):
                    reader, writer = await asyncio.open_connection(
                        host, port)
                    try:
                        body = json.dumps({
                            "values": values, "partitions": 1,
                            "expected_version": 0}).encode()
                        writer.write(
                            (f"POST /datasets/d/ingest HTTP/1.1\r\n"
                             f"Content-Length: {len(body)}\r\n"
                             f"Connection: close\r\n\r\n"
                             ).encode() + body)
                        await writer.drain()
                        raw = await reader.read(-1)
                    finally:
                        writer.close()
                        await writer.wait_closed()
                    return int(raw.split(b" ", 2)[1])

                return await asyncio.gather(ingest([1, 2]),
                                            ingest([3, 4]))
            finally:
                await service.aclose()

        statuses = sorted(asyncio.run(run()))
        assert statuses == [200, 409]
        assert service.occ.version("d") == 1


# Ops: ingest some values (dataset mutates, version must move) or
# query (served merge must be exact at its claimed version).
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("ingest"),
                  st.lists(st.integers(min_value=0, max_value=999),
                           min_size=1, max_size=40)),
        st.tuples(st.just("query"), st.none()),
    ),
    min_size=2, max_size=12)


class TestNoStaleServes:
    @given(ops=_ops, seed=st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_every_served_merge_is_exact_at_its_version(self, ops, seed):
        """The no-stale-serves contract: whatever the interleaving of
        ingests and queries, a query response reflects the *current*
        catalog — its version tag matches the version counter, and its
        sample is byte-identical to a fresh library merge (repeated
        merges are deterministic, so any stale cache hit would show up
        as a mismatch)."""
        warehouse = make_warehouse(seed=seed)
        service = WarehouseService(warehouse)

        async def run():
            ingested = 0
            for kind, payload in ops:
                if kind == "ingest":
                    request = Request(
                        method="POST", path="/datasets/d/ingest",
                        body=json.dumps({"values": payload,
                                         "partitions": 1}).encode())
                    response = await service.handle(request)
                    assert response.status == 200
                    ingested += 1
                    assert response.payload["version"] == ingested
                else:
                    request = Request(method="GET",
                                      path="/datasets/d/sample")
                    response = await service.handle(request)
                    if ingested == 0:
                        assert response.status == 404
                        continue
                    assert response.status == 200
                    assert response.payload["version"] == ingested
                    expected = sample_to_dict(warehouse.sample_of("d"))
                    assert response.payload["sample"] == \
                        json.loads(json.dumps(expected))
            await service.aclose()

        asyncio.run(run())


class TestMutationHousekeepingOffLoop:
    """Regression for the RPR111 true positives on the mutation path.

    ``_handle_ingest`` and ``_handle_roll`` used to call
    ``MergeCache.invalidate`` directly from the handler coroutine.
    The cache takes a ``threading.Lock`` and deletes spill files, so
    the invalidation ran lock contention and file I/O on the
    event-loop thread, stalling every in-flight request behind a
    committed mutation's housekeeping.  The fix routes it through
    ``WarehouseService._offload`` (the worker pool); before the fix
    this test fails because the recorded invalidation thread *is*
    the loop thread.
    """

    def test_cache_invalidation_runs_off_the_loop_thread(self,
                                                         tmp_path):
        warehouse = make_warehouse()
        config = ServeConfig(spill_dir=str(tmp_path / "spill"))
        service = WarehouseService(warehouse, config=config)
        cache = service.cache
        seen = []
        real_invalidate = cache.invalidate

        def recording_invalidate(dataset):
            seen.append((dataset, threading.current_thread()))
            return real_invalidate(dataset)

        cache.invalidate = recording_invalidate

        async def drive():
            loop_thread = threading.current_thread()
            ingest = Request(
                method="POST", path="/datasets/d/ingest",
                body=json.dumps({"values": [1, 2, 3],
                                 "partitions": 1}).encode())
            response = await service.handle(ingest)
            assert response.status == 200
            key = response.payload["keys"][0]
            roll = Request(
                method="POST", path="/datasets/d/rollout",
                body=json.dumps({"key": key}).encode())
            response = await service.handle(roll)
            assert response.status == 200
            await service.aclose()
            return loop_thread

        loop_thread = asyncio.run(drive())
        assert [dataset for dataset, _ in seen] == ["d", "d"]
        for _, thread in seen:
            assert thread is not loop_thread, (
                "cache invalidation ran on the event-loop thread")

"""Tests for repro.sampling.skip: skip generation correctness."""

from __future__ import annotations

import pytest

import math

from repro.errors import ConfigurationError
from repro.sampling.skip import (ALGORITHM_X_THRESHOLD, SkipGenerator,
                                 VitterZSkips, skip, skip_inversion)
from repro.stats.uniformity import chi_square_pvalue
from repro.testkit import sweep


def exact_skip_pmf(t: int, k: int, s: int) -> float:
    """Analytic skip pmf: P(S = s) after t records, reservoir size k."""
    return math.exp(math.log(k) - math.log(t + s + 1)
                    + math.lgamma(t + s - k + 1) - math.lgamma(t - k + 1)
                    + math.lgamma(t + 1) - math.lgamma(t + s + 1))


def chi_square_vs_exact(draws, t, k):
    """Bin empirical skips against the analytic pmf; return p-value."""
    trials = len(draws)
    counts = {}
    for s in draws:
        counts[s] = counts.get(s, 0) + 1
    obs, exp = [], []
    acc_o = acc_e = 0.0
    s = 0
    while sum(exp) < trials * 0.999 and s <= 50 * t:
        acc_o += counts.get(s, 0)
        acc_e += trials * exact_skip_pmf(t, k, s)
        if acc_e >= 25:
            obs.append(acc_o)
            exp.append(acc_e)
            acc_o = acc_e = 0.0
        s += 1
    tail_obs = trials - sum(obs)
    tail_exp = trials - sum(exp)
    if tail_exp > 1:
        obs.append(tail_obs)
        exp.append(tail_exp)
    return chi_square_pvalue(obs, exp)


class TestSkipInversion:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            skip_inversion(10, 0, rng)

    def test_filling_phase_returns_zero(self, rng):
        assert skip_inversion(3, 5, rng) == 0

    def test_non_negative(self, rng):
        assert all(skip_inversion(100, 10, rng) >= 0 for _ in range(500))

    def test_inclusion_probability(self, rng):
        """P(skip == 0) must equal k / (t + 1)."""
        t, k, trials = 40, 10, 40_000
        zero = sum(skip_inversion(t, k, rng) == 0 for _ in range(trials))
        expected = k / (t + 1)
        assert abs(zero / trials - expected) < 0.01

    def test_mean_skip(self, rng):
        """E[skip] = (t + 1)/(k - 1) - 1 for the reservoir skip law...
        checked empirically against a direct coin-flip simulation."""
        t, k, trials = 50, 8, 20_000
        # Direct simulation: flip k/n coins until an inclusion.
        def direct():
            n = t
            s = 0
            while True:
                n += 1
                if rng.random() < k / n:
                    return s
                s += 1

        mean_direct = sum(direct() for _ in range(trials)) / trials
        mean_skip = sum(skip_inversion(t, k, rng)
                        for _ in range(trials)) / trials
        assert abs(mean_skip - mean_direct) < 0.35 * max(1.0, mean_direct)


class TestPaperSkipInterface:
    def test_filling_distance_one(self, rng):
        assert skip(0, 5, rng) == 1
        assert skip(4, 5, rng) == 1

    def test_post_fill_distance_at_least_one(self, rng):
        assert all(skip(100, 5, rng) >= 1 for _ in range(200))


class TestSkipGenerator:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            SkipGenerator(0, rng)

    def test_capacity_property(self, rng):
        assert SkipGenerator(7, rng).capacity == 7

    def test_filling_phase(self, rng):
        gen = SkipGenerator(4, rng)
        assert gen.next_skip(0) == 1
        assert gen.next_skip(3) == 1

    def test_x_regime_matches_inclusion_probability(self, rng):
        k, t, trials = 10, 50, 30_000  # below the X threshold
        gen = SkipGenerator(k, rng)
        ones = sum(gen.next_skip(t) == 1 for _ in range(trials))
        expected = k / (t + 1)
        assert abs(ones / trials - expected) < 0.01

    def test_l_regime_produces_uniform_reservoir(self, rng):
        """Above the threshold, Algorithm-L skips still give a uniform
        simple random sample: inclusion counts per element even out."""
        k = 4
        n = ALGORITHM_X_THRESHOLD * k * 3  # well past the switch
        trials = 3_000
        counts = [0] * n
        for trial in range(trials):
            child = rng.spawn("trial", trial)
            gen = SkipGenerator(k, child)
            reservoir = []
            t = 0
            next_insert = 1
            while next_insert <= n:
                value = next_insert - 1
                if len(reservoir) < k:
                    reservoir.append(value)
                else:
                    reservoir[child.randrange(k)] = value
                t = next_insert
                next_insert = t + gen.next_skip(t)
            for v in reservoir:
                counts[v] += 1
        expected = trials * k / n
        # Every element's inclusion count within 6 sigma of expectation.
        sigma = (expected * (1 - k / n)) ** 0.5
        for i, c in enumerate(counts):
            assert abs(c - expected) < 6 * sigma + 5, \
                f"element {i}: {c} vs {expected}"

    def test_reset_clears_state(self, rng):
        gen = SkipGenerator(4, rng)
        gen.next_skip(ALGORITHM_X_THRESHOLD * 4 + 10)
        assert gen._w is not None
        gen.reset()
        assert gen._w is None


class TestExactSkipDistributions:
    """Every generator's skips must match the analytic pmf."""

    T, K, TRIALS = 400, 10, 5_000  # T >= 22*K: the fast paths engage

    def test_inversion_matches_exact_pmf(self, rng):
        def pvalue(child):
            draws = [skip_inversion(self.T, self.K, child.spawn(i))
                     for i in range(self.TRIALS)]
            return chi_square_vs_exact(draws, self.T, self.K)

        result = sweep(pvalue, rng=rng, seeds=3, alpha=1e-4)
        assert result.accepted, result.describe()

    def test_vitter_z_matches_exact_pmf(self, rng):
        def pvalue(child):
            draws = [VitterZSkips(self.K, child.spawn(i)).next_skip(self.T)
                     - 1 for i in range(self.TRIALS)]
            return chi_square_vs_exact(draws, self.T, self.K)

        result = sweep(pvalue, rng=rng, seeds=3, alpha=1e-4)
        assert result.accepted, result.describe()


class TestVitterZ:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            VitterZSkips(0, rng)

    def test_filling_phase(self, rng):
        gen = VitterZSkips(4, rng)
        assert gen.next_skip(0) == 1
        assert gen.next_skip(3) == 1

    def test_x_regime_below_threshold(self, rng):
        """Below 22k, inversion is used: inclusion prob k/(t+1)."""
        k, t, trials = 10, 50, 20_000
        gen = VitterZSkips(k, rng)
        ones = sum(gen.next_skip(t) == 1 for _ in range(trials))
        assert abs(ones / trials - k / (t + 1)) < 0.01

    def test_non_negative_distances(self, rng):
        gen = VitterZSkips(5, rng)
        assert all(gen.next_skip(500) >= 1 for _ in range(500))

    def test_drives_uniform_reservoir(self, rng):
        """End-to-end: a reservoir driven by Z skips is uniform."""
        k, n, trials = 4, 300, 2_000
        counts = [0] * n
        for trial in range(trials):
            child = rng.spawn("zres", trial)
            gen = VitterZSkips(k, child)
            reservoir = []
            t = 0
            next_insert = 1
            while next_insert <= n:
                value = next_insert - 1
                if len(reservoir) < k:
                    reservoir.append(value)
                else:
                    reservoir[child.randrange(k)] = value
                t = next_insert
                next_insert = t + gen.next_skip(t)
            for v in reservoir:
                counts[v] += 1
        expected = trials * k / n
        sigma = (expected * (1 - k / n)) ** 0.5
        for i, c in enumerate(counts):
            assert abs(c - expected) < 6 * sigma + 5, \
                f"element {i}: {c} vs {expected}"

"""Tests for repro.analytics.metadata (metadata discovery)."""

from __future__ import annotations

import pytest

from repro.analytics.metadata import (column_profile, containment_estimate,
                                      discover_candidates, jaccard_estimate)
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.warehouse import SampleWarehouse


@pytest.fixture()
def warehouse():
    """Three columns: orders.customer_id is a subset of customers.id;
    products.sku is unrelated."""
    wh = SampleWarehouse(bound_values=1024, rng=SplittableRng(31))
    rng = SplittableRng(99)
    customer_ids = list(range(10_000))
    order_customers = [rng.choice(customer_ids) for _ in range(30_000)]
    skus = [1_000_000 + i for i in range(5_000)]
    wh.ingest_batch("customers.id", customer_ids, partitions=2)
    wh.ingest_batch("orders.customer_id", order_customers, partitions=3)
    wh.ingest_batch("products.sku", skus, partitions=1)
    return wh


class TestColumnProfile:
    def test_key_column_high_uniqueness(self, warehouse):
        s = warehouse.sample_of("customers.id")
        profile = column_profile("customers.id", s)
        assert profile.uniqueness > 0.5
        assert profile.population_size == 10_000
        assert profile.distinct_in_sample == s.distinct

    def test_non_key_low_uniqueness(self, warehouse):
        s = warehouse.sample_of("orders.customer_id")
        profile = column_profile("orders.customer_id", s)
        assert not profile.looks_like_key()

    def test_top_values(self, warehouse):
        s = warehouse.sample_of("orders.customer_id")
        profile = column_profile("orders.customer_id", s, top=5)
        assert len(profile.top_values) <= 5


class TestOverlapEstimates:
    def test_jaccard_of_identical(self, warehouse):
        s = warehouse.sample_of("customers.id")
        assert jaccard_estimate(s, s) == 1.0

    def test_jaccard_of_disjoint(self, warehouse):
        a = warehouse.sample_of("customers.id")
        b = warehouse.sample_of("products.sku")
        assert jaccard_estimate(a, b) == 0.0

    def test_containment_direction(self, warehouse):
        orders = warehouse.sample_of("orders.customer_id")
        customers = warehouse.sample_of("customers.id")
        lr = containment_estimate(orders, customers)
        rl = containment_estimate(customers, orders)
        # Every order customer id exists among customers, so the sampled
        # overlap should be clearly positive and asymmetric-capable.
        assert lr > 0.1
        assert 0.0 <= rl <= 1.0


class TestDiscovery:
    def test_needs_two_datasets(self):
        wh = SampleWarehouse(bound_values=16, rng=SplittableRng(1))
        wh.ingest_batch("only", list(range(100)))
        with pytest.raises(ConfigurationError):
            discover_candidates(wh)

    def test_ranks_related_pair_first(self, warehouse):
        candidates = discover_candidates(warehouse)
        assert candidates, "no candidates found"
        top = candidates[0]
        pair = {top.left, top.right}
        assert pair == {"customers.id", "orders.customer_id"}

    def test_min_jaccard_filter(self, warehouse):
        candidates = discover_candidates(warehouse, min_jaccard=0.99)
        assert all(c.jaccard >= 0.99 for c in candidates)

    def test_top_truncation(self, warehouse):
        assert len(discover_candidates(warehouse, top=1)) == 1

"""Tests for repro.core.concise (the Section 3.3 baseline)."""

from __future__ import annotations

import pytest

from repro.core.concise import ConciseSampler
from repro.core.footprint import FootprintModel
from repro.errors import ConfigurationError, ProtocolError
from repro.stats.uniformity import concise_nonuniformity_demo

MODEL = FootprintModel(value_bytes=8, count_bytes=4)


class TestConfiguration:
    def test_footprint_too_small(self, rng):
        with pytest.raises(ConfigurationError):
            ConciseSampler(footprint_bytes=4, rng=rng, model=MODEL)

    def test_rate_decay_validation(self, rng):
        with pytest.raises(ConfigurationError):
            ConciseSampler(footprint_bytes=96, rate_decay=1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            ConciseSampler(footprint_bytes=96, rate_decay=0.0, rng=rng)


class TestBoundedFootprint:
    def test_footprint_never_exceeds_bound(self, rng):
        cs = ConciseSampler(footprint_bytes=96, rng=rng, model=MODEL)
        for v in range(5_000):
            cs.feed(v % 500)
            assert cs.footprint_bytes <= 96
        hist = cs.finalize()
        assert hist.footprint(MODEL) <= 96

    def test_small_population_exact_histogram(self, rng):
        """If everything fits, the concise sample is an exact histogram
        (rate stays 1)."""
        cs = ConciseSampler(footprint_bytes=960, rng=rng, model=MODEL)
        data = [i % 5 for i in range(1000)]
        cs.feed_many(data)
        assert cs.rate == 1.0
        hist = cs.finalize()
        assert hist.size == 1000
        assert hist.count(0) == 200

    def test_rate_decays_under_pressure(self, rng):
        cs = ConciseSampler(footprint_bytes=96, rng=rng, model=MODEL)
        cs.feed_many(range(2_000))  # all distinct: constant pressure
        assert cs.rate < 1.0
        assert cs.purge_rounds > 0


class TestNonUniformity:
    def test_section33_h3_never_occurs(self, rng):
        counts = concise_nonuniformity_demo(3_000, rng)
        assert counts["H1"] > 0
        assert counts["H2"] > 0
        assert counts["H3"] == 0

    def test_rare_values_underrepresented(self, rng):
        """Concise sampling's bias: with a skewed population squeezed
        into a tiny footprint, rare values appear in the final sample
        less often than their frequency share (the paper's closing
        remark of Section 3.3).  An element-inclusion chi-square across
        occurrences must reject uniformity."""
        # 1 value occurring 90 times + 30 distinct rare values.
        population = ["common"] * 90 + [f"rare{i}" for i in range(30)]

        def sample_fn(values, child):
            cs = ConciseSampler(footprint_bytes=48, rng=child, model=MODEL)
            cs.feed_many(values)
            return cs.finalize().expand()

        # Attribute occurrences: give every element a distinct identity
        # is impossible for duplicates, so instead check the aggregate:
        # rare values' share in samples vs their share in the data.
        trials = 800
        rare_total = common_total = 0
        for t in range(trials):
            out = sample_fn(population, rng.spawn(t))
            for v in out:
                if v == "common":
                    common_total += 1
                else:
                    rare_total += 1
        rare_share = rare_total / max(1, rare_total + common_total)
        true_share = 30 / 120
        # Bias direction: rare values clearly underrepresented.
        assert rare_share < true_share * 0.9, \
            f"expected rare-value bias, got share {rare_share:.3f}"


class TestProtocol:
    def test_finalize_twice(self, rng):
        cs = ConciseSampler(footprint_bytes=96, rng=rng)
        cs.finalize()
        with pytest.raises(ProtocolError):
            cs.finalize()

    def test_feed_after_finalize(self, rng):
        cs = ConciseSampler(footprint_bytes=96, rng=rng)
        cs.finalize()
        with pytest.raises(ProtocolError):
            cs.feed(1)

"""Tests for repro.analytics.histograms (sample-based synopses)."""

from __future__ import annotations

import pytest

from repro.analytics.histograms import (equi_depth, equi_width, top_k)
from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

MODEL = FootprintModel(8, 4)


def exhaustive_sample(values):
    return WarehouseSample(
        histogram=CompactHistogram.from_values(values),
        kind=SampleKind.EXHAUSTIVE,
        population_size=len(values),
        bound_values=max(1, len(values)),
        model=MODEL,
    )


def hr_sample(values, bound, rng):
    hr = AlgorithmHR(bound_values=bound, rng=rng, model=MODEL)
    hr.feed_many(values)
    return hr.finalize()


class TestEquiDepth:
    def test_validation(self):
        s = exhaustive_sample([1, 2, 3])
        with pytest.raises(ConfigurationError):
            equi_depth(s, 0)

    def test_empty_sample(self, rng):
        empty = WarehouseSample(
            histogram=CompactHistogram(), kind=SampleKind.RESERVOIR,
            population_size=10, bound_values=4, model=MODEL)
        with pytest.raises(ConfigurationError):
            equi_depth(empty, 4)

    def test_exhaustive_equal_depths(self):
        s = exhaustive_sample(list(range(100)))
        h = equi_depth(s, 4)
        assert h.kind == "equi-depth"
        assert len(h) == 4
        for b in h.buckets:
            assert b.estimated_count == pytest.approx(25.0)
        assert h.total_count() == pytest.approx(100.0)

    def test_total_matches_population_estimate(self, rng):
        s = hr_sample(list(range(10_000)), 512, rng)
        h = equi_depth(s, 8)
        assert h.total_count() == pytest.approx(10_000.0, rel=1e-6)

    def test_heavy_value_collapses_buckets(self):
        s = exhaustive_sample([5] * 90 + list(range(10)))
        h = equi_depth(s, 10)
        # The run of 90 fives cannot be split: fewer buckets.
        assert len(h) < 10
        assert h.total_count() == pytest.approx(100.0)

    def test_range_estimate(self, rng):
        s = hr_sample(list(range(10_000)), 1024, rng)
        h = equi_depth(s, 16)
        est = h.estimate_range(2_500, 7_500)
        assert abs(est - 5_000) / 5_000 < 0.15

    def test_range_estimate_degenerate(self):
        s = exhaustive_sample(list(range(10)))
        h = equi_depth(s, 2)
        assert h.estimate_range(5, 5) == 0.0
        assert h.estimate_range(100, 200) == 0.0


class TestEquiWidth:
    def test_validation(self):
        s = exhaustive_sample([1, 2])
        with pytest.raises(ConfigurationError):
            equi_width(s, -1)

    def test_uniform_data_flat(self, rng):
        s = hr_sample(list(range(10_000)), 1024, rng)
        h = equi_width(s, 10)
        assert len(h) == 10
        counts = [b.estimated_count for b in h.buckets]
        assert max(counts) < 2.0 * min(counts)
        assert h.total_count() == pytest.approx(10_000.0, rel=1e-6)

    def test_constant_value(self):
        s = exhaustive_sample([7] * 50)
        h = equi_width(s, 5)
        assert len(h) == 1
        assert h.buckets[0].estimated_count == 50.0

    def test_bucket_edges_cover_range(self):
        s = exhaustive_sample(list(range(100)))
        h = equi_width(s, 4)
        assert h.buckets[0].low == 0.0
        assert h.buckets[-1].high == 99.0
        # Contiguous edges.
        for a, b in zip(h.buckets, h.buckets[1:]):
            assert a.high == b.low

    def test_skewed_data_shape(self, rng):
        values = [1] * 900 + list(range(2, 102))
        s = exhaustive_sample(values)
        h = equi_width(s, 10)
        assert h.buckets[0].estimated_count > h.buckets[-1].estimated_count


class TestTopK:
    def test_validation(self):
        s = exhaustive_sample([1])
        with pytest.raises(ConfigurationError):
            top_k(s, 0)

    def test_exhaustive_exact(self):
        s = exhaustive_sample([1] * 5 + [2] * 3 + [3])
        ranked = top_k(s, 2)
        assert ranked == [(1, 5.0), (2, 3.0)]

    def test_scaled_estimates(self, rng):
        values = [42] * 5_000 + list(range(5_000))
        s = hr_sample(values, 512, rng)
        ranked = top_k(s, 1)
        value, estimate = ranked[0]
        assert value == 42
        assert abs(estimate - 5_000) / 5_000 < 0.25

    def test_k_larger_than_distinct(self):
        s = exhaustive_sample([1, 2])
        assert len(top_k(s, 10)) == 2

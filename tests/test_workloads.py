"""Tests for repro.workloads (generators and the Section 5 grid)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.workloads.generators import (UniformGenerator, UniqueGenerator,
                                        ZipfGenerator, make_generator)
from repro.workloads.scenarios import (PAPER_PARTITION_COUNTS,
                                       PAPER_POPULATION_SIZES, Scenario,
                                       paper_scenarios)


class TestUniqueGenerator:
    def test_permutation(self, rng):
        values = UniqueGenerator().generate(1000, rng)
        assert sorted(values) == list(range(1, 1001))

    def test_shuffled(self, rng):
        values = UniqueGenerator().generate(1000, rng)
        assert values != sorted(values)

    def test_deterministic(self):
        a = UniqueGenerator().generate(100, SplittableRng(5))
        b = UniqueGenerator().generate(100, SplittableRng(5))
        assert a == b

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            UniqueGenerator().generate(-1, rng)


class TestUniformGenerator:
    def test_range(self, rng):
        values = UniformGenerator().generate(5000, rng)
        assert all(1 <= v <= 1_000_000 for v in values)

    def test_custom_range(self, rng):
        values = UniformGenerator(value_range=10).generate(5000, rng)
        assert set(values) <= set(range(1, 11))
        assert len(set(values)) == 10  # all hit with 5000 draws

    def test_stream_matches_count(self, rng):
        assert len(list(UniformGenerator().stream(123, rng))) == 123

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformGenerator(value_range=0)


class TestZipfGenerator:
    def test_range(self, rng):
        values = ZipfGenerator().generate(5000, rng)
        assert all(1 <= v <= 4000 for v in values)

    def test_skew(self, rng):
        values = ZipfGenerator().generate(30_000, rng)
        counts = {}
        for v in values:
            counts[v] = counts.get(v, 0) + 1
        # Value 1 is the most frequent under exponent 1.
        assert max(counts, key=counts.get) == 1

    def test_few_distinct_values(self, rng):
        """The paper's Zipf workload: few distinct values, so samples
        stay exhaustive (footnote to Figures 15-16)."""
        values = ZipfGenerator().generate(100_000, rng)
        assert len(set(values)) <= 4000


class TestMakeGenerator:
    def test_dispatch(self):
        assert make_generator("unique").name == "unique"
        assert make_generator("uniform").name == "uniform"
        assert make_generator("zipfian").name == "zipfian"

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_generator("normal")


class TestScenario:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario("bogus", 100, 1)
        with pytest.raises(ConfigurationError):
            Scenario("unique", 0, 1)
        with pytest.raises(ConfigurationError):
            Scenario("unique", 10, 20)

    def test_partition_values(self):
        s = Scenario("unique", 1000, 4)
        chunks = s.partition_values(SplittableRng(1))
        assert len(chunks) == 4
        assert sum(len(c) for c in chunks) == 1000

    def test_label(self):
        assert Scenario("unique", 2 ** 20, 64).label() == "unique/2^20/64p"
        assert Scenario("uniform", 1000, 2).label() == "uniform/1000/2p"

    def test_partition_size(self):
        assert Scenario("unique", 1000, 4).partition_size == 250


class TestPaperGrid:
    def test_full_grid_is_198(self):
        assert sum(1 for _ in paper_scenarios()) == 198

    def test_grid_composition(self):
        assert len(PAPER_POPULATION_SIZES) == 6
        assert len(PAPER_PARTITION_COUNTS) == 11
        assert PAPER_POPULATION_SIZES[0] == 2 ** 20
        assert PAPER_POPULATION_SIZES[-1] == 2 ** 26
        assert PAPER_PARTITION_COUNTS == (1, 2, 4, 8, 16, 32, 64, 128,
                                          256, 512, 1024)

    def test_max_population_filter(self):
        scenarios = list(paper_scenarios(max_population=2 ** 21))
        assert all(s.population_size <= 2 ** 21 for s in scenarios)
        assert len(scenarios) == 2 * 11 * 3

    def test_restricted_grid(self):
        scenarios = list(paper_scenarios(distributions=("unique",),
                                         population_sizes=(64,),
                                         partition_counts=(1, 128)))
        assert len(scenarios) == 1  # 128 partitions > 64 skipped

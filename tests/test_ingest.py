"""Tests for repro.warehouse.ingest (batch division, stream policies)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.phases import SampleKind
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.ingest import (CountPolicy, FractionPolicy,
                                    StreamIngestor, split_batch)


class TestSplitBatch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_batch([1, 2], 0)

    def test_even_split(self):
        chunks = split_batch(list(range(10)), 5)
        assert [len(c) for c in chunks] == [2] * 5

    def test_remainder_spread(self):
        chunks = split_batch(list(range(11)), 3)
        assert [len(c) for c in chunks] == [4, 4, 3]

    def test_more_partitions_than_values(self):
        chunks = split_batch([1, 2], 5)
        assert [len(c) for c in chunks] == [1, 1, 0, 0, 0]

    def test_order_preserved(self):
        chunks = split_batch(list(range(9)), 2)
        assert list(chunks[0]) + list(chunks[1]) == list(range(9))

    @given(st.lists(st.integers(), max_size=200),
           st.integers(min_value=1, max_value=20))
    @settings(max_examples=80)
    def test_property_lossless(self, values, k):
        chunks = split_batch(values, k)
        assert len(chunks) == k
        rejoined = [v for c in chunks for v in c]
        assert rejoined == values
        sizes = [len(c) for c in chunks]
        assert max(sizes) - min(sizes) <= 1


class TestPolicies:
    def test_count_policy(self):
        p = CountPolicy(100)
        assert p.expected_size() == 100
        with pytest.raises(ConfigurationError):
            CountPolicy(0)

    def test_fraction_policy_validation(self):
        with pytest.raises(ConfigurationError):
            FractionPolicy(0.0)
        with pytest.raises(ConfigurationError):
            FractionPolicy(1.5)

    def test_fraction_policy_has_no_expected_size(self):
        assert FractionPolicy(0.5).expected_size() is None


class _Collector:
    def __init__(self):
        self.items = []

    def __call__(self, key, sample):
        self.items.append((key, sample))


class TestStreamIngestor:
    def make(self, policy, scheme="hr", dataset="d", **kwargs):
        sink = _Collector()
        ing = StreamIngestor(dataset, scheme=scheme, bound_values=64,
                             policy=policy, sink=sink,
                             rng=SplittableRng(3), **kwargs)
        return ing, sink

    def test_count_policy_cuts(self):
        ing, sink = self.make(CountPolicy(1000))
        ing.feed_many(range(3_500))
        keys = ing.close()
        # 3 full partitions + 1 partial
        assert len(keys) == 4
        assert [k.seq for k in keys] == [0, 1, 2, 3]
        sizes = [s.population_size for _k, s in sink.items]
        assert sizes == [1000, 1000, 1000, 500]

    def test_exact_boundary_no_empty_partition(self):
        ing, sink = self.make(CountPolicy(500))
        ing.feed_many(range(1000))
        keys = ing.close()
        assert len(keys) == 2
        assert all(s.population_size == 500 for _k, s in sink.items)

    def test_hb_scheme_with_count_policy(self):
        ing, sink = self.make(CountPolicy(2000), scheme="hb")
        ing.feed_many(range(4000))
        ing.close()
        kinds = {s.kind for _k, s in sink.items}
        assert kinds <= {SampleKind.BERNOULLI, SampleKind.RESERVOIR,
                         SampleKind.EXHAUSTIVE}

    def test_hb_scheme_requires_count_policy(self):
        with pytest.raises(ConfigurationError):
            self.make(FractionPolicy(0.5), scheme="hb")

    def test_fraction_policy_adaptive_cuts(self):
        """Partitions close once the sample/parent ratio hits the floor:
        with n_F = 64 and floor 1/16, each partition has ~1024 elements."""
        ing, sink = self.make(FractionPolicy(1 / 16))
        ing.feed_many(range(5_000))
        ing.close()
        sizes = [s.population_size for _k, s in sink.items[:-1]]
        assert sizes, "no partitions finalized"
        for size in sizes:
            assert 900 <= size <= 1100

    def test_stream_index_in_keys(self):
        ing, _sink = self.make(CountPolicy(10), stream=7)
        ing.feed_many(range(25))
        keys = ing.close()
        assert all(k.stream == 7 for k in keys)

    def test_start_seq(self):
        ing, _sink = self.make(CountPolicy(10), start_seq=5)
        ing.feed_many(range(10))
        assert ing.close() == [PartitionKey("d", 0, 5)]

    def test_close_twice(self):
        ing, _sink = self.make(CountPolicy(10))
        ing.close()
        with pytest.raises(ProtocolError):
            ing.close()

    def test_feed_after_close(self):
        ing, _sink = self.make(CountPolicy(10))
        ing.close()
        with pytest.raises(ProtocolError):
            ing.feed(1)

    def test_emitted_property(self):
        ing, _sink = self.make(CountPolicy(10))
        ing.feed_many(range(20))
        assert len(ing.emitted) == 2
        assert ing.current_seen == 0

"""Tests for the observability layer (repro.obs).

Covers the satellite checklist of the observability PR: registry
thread-safety (including under ``ThreadExecutor``), span
nesting/ordering, the no-op overhead smoke test (instrumentation off
must neither change results nor cost real time), and the JSONL sink
round-trip — plus harness and CLI integration.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.errors import ConfigurationError
from repro.obs import (JsonlSink, MetricsRegistry, RingBufferSink, TeeSink,
                       capture, disable, enable, read_spans, span)
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS, NullRegistry
from repro.rng import SplittableRng
from repro.warehouse.ingest import CountPolicy
from repro.warehouse.parallel import ThreadExecutor
from repro.warehouse.storage import sample_to_dict
from repro.warehouse.warehouse import SampleWarehouse


class TestRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(4)
        reg.counter("c").add(5)
        assert reg.counter("c").value == 10

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("c").inc(-1)

    def test_gauge(self):
        reg = MetricsRegistry()
        assert reg.gauge("g").value is None
        reg.gauge("g").set(2.5)
        assert reg.gauge("g").value == 2.5

    def test_histogram_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        for v in [1.0, 2.0, 3.0, 4.0]:
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 10.0
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["mean"] == 2.5
        assert 1.0 <= snap["p50"] <= 3.0

    def test_timer_uses_monotonic_clock(self):
        reg = MetricsRegistry()
        with reg.timer("t.seconds"):
            time.sleep(0.01)
        snap = reg.histogram("t.seconds").snapshot()
        assert snap["count"] == 1
        assert snap["max"] >= 0.005

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_snapshot_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        assert reg.snapshot()["c"]["value"] == 3
        reg.reset()
        snap = reg.snapshot()
        assert snap["c"]["value"] == 0
        assert snap["g"]["value"] is None
        assert snap["h"]["count"] == 0

    def test_to_json_and_report(self):
        import json

        reg = MetricsRegistry()
        reg.counter("events").inc(2)
        reg.histogram("lat.seconds").observe(0.5)
        parsed = json.loads(reg.to_json())
        assert parsed["events"]["value"] == 2
        text = reg.report()
        assert "counters" in text and "events" in text
        assert "lat.seconds" in text

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        reg.counter("x").inc()
        reg.gauge("x").set(1.0)
        reg.histogram("x").observe(1.0)
        with reg.timer("x"):
            pass
        assert reg.snapshot() == {}
        assert reg.report() == ""


class TestThreadSafety:
    def test_concurrent_counter_increments_are_exact(self):
        reg = MetricsRegistry()
        n_threads, per_thread = 8, 5_000

        def work():
            c = reg.counter("hits")
            h = reg.histogram("vals")
            for i in range(per_thread):
                c.inc()
                h.observe(i)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == n_threads * per_thread
        assert reg.histogram("vals").count == n_threads * per_thread

    def test_names_races_concurrent_registration(self):
        # Regression: names() iterated self._metrics without the lock,
        # so a reader racing first-use registrations could blow up with
        # "dictionary changed size during iteration" (RPR101).
        reg = MetricsRegistry()
        stop = threading.Event()
        errors = []

        def writer(tid):
            i = 0
            while not stop.is_set():
                reg.counter(f"w{tid}.c{i}")
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    names = reg.names()
                    assert names == sorted(names)
            except RuntimeError as exc:  # pragma: no cover - bug path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert reg.names() == sorted(reg.names())

    def test_registry_under_thread_executor(self, rng):
        with capture() as (reg, _):
            wh = SampleWarehouse(bound_values=64, scheme="hr", rng=rng)
            wh.ingest_batch("t.v", list(range(20_000)), partitions=8,
                            executor=ThreadExecutor(4))
        snap = reg.snapshot()
        assert snap["parallel.tasks"]["value"] == 8
        assert snap["parallel.task.seconds.thread"]["count"] == 8
        assert snap["hr.finalize"]["value"] == 8
        assert snap["hr.arrivals"]["value"] == 20_000


class TestSpans:
    def test_nesting_and_post_order_emission(self):
        with capture() as (_, ring):
            with span("outer", label="a"):
                with span("inner"):
                    pass
                with span("inner2"):
                    pass
        names = [s.name for s in ring.spans]
        assert names == ["inner", "inner2", "outer"]  # emitted on close
        by_name = {s.name: s for s in ring.spans}
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.depth == 0 and outer.parent_id is None
        assert inner.depth == 1 and inner.parent_id == outer.span_id
        assert by_name["inner2"].parent_id == outer.span_id
        assert outer.attrs == {"label": "a"}
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_render_indents_by_depth(self):
        with capture() as (_, ring):
            with span("outer"):
                with span("inner", k=1):
                    pass
        text = ring.render()
        lines = text.splitlines()
        assert lines[0].startswith("outer ")
        assert lines[1].startswith("  inner ")
        assert "k=1" in lines[1]

    def test_threads_get_independent_stacks(self):
        with capture() as (_, ring):
            def worker():
                with span("child-thread"):
                    pass

            with span("main-thread"):
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        by_name = {s.name: s for s in ring.spans}
        # The worker's span must NOT claim the main thread's open span
        # as a parent — stacks are thread-local.
        assert by_name["child-thread"].parent_id is None
        assert by_name["child-thread"].depth == 0

    def test_ring_buffer_caps_capacity(self):
        with capture(sink=RingBufferSink(capacity=3)) as (_, ring):
            for i in range(10):
                with span(f"s{i}"):
                    pass
        assert [s.name for s in ring.spans] == ["s7", "s8", "s9"]

    def test_disabled_span_is_shared_inert_object(self):
        assert not OBS.enabled
        cm1 = span("anything", k=1)
        cm2 = span("else")
        assert cm1 is cm2  # no allocation on the disabled path
        with cm1:
            pass


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlSink(path) as sink:
            with capture(sink=TeeSink(sink, RingBufferSink())):
                with span("outer", dataset="d"):
                    with span("inner"):
                        pass
        loaded = list(read_spans(path))
        assert [s.name for s in loaded] == ["inner", "outer"]
        outer = loaded[1]
        assert outer.attrs == {"dataset": "d"}
        assert loaded[0].parent_id == outer.span_id
        assert loaded[0].duration <= outer.duration

    def test_tee_sink_requires_sinks(self):
        with pytest.raises(ConfigurationError):
            TeeSink()


def _run_hb(seed: int, n: int = 20_000):
    hb = AlgorithmHB(n, bound_values=128, rng=SplittableRng(seed))
    t0 = monotonic()
    hb.feed_many(range(n))
    elapsed = monotonic() - t0
    return hb.finalize(), elapsed


class TestNoopOverhead:
    def test_observability_does_not_change_samples(self):
        baseline, _ = _run_hb(11)
        with capture():
            observed, _ = _run_hb(11)
        assert sample_to_dict(baseline) == sample_to_dict(observed)

    def test_disabled_by_default_and_restored(self):
        assert not OBS.enabled
        with capture() as (reg, _):
            assert OBS.enabled
            assert OBS.registry is reg
        assert not OBS.enabled
        assert isinstance(OBS.registry, NullRegistry)

    def test_enable_disable(self):
        reg = MetricsRegistry()
        enable(registry=reg)
        try:
            assert OBS.enabled and OBS.registry is reg
        finally:
            disable()
        assert not OBS.enabled

    def test_noop_overhead_smoke(self):
        # The disabled path is a single attribute lookup per site; an
        # instrumented (capture) run only adds work at phase
        # transitions.  Bounds are deliberately loose — this is a smoke
        # test against gross regressions, not a benchmark.
        _run_hb(1)  # warm-up
        _, t_off = _run_hb(2)
        with capture():
            _, t_on = _run_hb(2)
        slack = 0.25
        assert t_on <= t_off * 10 + slack
        assert t_off <= t_on * 10 + slack


class TestStreamIngestMetrics:
    def test_cut_events_and_rates(self, rng):
        with capture() as (reg, ring):
            wh = SampleWarehouse(bound_values=32, scheme="hr", rng=rng)
            ing = wh.open_stream("s.v", policy=CountPolicy(1_000))
            ing.feed_many(range(3_500))
            ing.close()
        snap = reg.snapshot()
        assert snap["ingest.stream.cuts"]["value"] == 4  # 3 full + tail
        assert snap["ingest.stream.arrivals"]["value"] == 3_500
        assert snap["ingest.stream.partition.seconds"]["count"] == 4
        assert snap["ingest.stream.partition.arrivals"]["max"] == 1_000
        assert snap["ingest.stream.arrival_rate"]["value"] > 0
        cut_spans = [s for s in ring.spans if s.name == "ingest.partition"]
        assert len(cut_spans) == 4
        assert cut_spans[0].attrs["arrivals"] == 1_000


class TestHarnessIntegration:
    def test_collect_metrics_attaches_snapshot_and_trace(self, rng):
        from repro.bench.harness import run_pipeline
        from repro.workloads.scenarios import Scenario

        scenario = Scenario("unique", population_size=20_000,
                            partitions=4)
        result = run_pipeline(scenario, "hb", bound_values=128,
                              rng=rng.spawn("obs-bench"),
                              collect_metrics=True)
        assert result.metrics is not None
        assert result.metrics["hb.finalize"]["value"] == 4
        assert result.metrics["merge.hb"]["value"] == 3
        assert result.metrics["merge.hb.seconds"]["count"] == 3
        names = {s["name"] for s in result.trace}
        assert "bench.partition" in names
        assert "merge.tree" in names
        # Plain runs stay unobserved.
        plain = run_pipeline(scenario, "hb", bound_values=128,
                             rng=rng.spawn("obs-bench"))
        assert plain.metrics is None and plain.trace is None
        assert not OBS.enabled


class TestCliObs:
    def test_obs_command(self, capsys, tmp_path):
        from repro.cli import main

        trace_path = str(tmp_path / "trace.jsonl")
        rc = main(["obs", "--partitions", "10", "--size", "20000",
                   "--bound", "256", "--trace-out", trace_path])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hb.phase2.enter" in out
        assert "parallel.task.seconds.serial" in out
        assert "merge.hb" in out
        assert "trace (nested spans):" in out
        assert "  hb.phase2" in out  # nested under ingest.batch
        loaded = list(read_spans(trace_path))
        assert any(s.name == "ingest.batch" for s in loaded)

    def test_obs_command_json(self, capsys):
        import json

        from repro.cli import main

        rc = main(["obs", "--partitions", "4", "--size", "4000",
                   "--bound", "64", "--json"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["ingest.batch.partitions"]["value"] == 4

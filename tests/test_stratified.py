"""Tests for repro.core.stratified and warehouse stratified access."""

from __future__ import annotations

import pytest

from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.stratified import StratifiedSample
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.warehouse import SampleWarehouse


def stratum(values, bound, rng):
    hr = AlgorithmHR(bound_values=bound, rng=rng)
    hr.feed_many(values)
    return hr.finalize()


class TestConstruction:
    def test_needs_strata(self):
        with pytest.raises(ConfigurationError):
            StratifiedSample([])

    def test_accounting(self, rng):
        s = StratifiedSample([
            stratum(list(range(1000)), 32, rng.spawn(0)),
            stratum(list(range(1000, 3000)), 32, rng.spawn(1)),
        ])
        assert s.num_strata == 2
        assert s.population_size == 3000
        assert s.size == 64
        assert len(s.values()) == 64


class TestEstimators:
    def test_exact_when_all_exhaustive(self, rng):
        s = StratifiedSample([
            stratum([1, 2, 3], 100, rng.spawn(0)),
            stratum([4, 5], 100, rng.spawn(1)),
        ])
        est = s.estimate_sum()
        assert est.value == 15.0
        assert est.exact
        avg = s.estimate_avg()
        assert avg.value == 3.0

    def test_sum_accuracy(self, rng):
        strata = [stratum(list(range(i * 10_000, (i + 1) * 10_000)), 256,
                          rng.spawn(i)) for i in range(4)]
        s = StratifiedSample(strata)
        truth = sum(range(40_000))
        est = s.estimate_sum()
        assert abs(est.value - truth) / truth < 0.05
        assert est.ci_low < est.value < est.ci_high

    def test_count_with_predicate(self, rng):
        strata = [stratum(list(range(i * 5_000, (i + 1) * 5_000)), 256,
                          rng.spawn(i)) for i in range(2)]
        s = StratifiedSample(strata)
        est = s.estimate_count(where=lambda v: v < 5_000)
        # The predicate aligns with stratum 0 exactly: stratified
        # estimation nails it (zero between-strata leakage).
        assert est.value == pytest.approx(5_000.0)

    def test_stratification_beats_merging_on_drifted_data(self, rng):
        """When stratum means differ wildly, the stratified estimator's
        interval is tighter than the merged-sample estimator's."""
        from repro.analytics.estimators import estimate_avg
        from repro.core.merge import merge_tree

        strata = []
        for i in range(4):
            base = i * 1_000_000  # strong drift between partitions
            strata.append(stratum([base + v for v in range(8_000)], 128,
                                  rng.spawn("s", i)))
        stratified = StratifiedSample(strata).estimate_avg()
        merged = estimate_avg(merge_tree(strata, rng=rng.spawn("m")))
        assert stratified.half_width < merged.half_width

    def test_avg_empty_population(self):
        with pytest.raises(ConfigurationError):
            s = StratifiedSample.__new__(StratifiedSample)
            s._strata = []
            s.estimate_avg()


class TestWarehouseIntegration:
    def test_stratified_sample_of(self):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(12))
        wh.ingest_batch("d", list(range(20_000)), partitions=5)
        s = wh.stratified_sample_of("d")
        assert s.num_strata == 5
        assert s.population_size == 20_000

    def test_label_selection(self):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(12))
        wh.ingest_batch("d", list(range(9_000)), partitions=3,
                        labels=["a", "b", "a"])
        s = wh.stratified_sample_of("d", labels=["a"])
        assert s.num_strata == 2
        assert s.population_size == 6_000

    def test_empty_selection(self):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(12))
        wh.ingest_batch("d", list(range(100)))
        with pytest.raises(ConfigurationError):
            wh.stratified_sample_of("d", keys=[])

"""Tests for repro.core.counting (deletion-capable concise variant)."""

from __future__ import annotations

import pytest

from repro.core.counting import CountingSampler
from repro.core.footprint import FootprintModel
from repro.errors import ConfigurationError, ProtocolError

MODEL = FootprintModel(value_bytes=8, count_bytes=4)


class TestConfiguration:
    def test_footprint_too_small(self, rng):
        with pytest.raises(ConfigurationError):
            CountingSampler(footprint_bytes=4, rng=rng, model=MODEL)

    def test_rate_decay_validation(self, rng):
        with pytest.raises(ConfigurationError):
            CountingSampler(footprint_bytes=96, rate_decay=1.5, rng=rng)


class TestCountingSemantics:
    def test_in_sample_values_count_deterministically(self, rng):
        cs = CountingSampler(footprint_bytes=960, rng=rng, model=MODEL)
        # rate starts at 1, so the first occurrence is admitted
        for _ in range(7):
            cs.feed("v")
        assert cs.histogram.count("v") == 7

    def test_exact_suffix_counts_after_admission(self, rng):
        """Once admitted, counts are exact even after the rate decays."""
        cs = CountingSampler(footprint_bytes=96, rng=rng, model=MODEL)
        cs.feed("tracked")
        # Flood with distinct values to force purges / rate decay.
        cs.feed_many(range(3_000))
        if "tracked" in cs.histogram:
            before = cs.histogram.count("tracked")
            for _ in range(5):
                cs.feed("tracked")
            assert cs.histogram.count("tracked") == before + 5

    def test_footprint_bound(self, rng):
        cs = CountingSampler(footprint_bytes=96, rng=rng, model=MODEL)
        for v in range(5_000):
            cs.feed(v)
            assert cs.footprint_bytes <= 96


class TestDeletions:
    def test_delete_decrements(self, rng):
        cs = CountingSampler(footprint_bytes=960, rng=rng, model=MODEL)
        cs.feed("a")
        cs.feed("a")
        assert cs.delete("a") is True
        assert cs.histogram.count("a") == 1

    def test_delete_to_zero_evicts(self, rng):
        cs = CountingSampler(footprint_bytes=960, rng=rng, model=MODEL)
        cs.feed("a")
        cs.delete("a")
        assert "a" not in cs.histogram

    def test_delete_unsampled_is_noop(self, rng):
        cs = CountingSampler(footprint_bytes=960, rng=rng, model=MODEL)
        assert cs.delete("ghost") is False
        assert cs.deletions == 1

    def test_insert_delete_roundtrip_counts(self, rng):
        cs = CountingSampler(footprint_bytes=960, rng=rng, model=MODEL)
        for _ in range(10):
            cs.feed("x")
        for _ in range(10):
            cs.delete("x")
        assert "x" not in cs.histogram
        assert cs.seen == 10
        assert cs.deletions == 10


class TestProtocol:
    def test_finalize_twice(self, rng):
        cs = CountingSampler(footprint_bytes=96, rng=rng)
        cs.finalize()
        with pytest.raises(ProtocolError):
            cs.finalize()

    def test_operations_after_finalize(self, rng):
        cs = CountingSampler(footprint_bytes=96, rng=rng)
        cs.finalize()
        with pytest.raises(ProtocolError):
            cs.feed(1)
        with pytest.raises(ProtocolError):
            cs.delete(1)

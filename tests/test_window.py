"""Tests for repro.warehouse.window (sliding-window sampling)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.warehouse.window import SlidingWindowSampler


def make_window(partition_size=1000, window_partitions=3, bound=32,
                seed=8, **kwargs):
    return SlidingWindowSampler(
        partition_size=partition_size,
        window_partitions=window_partitions,
        bound_values=bound,
        rng=SplittableRng(seed),
        **kwargs)


class TestConfiguration:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            make_window(partition_size=0)
        with pytest.raises(ConfigurationError):
            make_window(window_partitions=0)


class TestRolling:
    def test_partitions_roll(self):
        w = make_window()
        w.feed_many(range(2_500))
        assert w.live_partitions == 2
        assert w.evicted_partitions == 0

    def test_eviction_after_window_full(self):
        w = make_window()
        w.feed_many(range(5_000))  # 5 partitions; window holds 3
        assert w.live_partitions == 3
        assert w.evicted_partitions == 2

    def test_window_population(self):
        w = make_window()
        w.feed_many(range(4_200))
        # 4 finalized, newest 3 in window; 200 still open
        assert w.window_population() == 3_000

    def test_window_sample_covers_recent_data(self):
        w = make_window()
        w.feed_many(range(10_000))  # partitions 7, 8, 9 live
        s = w.window_sample()
        s.check_invariants()
        assert s.population_size == 3_000
        assert all(7_000 <= v < 10_000 for v in s.values())

    def test_window_sample_without_data(self):
        w = make_window()
        with pytest.raises(ProtocolError):
            w.window_sample()

    def test_include_open_cuts_early(self):
        w = make_window()
        w.feed_many(range(1_500))  # 1 full partition + 500 open
        s = w.window_sample(include_open=True)
        assert s.population_size == 1_500
        assert w.live_partitions == 2

    def test_close(self):
        w = make_window()
        w.feed_many(range(100))
        w.close()
        with pytest.raises(ProtocolError):
            w.feed(1)


class TestApproximation:
    def test_window_slides_in_hops(self):
        """The window advances partition-at-a-time: after 7 partitions
        with window=3, only values from the last 3 survive."""
        w = make_window(partition_size=500, window_partitions=3)
        w.feed_many(range(3_500))
        s = w.window_sample()
        cutoff = 3_500 - 3 * 500
        assert all(v >= cutoff for v in s.values())

    def test_hb_scheme_supported(self):
        w = make_window(scheme="hb")
        w.feed_many(range(5_000))
        s = w.window_sample()
        s.check_invariants()
        assert s.population_size == 3_000

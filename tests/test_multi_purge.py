"""Tests for repro.core.multi_purge (the Section 4.1 HB variant)."""

from __future__ import annotations

import pytest

from repro.core.multi_purge import MultiPurgeBernoulli
from repro.core.phases import SampleKind
from repro.errors import ConfigurationError, ProtocolError


class TestConfiguration:
    def test_population_positive(self, rng):
        with pytest.raises(ConfigurationError):
            MultiPurgeBernoulli(0, bound_values=16, rng=rng)

    def test_exactly_one_bound(self, rng):
        with pytest.raises(ConfigurationError):
            MultiPurgeBernoulli(100, rng=rng)

    def test_decay_validation(self, rng):
        with pytest.raises(ConfigurationError):
            MultiPurgeBernoulli(100, bound_values=16, purge_decay=1.0,
                                rng=rng)


class TestBehaviour:
    def test_small_data_exhaustive(self, rng):
        mp = MultiPurgeBernoulli(50, bound_values=1000, rng=rng)
        mp.feed_many(list(range(50)))
        s = mp.finalize()
        assert s.kind is SampleKind.EXHAUSTIVE
        assert s.scheme == "hb-mp"

    def test_bound_always_holds(self, rng):
        mp = MultiPurgeBernoulli(20_000, bound_values=64, rng=rng)
        for v in range(20_000):
            mp.feed(v)
            assert mp.sample_size <= 64
        s = mp.finalize()
        assert s.size < 64
        assert s.kind is SampleKind.BERNOULLI

    def test_repurges_with_underdeclared_population(self, rng):
        """Feeding more pressure than the initial q anticipated forces
        extra purges and ever-smaller rates — the defining behaviour."""
        mp = MultiPurgeBernoulli(2_000, bound_values=64, rng=rng,
                                 exceedance_p=0.4)
        mp.feed_many(list(range(2_000)))
        assert mp.purge_count >= 1
        assert mp.rate < 1.0
        s = mp.finalize()
        assert s.size <= 64

    def test_rate_monotone_decreasing(self, rng):
        mp = MultiPurgeBernoulli(50_000, bound_values=128, rng=rng)
        rates = []
        for v in range(50_000):
            mp.feed(v)
            rates.append(mp.rate)
        assert all(a >= b for a, b in zip(rates, rates[1:]))


class TestProtocol:
    def test_overfeeding(self, rng):
        mp = MultiPurgeBernoulli(10, bound_values=4, rng=rng)
        mp.feed_many(list(range(20)))
        with pytest.raises(ProtocolError):
            mp.finalize()

    def test_finalize_twice(self, rng):
        mp = MultiPurgeBernoulli(10, bound_values=4, rng=rng)
        mp.finalize()
        with pytest.raises(ProtocolError):
            mp.finalize()

"""Tests for the error-bounded AQP planner (repro.analytics.planner).

Covers plan certification, greedy partition selection, fallback
triggers, stratified execution, engine integration (including the
per-dataset cache invalidation satellite), and metrics emission.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analytics.aqp import ApproximateQueryEngine
from repro.analytics.planner import QueryPlanner
from repro.errors import ConfigurationError, DatasetNotFoundError
from repro.obs.runtime import capture
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.parallel import SampleTask, sample_partition
from repro.warehouse.synopsis import PartitionSynopsis
from repro.warehouse.warehouse import SampleWarehouse


def exact_warehouse(*, partitions=6, per=200, seed=7, dataset="plan.exact"):
    """Warehouse where every partition carries an exact synopsis."""
    wh = SampleWarehouse(bound_values=64, rng=SplittableRng(seed))
    rng = SplittableRng(seed).spawn("values")
    for i in range(partitions):
        values = [rng.gauss(50.0 + 5.0 * i, 6.0) for _ in range(per)]
        wh.ingest_batch(dataset, values)
    return wh


def sketchy_warehouse(*, partitions=6, per=300, seed=11,
                      dataset="plan.sketch", live_bound=64, sketch_bound=8):
    """Warehouse whose synopses come from coarse sketches, so the live
    samples carry much more information than the stored statistics —
    the regime where selection actually pays."""
    wh = SampleWarehouse(bound_values=live_bound, rng=SplittableRng(seed))
    rng = SplittableRng(seed).spawn("values")
    truth = 0.0
    for i in range(partitions):
        values = [rng.gauss(40.0 + 10.0 * i, 5.0 + i) for _ in range(per)]
        truth += sum(values)
        srng = SplittableRng(seed).spawn("sample", i)
        live = sample_partition(SampleTask(
            values=values, scheme="hr", bound_values=live_bound,
            seed=srng.spawn("live").seed_value))
        sketch = sample_partition(SampleTask(
            values=values, scheme="hr", bound_values=sketch_bound,
            seed=srng.spawn("sketch").seed_value))
        wh.ingest_sample(
            PartitionKey(dataset, 0, i), live,
            synopsis=PartitionSynopsis.from_sample(sketch))
    return wh, truth


class TestPlanCertification:
    def test_exact_synopses_certify_without_selection(self):
        wh = exact_warehouse()
        plan = QueryPlanner(wh).plan("plan.exact", "sum",
                                     target_half_width=1.0)
        assert plan.certified and not plan.fallback
        assert plan.selected == ()
        assert plan.predicted_half_width == 0.0
        assert len(plan.synopsis_keys) == plan.total_partitions == 6

    def test_count_certifies_with_zero_reads(self):
        wh = exact_warehouse()
        plan = QueryPlanner(wh).plan("plan.exact", "count",
                                     target_half_width=0.0)
        assert plan.certified and plan.selected == ()
        est = QueryPlanner(wh).execute(plan)
        assert est.value == 6 * 200 and est.exact

    def test_estimated_synopses_force_selection(self):
        wh, _ = sketchy_warehouse()
        planner = QueryPlanner(wh)
        loose = planner.plan("plan.sketch", "sum", target_half_width=0.5,
                             relative=True)
        tight = planner.plan("plan.sketch", "sum", target_half_width=0.02,
                             relative=True)
        assert loose.certified and tight.certified
        assert len(tight.selected) > len(loose.selected)
        assert tight.predicted_half_width <= tight.target_half_width

    def test_greedy_picks_highest_gain_first(self):
        wh, _ = sketchy_warehouse()
        planner = QueryPlanner(wh)
        # Sweep targets from loose to tight: the selected sets must be
        # nested (greedy order is a fixed ranking by gain).
        prev = None
        for frac in (0.5, 0.2, 0.1, 0.05, 0.02):
            plan = planner.plan("plan.sketch", "sum",
                                target_half_width=frac, relative=True)
            chosen = set(plan.selected)
            if prev is not None:
                assert prev <= chosen
            prev = chosen

    def test_avg_plans_in_sum_space(self):
        wh, _ = sketchy_warehouse()
        plan = QueryPlanner(wh).plan("plan.sketch", "avg",
                                     target_half_width=0.05, relative=True)
        assert plan.certified
        est = QueryPlanner(wh).execute(plan)
        assert est.ci_low <= est.value <= est.ci_high

    def test_ranked_orders_by_unselected_variance(self):
        wh, _ = sketchy_warehouse()
        plan = QueryPlanner(wh).plan("plan.sketch", "sum",
                                     target_half_width=0.1, relative=True)
        weights = [w for _, w in plan.ranked]
        assert weights == sorted(weights, reverse=True)


class TestFallbacks:
    def test_missing_synopsis_falls_back(self):
        wh = exact_warehouse(partitions=2, dataset="plan.bare")
        # Simulate a record persisted by a pre-synopsis producer: strip
        # one partition's statistics and re-register it.
        meta = wh.catalog.partitions("plan.bare")[0]
        wh.catalog.register(dataclasses.replace(meta, synopsis=None),
                            replace=True)
        plan = QueryPlanner(wh).plan("plan.bare", "sum",
                                     target_half_width=1.0)
        assert plan.fallback and not plan.certified
        assert "no usable synopsis" in plan.reason

    def test_unreachable_bound_falls_back(self):
        wh, _ = sketchy_warehouse()
        plan = QueryPlanner(wh).plan("plan.sketch", "sum",
                                     target_half_width=0.0001, relative=True)
        assert plan.fallback
        assert "not certifiable" in plan.reason

    def test_unknown_dataset_raises(self):
        wh = exact_warehouse()
        with pytest.raises(DatasetNotFoundError):
            QueryPlanner(wh).plan("no.such.dataset", "sum",
                                  target_half_width=1.0)

    def test_all_rolled_out_falls_back(self):
        wh = exact_warehouse(partitions=2, dataset="plan.empty")
        for meta in wh.catalog.partitions("plan.empty"):
            wh.roll_out(meta.key)
        plan = QueryPlanner(wh).plan("plan.empty", "sum",
                                     target_half_width=1.0)
        assert plan.fallback
        assert "no partitions" in plan.reason

    def test_bad_arguments_raise(self):
        wh = exact_warehouse()
        planner = QueryPlanner(wh)
        with pytest.raises(ConfigurationError):
            planner.plan("plan.exact", "median", target_half_width=1.0)
        with pytest.raises(ConfigurationError):
            planner.plan("plan.exact", "sum", target_half_width=-1.0)
        with pytest.raises(ConfigurationError):
            planner.plan("plan.exact", "sum", target_half_width=1.0,
                         confidence=1.5)

    def test_execute_rejects_fallback_plan(self):
        wh, _ = sketchy_warehouse()
        planner = QueryPlanner(wh)
        plan = planner.plan("plan.sketch", "sum",
                            target_half_width=0.0001, relative=True)
        assert plan.fallback
        with pytest.raises(ConfigurationError):
            planner.execute(plan)


class TestExecution:
    def test_sum_interval_contains_point_estimate(self):
        wh, truth = sketchy_warehouse()
        planner = QueryPlanner(wh)
        plan = planner.plan("plan.sketch", "sum", target_half_width=0.05,
                            relative=True)
        assert plan.certified
        est = planner.execute(plan)
        assert est.ci_low <= est.value <= est.ci_high
        assert est.confidence == plan.confidence
        # The realized half-width respects the certificate's order of
        # magnitude (the certificate is conservative, not exact).
        assert (est.ci_high - est.ci_low) / 2 <= 3 * plan.predicted_half_width

    def test_plan_to_dict_is_json_shaped(self):
        wh, _ = sketchy_warehouse()
        plan = QueryPlanner(wh).plan("plan.sketch", "sum",
                                     target_half_width=0.05, relative=True)
        d = plan.to_dict()
        assert d["dataset"] == "plan.sketch"
        assert d["agg"] == "sum"
        assert isinstance(d["selected"], list)
        assert all(isinstance(k, str) for k in d["selected"])
        assert d["total_partitions"] == 6
        assert d["certified"] is True and d["fallback"] is False


class TestEngineIntegration:
    def test_planned_sum_agrees_with_merge_all(self):
        wh, truth = sketchy_warehouse()
        engine = ApproximateQueryEngine(wh)
        planned = engine.sum("plan.sketch", target_half_width=0.05,
                             relative_target=True)
        merged = engine.sum("plan.sketch")
        # Both are unbiased estimates of the same total; their CIs
        # must overlap and both should bracket near the truth scale.
        assert planned.ci_low <= merged.ci_high
        assert merged.ci_low <= planned.ci_high
        assert abs(planned.value - truth) / truth < 0.5

    def test_predicate_bypasses_planner(self):
        wh = exact_warehouse()
        engine = ApproximateQueryEngine(wh)
        est = engine.count("plan.exact", where=lambda v: v > 50.0,
                           target_half_width=1.0)
        # The planner cannot price a predicate; the legacy merge path
        # must serve it (non-exact, nonzero CI possible).
        assert 0 < est.value < 6 * 200

    def test_plan_summary_reports_selection(self):
        wh, _ = sketchy_warehouse()
        engine = ApproximateQueryEngine(wh)
        summary = engine.plan_summary("plan.sketch", "sum",
                                      target_half_width=0.05,
                                      relative_target=True)
        assert summary["certified"] is True
        assert summary["total_partitions"] == 6
        assert len(summary["ranked"]) <= 8

    def test_estimate_to_dict_round_trip_fields(self):
        wh = exact_warehouse()
        engine = ApproximateQueryEngine(wh)
        est = engine.sum("plan.exact", target_half_width=1.0)
        d = est.to_dict()
        for field in ("value", "ci_low", "ci_high", "confidence", "exact",
                      "sample_size", "population_size"):
            assert field in d
        assert d["value"] == est.value
        assert d["confidence"] == est.confidence


class TestInvalidation:
    def test_mutation_invalidates_only_touched_dataset(self):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(3))
        rng = SplittableRng(3).spawn("v")
        wh.ingest_batch("inv.a", [rng.gauss(10, 2) for _ in range(300)])
        wh.ingest_batch("inv.b", [rng.gauss(90, 2) for _ in range(300)])
        engine = ApproximateQueryEngine(wh)
        engine.sum("inv.a")
        engine.sum("inv.b")
        # Both merges cached; the cached merge is reused on a hit.
        sample_a = engine._sample("inv.a")
        sample_b = engine._sample("inv.b")
        assert engine._sample("inv.a") is sample_a
        assert sample_a.population_size == 300
        # Mutating inv.a must drop inv.a's entries but keep inv.b's —
        # the unrelated dataset's cached merge survives its neighbour's
        # ingest.
        wh.ingest_batch("inv.a", [rng.gauss(10, 2) for _ in range(100)])
        assert engine._sample("inv.b") is sample_b
        assert engine._sample("inv.a").population_size == 400

    def test_explicit_invalidate_scopes_by_dataset(self):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(4))
        rng = SplittableRng(4).spawn("v")
        # Two partitions per dataset so the merge allocates a fresh
        # sample object (a single-partition "merge" is the stored
        # sample itself, which defeats identity checks).
        for _ in range(2):
            wh.ingest_batch("inv.c", [rng.gauss(5, 1) for _ in range(100)])
            wh.ingest_batch("inv.d", [rng.gauss(7, 1) for _ in range(100)])
        engine = ApproximateQueryEngine(wh)
        engine.avg("inv.c")
        engine.avg("inv.d")
        sample_c = engine._sample("inv.c")
        sample_d = engine._sample("inv.d")
        engine.invalidate(dataset="inv.c")
        assert engine._sample("inv.d") is sample_d
        assert engine._sample("inv.c") is not sample_c
        engine.invalidate()
        assert engine._sample("inv.d") is not sample_d

    def test_planned_results_are_cached_per_plan(self):
        wh, _ = sketchy_warehouse()
        engine = ApproximateQueryEngine(wh)
        a = engine.sum("plan.sketch", target_half_width=0.05,
                       relative_target=True)
        b = engine.sum("plan.sketch", target_half_width=0.05,
                       relative_target=True)
        assert a is b


class TestMetrics:
    def test_plan_emits_planner_instruments(self):
        wh, _ = sketchy_warehouse()
        planner = QueryPlanner(wh)
        with capture() as (registry, _sink):
            planner.plan("plan.sketch", "sum", target_half_width=0.05,
                         relative=True)
            # An unreachable bound records a planner fallback.
            planner.plan("plan.sketch", "sum", target_half_width=0.0001,
                         relative=True)
            snapshot = registry.snapshot()
        assert snapshot["aqp.planner.partitions.total"]["value"] == 12
        assert snapshot["aqp.planner.partitions.selected"]["value"] >= 1
        assert snapshot["aqp.planner.fallback"]["value"] == 1
        assert snapshot["aqp.planner.seconds"]["count"] == 2

"""Confidence-interval coverage validation.

An interval estimator is only as good as its coverage: a nominal 95%
interval must contain the truth in ~95% of repeated samples.  These
tests measure empirical coverage over many independent samples with
fixed seeds and assert it lands in a generous band around nominal
(binomial noise over the trial count is accounted for).
"""

from __future__ import annotations

from repro.analytics.estimators import (estimate_avg, estimate_count,
                                        estimate_sum)
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.stratified import StratifiedSample
from repro.rng import SplittableRng

TRIALS = 120
CONFIDENCE = 0.95
# 95% nominal with 120 trials: sd ~ 2%; accept [86%, 100%].
LOW_BAND = 0.86


def _coverage(sample_fn, estimate_fn, truth) -> float:
    hits = 0
    for t in range(TRIALS):
        est = estimate_fn(sample_fn(t))
        if est.ci_low <= truth <= est.ci_high:
            hits += 1
    return hits / TRIALS


class TestReservoirCoverage:
    POP = list(range(30_000))

    def _sample(self, t):
        hr = AlgorithmHR(bound_values=512,
                         rng=SplittableRng(9_000 + t))
        hr.feed_many(self.POP)
        return hr.finalize()

    def test_avg_coverage(self):
        truth = sum(self.POP) / len(self.POP)
        cov = _coverage(self._sample,
                        lambda s: estimate_avg(s, confidence=CONFIDENCE),
                        truth)
        assert cov >= LOW_BAND, f"AVG coverage {cov:.2%}"

    def test_sum_coverage(self):
        truth = float(sum(self.POP))
        cov = _coverage(self._sample,
                        lambda s: estimate_sum(s, confidence=CONFIDENCE),
                        truth)
        assert cov >= LOW_BAND, f"SUM coverage {cov:.2%}"

    def test_count_where_coverage(self):
        truth = 10_000.0
        cov = _coverage(
            self._sample,
            lambda s: estimate_count(s, where=lambda v: v < 10_000,
                                     confidence=CONFIDENCE),
            truth)
        assert cov >= LOW_BAND, f"COUNT coverage {cov:.2%}"


class TestBernoulliCoverage:
    POP = list(range(30_000))

    def _sample(self, t):
        hb = AlgorithmHB(len(self.POP), bound_values=512,
                         rng=SplittableRng(7_000 + t))
        hb.feed_many(self.POP)
        return hb.finalize()

    def test_count_coverage(self):
        truth = float(len(self.POP))
        cov = _coverage(self._sample,
                        lambda s: estimate_count(s,
                                                 confidence=CONFIDENCE),
                        truth)
        assert cov >= LOW_BAND, f"COUNT coverage {cov:.2%}"

    def test_sum_coverage(self):
        truth = float(sum(self.POP))
        cov = _coverage(self._sample,
                        lambda s: estimate_sum(s, confidence=CONFIDENCE),
                        truth)
        assert cov >= LOW_BAND, f"SUM coverage {cov:.2%}"


class TestStratifiedCoverage:
    def test_avg_coverage(self):
        # One frozen dataset; only the sampling randomness varies across
        # trials, so the truth is a constant.
        data_rng = SplittableRng(424_242)
        datasets = [[i * 50_000 + data_rng.randrange(10_000)
                     for _ in range(5_000)] for i in range(4)]
        truth = sum(sum(d) for d in datasets) / 20_000

        def sample(t):
            rng = SplittableRng(3_000 + t)
            strata = []
            for i, data in enumerate(datasets):
                hr = AlgorithmHR(bound_values=128, rng=rng.spawn(i))
                hr.feed_many(data)
                strata.append(hr.finalize())
            return StratifiedSample(strata)

        cov = _coverage(sample,
                        lambda s: s.estimate_avg(confidence=CONFIDENCE),
                        truth)
        assert cov >= LOW_BAND, f"stratified AVG coverage {cov:.2%}"

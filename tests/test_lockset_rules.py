"""Tests for the RPR10x lockset rules and the migrated RPR041.

Fixture trees exercise each rule's positive and negative space:
inconsistent locksets (RPR101), lock-order inversions and
self-deadlocks (RPR102), blocking waits under a lock (RPR103), and
the interprocedural exemptions (caller-holds-the-lock helpers,
constructor-only code, RLock re-entry, the double-checked
get-then-locked-setdefault idiom, test-path scaffolding).

The final class is the lock coverage gate: an independent AST scan
of ``src/repro`` for ``threading.Lock``/``RLock`` bindings must find
nothing the :class:`~repro.analysis.locksets.LockModel` missed.
"""

from __future__ import annotations

import ast
import os
import textwrap

from repro.analysis import load_project, lock_model, run_lint, severity_for
from repro.analysis.locksets import is_test_path

CONCURRENCY = ["RPR041", "RPR101", "RPR102", "RPR103"]


def lint_tree(tmp_path, files, *, select=CONCURRENCY):
    """Write ``{relpath: source}`` under a tmp package root and lint it
    with the concurrency rules only."""
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = run_lint([str(root)], select=select)
    return findings


def codes(findings):
    return [f.code for f in findings]


class TestInconsistentLockset:
    def test_unlocked_iteration_flagged(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/reg.py": """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def drop(self, k):
                    with self._lock:
                        del self._items[k]

                def names(self):
                    return sorted(self._items)
            """})
        assert codes(findings) == ["RPR101"]
        f = findings[0]
        assert "Registry._items" in f.message
        assert "Registry._lock" in f.message
        assert "iterated" in f.message
        assert "consistent site:" in f.message

    def test_locked_iteration_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/reg.py": """
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def add(self, k, v):
                    with self._lock:
                        self._items[k] = v

                def names(self):
                    with self._lock:
                        return sorted(self._items)
            """})
        assert findings == []

    def test_module_global_write_without_lock(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/cache.py": """
            import threading

            _LOCK = threading.Lock()
            _CACHE = {}

            def put(k, v):
                with _LOCK:
                    _CACHE[k] = v

            def drop(k):
                with _LOCK:
                    del _CACHE[k]

            def sneak(k, v):
                _CACHE[k] = v
            """})
        assert codes(findings) == ["RPR101"]
        assert "written" in findings[0].message
        assert "no lock held" in findings[0].message

    def test_double_checked_idiom_clean(self, tmp_path):
        # The unlocked point read is never recorded; only iteration
        # and writes count.  get-then-locked-setdefault stays lawful.
        findings = lint_tree(tmp_path, {"conc/memo.py": """
            import threading

            class Memo:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._vals = {}

                def get(self, k):
                    v = self._vals.get(k)
                    if v is None:
                        with self._lock:
                            v = self._vals.setdefault(k, k * 2)
                    return v

                def drop(self, k):
                    with self._lock:
                        del self._vals[k]
            """})
        assert findings == []

    def test_never_locked_location_is_not_a_claim(self, tmp_path):
        # No access ever holds a lock: there is no majority discipline
        # to diverge from, so RPR101 stays silent (single-threaded
        # classes do not have to lock).
        findings = lint_tree(tmp_path, {"conc/plain.py": """
            class Plain:
                def __init__(self):
                    self._items = {}

                def add(self, k):
                    self._items[k] = k

                def names(self):
                    return sorted(self._items)
            """}, select=["RPR101"])
        assert findings == []

    def test_test_path_accesses_exempt(self, tmp_path):
        findings = lint_tree(tmp_path, {
            "conc/reg.py": """
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def add(self, k, v):
                        with self._lock:
                            self._items[k] = v

                    def drop(self, k):
                        with self._lock:
                            del self._items[k]
            """,
            "tests/test_reg.py": """
                import threading

                class Registry:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._items = {}

                    def add(self, k, v):
                        with self._lock:
                            self._items[k] = v

                    def drop(self, k):
                        with self._lock:
                            del self._items[k]

                    def names(self):
                        return sorted(self._items)
            """})
        assert findings == []


class TestLockDisciplineInterprocedural:
    def test_caller_holds_lock_helper_exempt(self, tmp_path):
        # The private helper writes without a local lock, but its only
        # caller provably holds it — entry locksets kill the old
        # file-local false positive.
        findings = lint_tree(tmp_path, {"conc/store.py": """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, k, v):
                    with self._lock:
                        self._bump(k, v)

                def _bump(self, k, v):
                    self._data[k] = v
            """})
        assert findings == []

    def test_public_unlocked_write_still_rpr041(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/store.py": """
            import threading

            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._data = {}

                def put(self, k, v):
                    with self._lock:
                        self._data[k] = v

                def reset(self):
                    self._data = {}
            """})
        assert codes(findings) == ["RPR041"]
        assert "Store.reset" in findings[0].message

    def test_ctor_only_helper_exempt(self, tmp_path):
        # _fill runs before the instance is shared: no lock needed.
        findings = lint_tree(tmp_path, {"conc/warm.py": """
            import threading

            class Warm:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._cache = {}
                    self._fill()

                def _fill(self):
                    self._cache["a"] = 1

                def put(self, k):
                    with self._lock:
                        self._cache[k] = k
            """})
        assert findings == []


class TestLockOrder:
    def test_opposite_orders_flagged_once(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/order.py": """
            import threading

            _A = threading.Lock()
            _B = threading.Lock()

            def ab():
                with _A:
                    with _B:
                        pass

            def ba():
                with _B:
                    with _A:
                        pass
            """})
        assert codes(findings) == ["RPR102"]
        assert "lock-order inversion" in findings[0].message
        assert "opposite order" in findings[0].message

    def test_consistent_order_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/order.py": """
            import threading

            _A = threading.Lock()
            _B = threading.Lock()

            def ab():
                with _A:
                    with _B:
                        pass

            def ab_again():
                with _A:
                    with _B:
                        pass
            """})
        assert findings == []

    def test_self_deadlock_on_plain_lock(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/re.py": """
            import threading

            class Bad:
                def __init__(self):
                    self._lock = threading.Lock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """})
        assert codes(findings) == ["RPR102"]
        assert "self-deadlock" in findings[0].message

    def test_rlock_reentry_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/re.py": """
            import threading

            class Fine:
                def __init__(self):
                    self._lock = threading.RLock()

                def outer(self):
                    with self._lock:
                        with self._lock:
                            pass
            """})
        assert findings == []

    def test_interprocedural_self_deadlock(self, tmp_path):
        # outer holds the lock; _inner (called only from outer) takes
        # it again — the entry lockset makes the self-edge visible.
        findings = lint_tree(tmp_path, {"conc/re.py": """
            import threading

            class Bad:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def outer(self):
                    with self._lock:
                        self._inner()

                def _inner(self):
                    with self._lock:
                        self._n += 1
            """})
        assert "RPR102" in codes(findings)


class TestBlockingUnderLock:
    def test_sleep_under_lock(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/slow.py": """
            import threading
            import time

            class Slow:
                def __init__(self):
                    self._lock = threading.Lock()

                def work(self):
                    with self._lock:
                        time.sleep(0.1)
            """})
        assert codes(findings) == ["RPR103"]
        assert "blocking wait" in findings[0].message
        assert "time.sleep" in findings[0].message

    def test_sleep_without_lock_clean(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/slow.py": """
            import time

            def nap():
                time.sleep(0.1)
            """})
        assert findings == []

    def test_queue_get_under_lock(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/pipe.py": """
            import queue
            import threading

            class Pipe:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._q = queue.Queue()

                def drain(self):
                    with self._lock:
                        return self._q.get()
            """})
        assert codes(findings) == ["RPR103"]
        assert "self._q.get()" in findings[0].message

    def test_transitive_file_io_cites_chain(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/save.py": """
            import threading

            _LOCK = threading.Lock()

            def _write_file(path):
                with open(path, "w") as f:
                    f.write("x")

            def save(path):
                with _LOCK:
                    _write_file(path)
            """})
        assert codes(findings) == ["RPR103"]
        assert "via" in findings[0].message
        assert "_write_file" in findings[0].message

    def test_one_finding_per_function(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/slow.py": """
            import threading
            import time

            _LOCK = threading.Lock()

            def work():
                with _LOCK:
                    time.sleep(0.1)
                    time.sleep(0.2)
            """})
        assert codes(findings) == ["RPR103"]
        assert "2 blocking sites" in findings[0].message

    def test_noqa_suppresses(self, tmp_path):
        findings = lint_tree(tmp_path, {"conc/slow.py": """
            import threading
            import time

            _LOCK = threading.Lock()

            def work():
                with _LOCK:
                    time.sleep(0.1)  # repro: noqa[RPR103]
            """})
        assert findings == []


class TestSeverities:
    def test_rule_severities(self):
        assert severity_for("RPR101") == "error"
        assert severity_for("RPR102") == "error"
        assert severity_for("RPR103") == "warning"
        assert severity_for("RPR041") == "error"

    def test_is_test_path(self):
        assert is_test_path("tests/test_obs.py")
        assert is_test_path("pkg/tests/helper.py")
        assert is_test_path("src/foo_test.py")
        assert not is_test_path("src/repro/obs/metrics.py")
        assert not is_test_path("src/repro/testkit.py")


class TestLockCoverageGate:
    def test_every_real_lock_is_modeled(self):
        """CI gate: an independent AST scan of ``src/repro`` for
        ``threading.Lock()``/``RLock()`` bindings must be a subset of
        the lock-model's table — the analyzer sees every real lock."""
        src = os.path.join(os.path.dirname(__file__), "..",
                           "src", "repro")
        expected = set()
        for dirpath, _, names in os.walk(src):
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, "r", encoding="utf-8") as f:
                    tree = ast.parse(f.read())
                for node in ast.walk(tree):
                    if not isinstance(node, ast.Assign):
                        continue
                    call = node.value
                    if not (isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in ("Lock", "RLock")
                            and isinstance(call.func.value, ast.Name)
                            and call.func.value.id == "threading"):
                        continue
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Attribute):
                            expected.add(tgt.attr)
                        elif isinstance(tgt, ast.Name):
                            expected.add(tgt.id)
        assert expected, "the scan should find the repo's real locks"
        project = load_project([src])
        table = lock_model(project).lock_table()
        modeled = {ident.rsplit(".", 1)[-1].rsplit(":", 1)[-1]
                   for ident in table}
        missing = expected - modeled
        assert not missing, (
            f"locks invisible to the lockset model: {sorted(missing)}")

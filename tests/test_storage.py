"""Tests for repro.warehouse.storage (stores + serialization)."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import PartitionNotFoundError, StorageError
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.storage import (FileStore, InMemoryStore,
                                     sample_from_dict, sample_to_dict)

MODEL = FootprintModel(8, 4)


def make_sample(kind=SampleKind.RESERVOIR, rate=None):
    return WarehouseSample(
        histogram=CompactHistogram.from_pairs([("a", 3), ("b", 1)]),
        kind=kind,
        population_size=100,
        bound_values=10,
        rate=rate,
        scheme="hr",
        model=MODEL,
    )


class TestSerialization:
    def test_round_trip(self):
        s = make_sample()
        restored = sample_from_dict(sample_to_dict(s))
        assert restored.histogram == s.histogram
        assert restored.kind is s.kind
        assert restored.population_size == s.population_size
        assert restored.bound_values == s.bound_values
        assert restored.model == s.model

    def test_round_trip_bernoulli_rate(self):
        s = make_sample(SampleKind.BERNOULLI, rate=0.05)
        restored = sample_from_dict(sample_to_dict(s))
        assert restored.rate == 0.05

    def test_malformed_document(self):
        with pytest.raises(StorageError):
            sample_from_dict({"kind": "RESERVOIR"})

    def test_json_serializable(self):
        json.dumps(sample_to_dict(make_sample()))


class TestInMemoryStore:
    def test_put_get(self):
        store = InMemoryStore()
        key = PartitionKey("d", 0, 0)
        s = make_sample()
        store.put(key, s)
        assert store.get(key) is s
        assert key in store
        assert len(store) == 1
        assert list(store.keys()) == [key]

    def test_missing_key(self):
        store = InMemoryStore()
        with pytest.raises(PartitionNotFoundError):
            store.get(PartitionKey("d", 0, 0))
        with pytest.raises(PartitionNotFoundError):
            store.delete(PartitionKey("d", 0, 0))

    def test_delete(self):
        store = InMemoryStore()
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        store.delete(key)
        assert key not in store

    def test_keys_races_concurrent_puts(self):
        # Regression: keys() listed self._samples without the lock, so
        # a reader racing concurrent ingest put()s could blow up with
        # "dictionary changed size during iteration" (RPR101).
        store = InMemoryStore()
        sample = make_sample()
        stop = threading.Event()
        errors = []

        def writer(tid):
            i = 0
            while not stop.is_set():
                store.put(PartitionKey("d", tid, i), sample)
                i += 1

        def reader():
            try:
                while not stop.is_set():
                    for _ in store.keys():
                        pass
            except RuntimeError as exc:  # pragma: no cover - bug path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,))
                   for t in range(4)]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        time.sleep(0.2)
        stop.set()
        for t in threads:
            t.join()
        assert errors == []
        assert len(list(store.keys())) == len(store)


class TestFileStore:
    def test_put_get_round_trip(self, tmp_path):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 1, 2)
        s = make_sample()
        store.put(key, s)
        restored = store.get(key)
        assert restored.histogram == s.histogram
        assert restored.population_size == s.population_size

    def test_reopen_rebuilds_index(self, tmp_path):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 1, 2)
        store.put(key, make_sample())
        reopened = FileStore(str(tmp_path))
        assert key in reopened
        assert reopened.get(key).population_size == 100

    def test_replace(self, tmp_path):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        s2 = make_sample(SampleKind.BERNOULLI, rate=0.5)
        store.put(key, s2)
        assert store.get(key).kind is SampleKind.BERNOULLI
        assert len(store) == 1

    def test_delete_removes_file(self, tmp_path):
        store = FileStore(str(tmp_path))
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        store.delete(key)
        assert key not in store
        assert not any(n.endswith(".sample.json")
                       for n in os.listdir(tmp_path))

    def test_missing_key(self, tmp_path):
        store = FileStore(str(tmp_path))
        with pytest.raises(PartitionNotFoundError):
            store.get(PartitionKey("d", 0, 0))

    def test_corrupt_file_detected_on_reopen(self, tmp_path):
        store = FileStore(str(tmp_path))
        store.put(PartitionKey("d", 0, 0), make_sample())
        victim = next(tmp_path.glob("*.sample.json"))
        victim.write_text("{ not json")
        with pytest.raises(StorageError):
            FileStore(str(tmp_path))

    def test_no_temp_files_left(self, tmp_path):
        store = FileStore(str(tmp_path))
        for i in range(5):
            store.put(PartitionKey("d", 0, i), make_sample())
        assert not any(n.endswith(".tmp") for n in os.listdir(tmp_path))


class TestCompressedFileStore:
    def test_round_trip(self, tmp_path):
        store = FileStore(str(tmp_path), compress=True)
        key = PartitionKey("d", 0, 0)
        s = make_sample()
        store.put(key, s)
        assert store.get(key).histogram == s.histogram
        names = os.listdir(tmp_path)
        assert any(n.endswith(".sample.json.gz") for n in names)
        assert not any(n.endswith(".sample.json") and not n.endswith(".gz")
                       for n in names)

    def test_reopen_reads_compressed(self, tmp_path):
        store = FileStore(str(tmp_path), compress=True)
        key = PartitionKey("d", 0, 0)
        store.put(key, make_sample())
        reopened = FileStore(str(tmp_path))  # plain store reads .gz too
        assert reopened.get(key).population_size == 100

    def test_mixed_formats_coexist(self, tmp_path):
        plain = FileStore(str(tmp_path))
        plain.put(PartitionKey("d", 0, 0), make_sample())
        gz = FileStore(str(tmp_path), compress=True)
        gz.put(PartitionKey("d", 0, 1), make_sample())
        assert len(gz) == 2
        assert gz.get(PartitionKey("d", 0, 0)).population_size == 100
        assert gz.get(PartitionKey("d", 0, 1)).population_size == 100

    def test_compression_actually_shrinks(self, tmp_path):
        from repro.core.histogram import CompactHistogram as CH

        big = WarehouseSample(
            histogram=CH.from_pairs([(i, 1) for i in range(5000)]),
            kind=SampleKind.RESERVOIR, population_size=100_000,
            bound_values=5000, scheme="hr", model=MODEL)
        plain_dir = tmp_path / "plain"
        gz_dir = tmp_path / "gz"
        FileStore(str(plain_dir)).put(PartitionKey("d", 0, 0), big)
        FileStore(str(gz_dir), compress=True).put(
            PartitionKey("d", 0, 0), big)
        plain_size = sum(f.stat().st_size for f in plain_dir.iterdir())
        gz_size = sum(f.stat().st_size for f in gz_dir.iterdir())
        assert gz_size < plain_size / 2


class TestFileStoreDurability:
    """The strict/relaxed durability switch (docs/serving.md)."""

    def test_unknown_durability_rejected(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            FileStore(str(tmp_path), durability="eventual")

    def _count_fsyncs(self, monkeypatch):
        calls = []
        real = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: (calls.append(fd), real(fd))[1])
        return calls

    def test_strict_fsyncs_every_put(self, tmp_path, monkeypatch):
        calls = self._count_fsyncs(monkeypatch)
        store = FileStore(str(tmp_path))  # strict is the default
        store.put(PartitionKey("d", 0, 0), make_sample())
        store.put(PartitionKey("d", 0, 1), make_sample())
        assert len(calls) == 2

    def test_relaxed_skips_fsync(self, tmp_path, monkeypatch):
        calls = self._count_fsyncs(monkeypatch)
        store = FileStore(str(tmp_path), durability="relaxed")
        store.put(PartitionKey("d", 0, 0), make_sample())
        assert calls == []

    def test_relaxed_round_trip_and_reopen(self, tmp_path):
        store = FileStore(str(tmp_path), durability="relaxed")
        key = PartitionKey("d", 1, 2)
        store.put(key, make_sample())
        assert store.get(key).population_size == 100
        # Relaxed changes crash-durability, not the on-disk format:
        # a strict store reopens the same directory.
        reopened = FileStore(str(tmp_path))
        assert key in reopened

"""Tests for repro.stream (sources and splitters)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.stream.source import FluctuatingStream, chunk_stream
from repro.stream.splitter import RoundRobinSplitter, hash_split


class TestFluctuatingStream:
    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            FluctuatingStream(lambda i: i, base_rate=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            FluctuatingStream(lambda i: i, amplitude=1.0, rng=rng)
        with pytest.raises(ConfigurationError):
            FluctuatingStream(lambda i: i, period=0.0, rng=rng)

    def test_clock_monotone(self, rng):
        s = FluctuatingStream(lambda i: i, base_rate=5.0, rng=rng)
        times = [t for t, _v in s.take(200)]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_values_follow_index(self, rng):
        s = FluctuatingStream(lambda i: i * 2, rng=rng)
        values = [v for _t, v in s.take(5)]
        assert values == [0, 2, 4, 6, 8]

    def test_rate_bounds(self, rng):
        s = FluctuatingStream(lambda i: i, base_rate=10.0, amplitude=0.5,
                              rng=rng)
        for t in (0.0, 100.0, 250.0, 999.0):
            assert 5.0 - 1e-9 <= s.rate_at(t) <= 15.0 + 1e-9

    def test_rate_actually_fluctuates(self, rng):
        s = FluctuatingStream(lambda i: i, base_rate=10.0, amplitude=0.9,
                              period=100.0, rng=rng)
        rates = [s.rate_at(t) for t in range(0, 100, 5)]
        assert max(rates) > 1.5 * min(rates)


class TestChunkStream:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            list(chunk_stream([1], 0))

    def test_chunks(self):
        assert list(chunk_stream(range(5), 2)) == [[0, 1], [2, 3], [4]]

    def test_exact_multiple(self):
        assert list(chunk_stream(range(4), 2)) == [[0, 1], [2, 3]]

    def test_empty(self):
        assert list(chunk_stream([], 3)) == []


class TestRoundRobinSplitter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RoundRobinSplitter([])

    def test_rotation(self):
        outs = [[], [], []]
        split = RoundRobinSplitter([o.append for o in outs])
        split.feed_many(range(7))
        assert outs == [[0, 3, 6], [1, 4], [2, 5]]
        assert split.delivered == 7

    def test_disjoint_union(self):
        outs = [[], [], [], []]
        split = RoundRobinSplitter([o.append for o in outs])
        split.feed_many(range(1000))
        merged = sorted(v for o in outs for v in o)
        assert merged == list(range(1000))


class TestHashSplit:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            hash_split([1], 0)

    def test_lossless(self):
        values = list(range(100)) * 2
        buckets = hash_split(values, 4)
        assert sorted(v for b in buckets for v in b) == sorted(values)

    def test_equal_values_colocated(self):
        buckets = hash_split([5] * 10 + [9] * 10, 3)
        for b in buckets:
            assert set(b) <= {5} or set(b) <= {9}

    def test_custom_key(self):
        buckets = hash_split(["aa", "ab", "ba"], 2,
                             key=lambda s: s[0])
        # Values sharing a first letter land together.
        for b in buckets:
            firsts = {s[0] for s in b}
            assert len(firsts) <= 2

"""Tests for repro.warehouse.parallel."""

from __future__ import annotations

import pytest

from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.multi_purge import MultiPurgeBernoulli
from repro.core.stratified_bernoulli import AlgorithmSB
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.parallel import (ProcessExecutor, SampleTask,
                                      SerialExecutor, ThreadExecutor,
                                      make_sampler, sample_partition)


class TestMakeSampler:
    def test_dispatch(self, rng):
        assert isinstance(
            make_sampler("hb", population_size=100, bound_values=10,
                         exceedance_p=0.001, sb_rate=None, rng=rng),
            AlgorithmHB)
        assert isinstance(
            make_sampler("hr", population_size=None, bound_values=10,
                         exceedance_p=0.001, sb_rate=None, rng=rng),
            AlgorithmHR)
        assert isinstance(
            make_sampler("sb", population_size=None, bound_values=10,
                         exceedance_p=0.001, sb_rate=0.1, rng=rng),
            AlgorithmSB)
        assert isinstance(
            make_sampler("hb-mp", population_size=100, bound_values=10,
                         exceedance_p=0.001, sb_rate=None, rng=rng),
            MultiPurgeBernoulli)

    def test_hb_requires_population(self, rng):
        with pytest.raises(ConfigurationError):
            make_sampler("hb", population_size=None, bound_values=10,
                         exceedance_p=0.001, sb_rate=None, rng=rng)

    def test_sb_requires_rate(self, rng):
        with pytest.raises(ConfigurationError):
            make_sampler("sb", population_size=None, bound_values=10,
                         exceedance_p=0.001, sb_rate=None, rng=rng)

    def test_unknown_scheme(self, rng):
        with pytest.raises(ConfigurationError):
            make_sampler("nope", population_size=1, bound_values=1,
                         exceedance_p=0.001, sb_rate=None, rng=rng)


class TestSampleTask:
    def test_scheme_validation(self):
        with pytest.raises(ConfigurationError):
            SampleTask(values=[1], scheme="nope", bound_values=8)

    def test_sample_partition_deterministic(self):
        task = SampleTask(values=list(range(5000)), scheme="hr",
                          bound_values=32, seed=42)
        a = sample_partition(task)
        b = sample_partition(task)
        assert a.histogram == b.histogram
        assert a.size == 32


class TestExecutors:
    def square(self, x):
        return x * x

    def test_serial(self):
        assert SerialExecutor().map(self.square, [1, 2, 3]) == [1, 4, 9]

    def test_thread(self):
        assert ThreadExecutor(2).map(self.square, list(range(10))) == \
            [x * x for x in range(10)]

    def test_process_with_tasks(self):
        tasks = [SampleTask(values=list(range(i * 1000, (i + 1) * 1000)),
                            scheme="hr", bound_values=16, seed=i)
                 for i in range(4)]
        serial = SerialExecutor().map(sample_partition, tasks)
        parallel = ProcessExecutor(2).map(sample_partition, tasks)
        for a, b in zip(serial, parallel):
            assert a.histogram == b.histogram

    def test_order_preserved_under_parallelism(self):
        out = ThreadExecutor(4).map(self.square, list(range(50)))
        assert out == [x * x for x in range(50)]

    def test_thread_pool_persists_across_maps(self):
        executor = ThreadExecutor(2)
        try:
            executor.map(self.square, [1])
            pool = executor._pool
            assert pool is not None
            executor.map(self.square, [2, 3])
            assert executor._pool is pool
        finally:
            executor.close()
        assert executor._pool is None

    def test_closed_thread_executor_is_reusable(self):
        executor = ThreadExecutor(2)
        executor.map(self.square, [1, 2])
        executor.close()
        assert executor.map(self.square, [3]) == [9]
        executor.close()

    def test_thread_executor_context_manager_closes(self):
        with ThreadExecutor(2) as executor:
            assert executor.map(self.square, [4]) == [16]
        assert executor._pool is None


class TestExecutorDeterminism:
    """The determinism guarantee (docs/determinism.md): every task
    carries its own derived seed, so the three executors produce
    *identical* samples — not just statistically equivalent ones — and
    observability instrumentation cannot perturb that.
    """

    @staticmethod
    def _tasks(scheme):
        return [SampleTask(values=list(range(i * 2000, (i + 1) * 2000)),
                           scheme=scheme, bound_values=64, seed=1000 + i)
                for i in range(4)]

    @pytest.mark.parametrize("scheme", ["hb", "hr", "sb"])
    def test_identical_samples_across_executors(self, scheme):
        tasks = self._tasks(scheme)
        if scheme == "sb":
            tasks = [SampleTask(values=t.values, scheme="sb",
                                bound_values=t.bound_values,
                                sb_rate=0.02, seed=t.seed) for t in tasks]
        serial = SerialExecutor().map(sample_partition, tasks)
        threaded = ThreadExecutor(4).map(sample_partition, tasks)
        process = ProcessExecutor(2).map(sample_partition, tasks)
        # WarehouseSample is a frozen dataclass: == compares everything.
        assert serial == threaded == process

    def test_determinism_survives_instrumentation(self):
        from repro.obs import capture

        tasks = self._tasks("hr")
        baseline = SerialExecutor().map(sample_partition, tasks)
        with capture() as (reg, _):
            timed_serial = SerialExecutor().map(sample_partition, tasks)
            timed_thread = ThreadExecutor(4).map(sample_partition, tasks)
            timed_process = ProcessExecutor(2).map(sample_partition, tasks)
        assert baseline == timed_serial == timed_thread == timed_process
        # The timed wrappers reported every task from all three maps.
        assert reg.counter("parallel.tasks").value == 12
        assert reg.histogram(
            "parallel.task.seconds.process").count == 4


class TestThreadExecutorAsyncShutdown:
    """The awaitable shutdown path (``aclose``) used by repro.serve."""

    @staticmethod
    def square(x):
        return x * x

    def test_aclose_shuts_down_and_executor_stays_reusable(self):
        import asyncio

        executor = ThreadExecutor(2)
        assert executor.map(self.square, [1, 2]) == [1, 4]
        assert executor._pool is not None
        asyncio.run(executor.aclose())
        assert executor._pool is None
        # Like close(), aclose() leaves the executor reusable.
        assert executor.map(self.square, [3]) == [9]
        executor.close()

    def test_aclose_without_started_pool_is_noop(self):
        import asyncio

        executor = ThreadExecutor(2)
        asyncio.run(executor.aclose())
        assert executor._pool is None

    def test_submit_future_awaits_via_wrap_future(self):
        import asyncio

        executor = ThreadExecutor(2)

        async def run():
            try:
                return await asyncio.wrap_future(
                    executor.submit(self.square, 7))
            finally:
                await executor.aclose()

        assert asyncio.run(run()) == 49

    def test_aclose_does_not_block_the_event_loop(self):
        """Regression: close() joins worker threads on the calling
        thread; aclose() must keep the loop ticking while the pool
        drains a slow task."""
        import asyncio
        import time

        executor = ThreadExecutor(1)
        executor.submit(time.sleep, 0.3)

        async def run():
            ticks = 0
            closer = asyncio.ensure_future(executor.aclose())
            while not closer.done():
                await asyncio.sleep(0.01)
                ticks += 1
            await closer
            return ticks

        ticks = asyncio.run(run())
        assert executor._pool is None
        # ~30 ticks expected; even heavily loaded CI sees several.
        assert ticks >= 3

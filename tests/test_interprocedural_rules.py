"""Rule-level tests for the interprocedural families.

Each rule gets a seeded violation (detected, with the right message
shape) and a clean twin (not detected).  Fixture trees are written
under ``tmp_path`` and linted through the public :func:`run_lint`
entry point, so suppression and selection behave exactly as in the
CLI.

* RPR061 — cross-module nondeterminism with the call chain rendered
* RPR062 — mixed RNG sources (fresh generator / global random)
* RPR071 — process-executor task mutating shared state
* RPR072 — lambda / local def submitted to a process executor
"""

from __future__ import annotations

import textwrap

from repro.analysis import run_lint


def lint_tree(tmp_path, files, *, select=None):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = run_lint([str(root)], contract_doc=None,
                           select=select)
    return findings


def codes(findings):
    return [f.code for f in findings]


#: A minimal in-fixture process executor (mirrors warehouse.parallel).
_POOL = """\
    class ProcessExecutor:
        def __init__(self, max_workers=None):
            self._max_workers = max_workers

        def map(self, fn, items):
            return [fn(i) for i in items]
    """


class TestRPR061CrossModuleDeterminism:
    FILES = {
        "core/entry.py": """\
            from repro.util.helper import route

            def ingest(values):
                return route(values)
            """,
        "util/helper.py": """\
            import time

            def route(values):
                return time.time(), values
            """,
    }

    def test_transitive_clock_read_flagged_with_chain(self, tmp_path):
        found = lint_tree(tmp_path, self.FILES, select=["RPR061"])
        assert codes(found) == ["RPR061"]
        message = found[0].message
        # The full offending chain is rendered in the finding.
        assert "core.entry.ingest" in message
        assert "route" in message
        assert "time.time() (line 4)" in message
        assert found[0].path.endswith("core/entry.py")

    def test_helper_package_alone_is_not_an_entry(self, tmp_path):
        # util/ is not a sampling package: no RPR061 there, even
        # though route() has the effect locally.
        found = lint_tree(tmp_path, {
            "util/helper.py": self.FILES["util/helper.py"]},
            select=["RPR061"])
        assert found == []

    def test_local_effect_is_not_duplicated(self, tmp_path):
        # A wall-clock read *inside* the entry point is RPR011's
        # finding; RPR061 only reports transitive reaches.
        found = lint_tree(tmp_path, {"core/entry.py": """\
            import time

            def ingest(values):
                return time.time(), values
            """}, select=["RPR061"])
        assert found == []

    def test_private_functions_are_not_entry_points(self, tmp_path):
        files = dict(self.FILES)
        files["core/entry.py"] = files["core/entry.py"].replace(
            "def ingest", "def _ingest")
        found = lint_tree(tmp_path, files, select=["RPR061"])
        assert found == []

    def test_noqa_on_def_line_suppresses(self, tmp_path):
        files = dict(self.FILES)
        files["core/entry.py"] = files["core/entry.py"].replace(
            "def ingest(values):",
            "def ingest(values):  # repro: noqa[RPR061]")
        found = lint_tree(tmp_path, files, select=["RPR061"])
        assert found == []

    def test_clean_twin_passes(self, tmp_path):
        found = lint_tree(tmp_path, {
            "core/entry.py": self.FILES["core/entry.py"],
            "util/helper.py": """\
                def route(values):
                    return sorted(values)
                """}, select=["RPR061"])
        assert found == []


class TestRPR062MixedRngSources:
    def test_fresh_generator_beside_handle_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.rng import SplittableRng

            def draw_pair(rng):
                a = rng.next_float()
                other = SplittableRng(123)
                return a, other.next_float()
            """}, select=["RPR062"])
        assert codes(found) == ["RPR062"]
        assert "draw_pair" in found[0].message
        assert "SplittableRng" in found[0].message

    def test_guarded_default_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.rng import SplittableRng

            def draw(n, rng=None):
                if rng is None:
                    rng = SplittableRng(7)
                return rng.next_float()

            def draw_or(n, rng=None):
                rng = rng or SplittableRng(7)
                return rng.next_float()
            """}, select=["RPR062"])
        assert found == []

    def test_global_random_beside_handle_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {"core/x.py": """\
            import random

            def draw(rng):
                a = rng.next_float()
                return a + random.random()
            """}, select=["RPR062"])
        assert codes(found) == ["RPR062"]
        assert "process-global" in found[0].message

    def test_pass_through_without_draw_is_clean(self, tmp_path):
        # Forwarding the handle while constructing a sampler is the
        # factory idiom (make_sampler): no draw, no mixing.
        found = lint_tree(tmp_path, {"core/x.py": """\
            from repro.rng import SplittableRng

            def make(scheme, rng):
                return Sampler(scheme, rng=rng)
            """}, select=["RPR062"])
        assert found == []


class TestRPR071ProcessSharedState:
    def test_mutating_task_flagged_with_chain(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/pool.py": _POOL,
            "warehouse/jobs.py": """\
                from repro.warehouse.pool import ProcessExecutor

                _SEEN = []

                def collect(task):
                    _SEEN.append(task)
                    return task

                def run(tasks):
                    ex = ProcessExecutor()
                    return ex.map(collect, tasks)
                """}, select=["RPR071"])
        assert codes(found) == ["RPR071"]
        assert "collect" in found[0].message
        assert "_SEEN" in found[0].message
        assert found[0].path.endswith("jobs.py")

    def test_transitive_mutation_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/pool.py": _POOL,
            "warehouse/jobs.py": """\
                from repro.warehouse.pool import ProcessExecutor

                _SEEN = []

                def _note(task):
                    _SEEN.append(task)

                def collect(task):
                    _note(task)
                    return task

                def run(tasks):
                    with ProcessExecutor() as pool:
                        return pool.map(collect, tasks)
                """}, select=["RPR071"])
        assert codes(found) == ["RPR071"]
        assert "_note" in found[0].message

    def test_pure_task_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/pool.py": _POOL,
            "warehouse/jobs.py": """\
                from repro.warehouse.pool import ProcessExecutor

                def double(task):
                    return task * 2

                def run(tasks):
                    ex = ProcessExecutor()
                    return ex.map(double, tasks)
                """}, select=["RPR071"])
        assert found == []

    def test_thread_executor_is_exempt(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/jobs.py": """\
                class ThreadExecutor:
                    def map(self, fn, items):
                        return [fn(i) for i in items]

                _SEEN = []

                def collect(task):
                    _SEEN.append(task)
                    return task

                def run(tasks):
                    ex = ThreadExecutor()
                    return ex.map(collect, tasks)
                """}, select=["RPR071"])
        assert found == []


class TestRPR072UnpicklableTask:
    def test_lambda_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/pool.py": _POOL,
            "warehouse/jobs.py": """\
                from repro.warehouse.pool import ProcessExecutor

                def run(tasks):
                    ex = ProcessExecutor()
                    return ex.map(lambda t: t + 1, tasks)
                """}, select=["RPR072"])
        assert codes(found) == ["RPR072"]
        assert "lambda" in found[0].message

    def test_local_def_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/pool.py": _POOL,
            "warehouse/jobs.py": """\
                from repro.warehouse.pool import ProcessExecutor

                def run(tasks):
                    def worker(t):
                        return t * 2
                    ex = ProcessExecutor()
                    return ex.map(worker, tasks)
                """}, select=["RPR072"])
        assert codes(found) == ["RPR072"]
        assert "worker" in found[0].message
        assert "local def" in found[0].message

    def test_named_lambda_flagged(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/jobs.py": _POOL + """\

    def run(tasks):
        bump = lambda t: t + 1
        ex = ProcessExecutor()
        return ex.map(bump, tasks)
    """}, select=["RPR072"])
        assert codes(found) == ["RPR072"]
        assert "bump" in found[0].message

    def test_module_level_function_is_clean(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/pool.py": _POOL,
            "warehouse/jobs.py": """\
                from repro.warehouse.pool import ProcessExecutor

                def double(t):
                    return t * 2

                def run(tasks):
                    ex = ProcessExecutor()
                    return ex.map(double, tasks)
                """}, select=["RPR072"])
        assert found == []

    def test_direct_ctor_receiver_detected(self, tmp_path):
        found = lint_tree(tmp_path, {
            "warehouse/jobs.py": _POOL + """\

    def run(tasks):
        return ProcessExecutor().map(lambda t: t, tasks)
    """}, select=["RPR072"])
        assert codes(found) == ["RPR072"]


def test_real_tree_is_clean_under_new_families(tmp_path):
    # The shipped tree must carry zero unsuppressed RPR06x/RPR07x
    # findings (tentpole acceptance criterion).
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    found, _ = run_lint([str(src)],
                        select=["RPR06x", "RPR07x"])
    assert not found, "\n".join(f.render() for f in found)

"""Tests for repro.sampling.exceedance (eq. (1) and the exact solver)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sampling.exceedance import (binomial_sf, exact_bernoulli_rate,
                                       normal_approx_rate,
                                       rate_for_bound,
                                       regularized_incomplete_beta)


class TestIncompleteBeta:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            regularized_incomplete_beta(0.0, 1.0, 0.5)
        with pytest.raises(ConfigurationError):
            regularized_incomplete_beta(1.0, 1.0, 1.5)

    def test_edges(self):
        assert regularized_incomplete_beta(2.0, 3.0, 0.0) == 0.0
        assert regularized_incomplete_beta(2.0, 3.0, 1.0) == 1.0

    def test_uniform_case(self):
        """I_x(1, 1) = x."""
        for x in (0.1, 0.33, 0.5, 0.77, 0.99):
            assert math.isclose(regularized_incomplete_beta(1.0, 1.0, x), x,
                                rel_tol=1e-10)

    def test_symmetry(self):
        """I_x(a, b) = 1 - I_{1-x}(b, a)."""
        val = regularized_incomplete_beta(3.5, 7.2, 0.3)
        sym = 1.0 - regularized_incomplete_beta(7.2, 3.5, 0.7)
        assert math.isclose(val, sym, rel_tol=1e-10)

    def test_matches_scipy(self):
        scipy_special = pytest.importorskip("scipy.special")
        for a, b, x in [(2.0, 5.0, 0.2), (50.0, 3.0, 0.9),
                        (101.0, 99900.0, 0.001), (0.5, 0.5, 0.5)]:
            ours = regularized_incomplete_beta(a, b, x)
            theirs = scipy_special.betainc(a, b, x)
            assert math.isclose(ours, theirs, rel_tol=1e-9, abs_tol=1e-14)


class TestBinomialSf:
    def test_edges(self):
        assert binomial_sf(10, 0.5, 10) == 0.0
        assert binomial_sf(10, 0.5, -1) == 1.0
        assert binomial_sf(10, 0.0, 5) == 0.0

    def test_small_case_exact(self):
        """Compare against a direct pmf sum."""
        n, q, k = 20, 0.3, 8

        def comb(n_, r):
            return math.comb(n_, r)

        direct = sum(comb(n, j) * q ** j * (1 - q) ** (n - j)
                     for j in range(k + 1, n + 1))
        assert math.isclose(binomial_sf(n, q, k), direct, rel_tol=1e-10)

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        for n, q, k in [(1000, 0.01, 15), (100_000, 0.001, 120),
                        (50, 0.5, 25)]:
            ours = binomial_sf(n, q, k)
            theirs = scipy_stats.binom.sf(k, n, q)
            assert math.isclose(ours, theirs, rel_tol=1e-8, abs_tol=1e-12)

    def test_monotone_in_q(self):
        values = [binomial_sf(1000, q, 50) for q in (0.01, 0.05, 0.1)]
        assert values == sorted(values)


class TestExactRate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            exact_bernoulli_rate(0, 0.001, 10)
        with pytest.raises(ConfigurationError):
            exact_bernoulli_rate(100, 0.0, 10)
        with pytest.raises(ConfigurationError):
            exact_bernoulli_rate(100, 0.5, 0)

    def test_trivial_bound(self):
        assert exact_bernoulli_rate(100, 0.001, 100) == 1.0
        assert exact_bernoulli_rate(100, 0.001, 200) == 1.0

    def test_root_property(self):
        """The returned q satisfies P(Binomial(N, q) > n_F) = p."""
        n, p, bound = 100_000, 0.001, 1_000
        q = exact_bernoulli_rate(n, p, bound)
        assert math.isclose(binomial_sf(n, q, bound), p, rel_tol=1e-4)

    def test_monotone_in_p(self):
        """Looser exceedance target -> higher allowable rate."""
        qs = [exact_bernoulli_rate(100_000, p, 1000)
              for p in (1e-5, 1e-4, 1e-3, 1e-2)]
        assert qs == sorted(qs)

    def test_monotone_in_population(self):
        """Bigger population -> lower rate for the same bound."""
        qs = [exact_bernoulli_rate(n, 0.001, 1000)
              for n in (10_000, 100_000, 1_000_000)]
        assert qs == sorted(qs, reverse=True)


class TestNormalApproxRate:
    def test_trivial_bound(self):
        assert normal_approx_rate(100, 0.001, 100) == 1.0

    def test_paper_error_envelope(self):
        """Figure 5: relative error < 3% for N = 1e5 over the grid."""
        n = 100_000
        worst = 0.0
        for bound in (100, 1_000, 10_000):
            for p in (1e-5, 5e-5, 5e-4, 5e-3):
                approx = normal_approx_rate(n, p, bound)
                exact = exact_bernoulli_rate(n, p, bound)
                worst = max(worst, abs(approx - exact) / exact)
        assert worst < 0.03

    def test_in_unit_interval(self):
        q = normal_approx_rate(10_000, 0.001, 500)
        assert 0.0 < q < 1.0

    @given(st.integers(min_value=10, max_value=10**6),
           st.floats(min_value=1e-6, max_value=0.49),
           st.data())
    @settings(max_examples=80)
    def test_property_bounds(self, population, p, data):
        bound = data.draw(st.integers(min_value=1, max_value=population))
        q = normal_approx_rate(population, p, bound)
        assert 0.0 <= q <= 1.0


class TestRateForBound:
    def test_unknown_method(self):
        with pytest.raises(ConfigurationError):
            rate_for_bound(1000, 0.001, 10, method="bogus")

    def test_auto_uses_exact_for_tiny_population(self):
        got = rate_for_bound(500, 0.001, 50, method="auto")
        exact = exact_bernoulli_rate(500, 0.001, 50)
        assert got == exact

    def test_auto_uses_approx_for_large_population(self):
        got = rate_for_bound(10**6, 0.001, 1000, method="auto")
        approx = normal_approx_rate(10**6, 0.001, 1000)
        assert got == approx

    def test_explicit_methods(self):
        n, p, b = 100_000, 0.001, 500
        assert rate_for_bound(n, p, b, method="exact") == \
            exact_bernoulli_rate(n, p, b)
        assert rate_for_bound(n, p, b, method="approx") == \
            normal_approx_rate(n, p, b)

"""Unit tests for the interprocedural layer: the ``callgraph``
module summaries and the :class:`~repro.analysis.dataflow.CallGraph`
fixpoint built from them.

These tests drive the engine directly (no rules): write a small
package tree, load it, and assert on defs, resolved edges, propagated
effect sets, and rendered witness chains.  The rule-level behavior
(RPR06x/RPR07x findings) lives in ``test_interprocedural_rules.py``.
"""

from __future__ import annotations

import json
import textwrap

from repro.analysis import analyze_project, load_project
from repro.analysis.dataflow import (FILESYSTEM, GLOBAL_RNG,
                                     SHARED_MUTATION, WALL_CLOCK)


def make_project(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return load_project([str(root)])


def graph_of(tmp_path, files):
    return analyze_project(make_project(tmp_path, files))


class TestModuleSummary:
    def test_summary_is_pure_json(self, tmp_path):
        project = make_project(tmp_path, {"core/x.py": """\
            import time

            class Box:
                def __init__(self, rng):
                    self._rng = rng

                def stamp(self):
                    return time.time()
            """})
        (sf,) = project.parsed
        summ = sf.summary("callgraph")
        # Round-trips through JSON unchanged — the cache requirement.
        assert json.loads(json.dumps(summ)) == summ
        assert summ["module"] == "core.x"
        assert set(summ["functions"]) == {"Box.__init__", "Box.stamp"}
        init = summ["functions"]["Box.__init__"]
        assert init["cls"] == "Box"
        assert init["rng_params"] == ["rng"]

    def test_package_init_takes_package_id(self, tmp_path):
        project = make_project(tmp_path, {
            "core/__init__.py": "def top():\n    return 1\n"})
        (sf,) = project.parsed
        assert sf.summary("callgraph")["module"] == "core"

    def test_nested_defs_use_locals_spelling(self, tmp_path):
        project = make_project(tmp_path, {"core/x.py": """\
            def outer():
                def inner():
                    return 2
                return inner()
            """})
        (sf,) = project.parsed
        summ = sf.summary("callgraph")
        assert set(summ["functions"]) == {"outer", "outer.<locals>.inner"}
        assert summ["functions"]["outer.<locals>.inner"]["nested"]


class TestCallEdges:
    def test_cross_module_edge_via_from_import(self, tmp_path):
        graph = graph_of(tmp_path, {
            "core/a.py": """\
                from repro.core.b import helper

                def entry():
                    return helper()
                """,
            "core/b.py": "def helper():\n    return 1\n",
        })
        assert graph._edges["core.a:entry"] == [("core.b:helper", 4)]

    def test_relative_import_edge(self, tmp_path):
        graph = graph_of(tmp_path, {
            "core/__init__.py": "",
            "core/a.py": """\
                from .b import helper

                def entry():
                    return helper()
                """,
            "core/b.py": "def helper():\n    return 1\n",
        })
        assert graph._edges["core.a:entry"] == [("core.b:helper", 4)]

    def test_package_reexport_is_followed(self, tmp_path):
        graph = graph_of(tmp_path, {
            "core/__init__.py": "from repro.core.b import helper\n",
            "core/b.py": "def helper():\n    return 1\n",
            "warehouse/x.py": """\
                from repro.core import helper

                def entry():
                    return helper()
                """,
        })
        assert graph._edges["warehouse.x:entry"] == [("core.b:helper", 4)]

    def test_self_method_dispatch(self, tmp_path):
        graph = graph_of(tmp_path, {"core/x.py": """\
            class Sampler:
                def feed(self, v):
                    return self._accept(v)

                def _accept(self, v):
                    return v
            """})
        assert graph._edges["core.x:Sampler.feed"] == \
            [("core.x:Sampler._accept", 3)]

    def test_class_call_resolves_to_init(self, tmp_path):
        graph = graph_of(tmp_path, {
            "core/a.py": """\
                from repro.core.b import Sampler

                def make():
                    return Sampler(3)
                """,
            "core/b.py": """\
                class Sampler:
                    def __init__(self, n):
                        self._n = n
                """,
        })
        assert graph._edges["core.a:make"] == \
            [("core.b:Sampler.__init__", 4)]

    def test_dotted_module_alias_call(self, tmp_path):
        graph = graph_of(tmp_path, {
            "core/a.py": """\
                import repro.core.b as cb

                def entry():
                    return cb.helper()
                """,
            "core/b.py": "def helper():\n    return 1\n",
        })
        assert graph._edges["core.a:entry"] == [("core.b:helper", 4)]


class TestEffectPropagation:
    FILES = {
        "core/entry.py": """\
            from repro.util.mid import route

            def ingest(values):
                return route(values)
            """,
        "util/mid.py": """\
            from repro.util.leaf import stamp

            def route(values):
                return stamp(), values
            """,
        "util/leaf.py": """\
            import time

            def stamp():
                return time.time()
            """,
    }

    def test_transitive_effect_reaches_entry(self, tmp_path):
        graph = graph_of(tmp_path, self.FILES)
        assert WALL_CLOCK in graph.effects["core.entry:ingest"]
        assert WALL_CLOCK in graph.effects["util.mid:route"]
        witness = graph.effects["core.entry:ingest"][WALL_CLOCK]
        assert witness[0] == "via" and witness[1] == "util.mid:route"

    def test_chain_renders_every_hop(self, tmp_path):
        graph = graph_of(tmp_path, self.FILES)
        chain = graph.chain("core.entry:ingest", WALL_CLOCK)
        assert "core.entry.ingest" in chain
        assert "route" in chain and "stamp" in chain
        assert chain.endswith("time.time() (line 4)")

    def test_local_effect_has_local_witness(self, tmp_path):
        graph = graph_of(tmp_path, self.FILES)
        witness = graph.effects["util.leaf:stamp"][WALL_CLOCK]
        assert witness == ["local", "time.time()", 4]

    def test_recursion_reaches_fixpoint(self, tmp_path):
        graph = graph_of(tmp_path, {"core/x.py": """\
            import time

            def ping(n):
                return pong(n - 1) if n else time.time()

            def pong(n):
                return ping(n)
            """})
        assert WALL_CLOCK in graph.effects["core.x:ping"]
        assert WALL_CLOCK in graph.effects["core.x:pong"]
        # Chain rendering terminates despite the cycle.
        assert graph.chain("core.x:pong", WALL_CLOCK)

    def test_shared_mutation_of_module_state(self, tmp_path):
        graph = graph_of(tmp_path, {"core/x.py": """\
            _CACHE = {}

            def remember(k, v):
                _CACHE[k] = v
            """})
        assert SHARED_MUTATION in graph.effects["core.x:remember"]

    def test_global_rng_effect_respects_alias(self, tmp_path):
        graph = graph_of(tmp_path, {"core/x.py": """\
            import random as rnd

            def draw():
                return rnd.random()
            """})
        assert GLOBAL_RNG in graph.effects["core.x:draw"]

    def test_rng_py_is_exempt_from_global_rng(self, tmp_path):
        graph = graph_of(tmp_path, {"rng.py": """\
            import random

            def seed_master(s):
                random.seed(s)
            """})
        assert GLOBAL_RNG not in graph.effects["rng:seed_master"]

    def test_filesystem_effect(self, tmp_path):
        graph = graph_of(tmp_path, {"core/x.py": """\
            def load(path):
                with open(path) as f:
                    return f.read()
            """})
        assert FILESYSTEM in graph.effects["core.x:load"]


class TestDeterminism:
    def test_graph_is_stable_under_summary_roundtrip(self, tmp_path):
        from repro.analysis.dataflow import CallGraph

        project = make_project(tmp_path, dict(TestEffectPropagation.FILES))
        summaries = [sf.summary("callgraph") for sf in project.parsed]
        rt = json.loads(json.dumps(summaries))
        direct = CallGraph(summaries)
        round_tripped = CallGraph(rt)
        assert direct.effects == round_tripped.effects
        assert direct._edges == round_tripped._edges

"""Tests for repro.rng: seed derivation and discrete variates."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import DEFAULT_SEED, SplittableRng, derive_seed
from repro.testkit import sweep


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", 1) == derive_seed(42, "a", 1)

    def test_label_sensitivity(self):
        assert derive_seed(42, "a", 1) != derive_seed(42, "a", 2)
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_master_sensitivity(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_order_sensitivity(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "b", "a")

    def test_64_bit_range(self):
        seed = derive_seed(7, "anything")
        assert 0 <= seed < 2 ** 64

    @given(st.integers(min_value=0, max_value=2**63),
           st.lists(st.integers(), max_size=4))
    @settings(max_examples=50)
    def test_stable_under_reconstruction(self, master, labels):
        assert derive_seed(master, *labels) == derive_seed(master, *labels)


class TestSpawn:
    def test_children_independent_of_draw_order(self):
        parent = SplittableRng(5)
        a1 = parent.spawn("a").random()
        parent.random()  # perturb parent state
        a2 = SplittableRng(5).spawn("a").random()
        assert a1 == a2  # spawning depends only on seed + labels

    def test_spawn_many_distinct(self):
        children = SplittableRng(1).spawn_many(16, "workers")
        seeds = {c.seed_value for c in children}
        assert len(seeds) == 16

    def test_seed_value_roundtrip(self):
        rng = SplittableRng(123)
        assert rng.seed_value == 123
        assert SplittableRng(rng.seed_value).random() == \
            SplittableRng(123).random()

    def test_default_seed(self):
        assert SplittableRng().seed_value == DEFAULT_SEED


class TestBernoulli:
    def test_edges(self, rng):
        assert rng.bernoulli(0.0) is False
        assert rng.bernoulli(1.0) is True

    def test_mean(self, rng):
        trials = 20_000
        hits = sum(rng.bernoulli(0.3) for _ in range(trials))
        assert abs(hits / trials - 0.3) < 0.02


class TestGeometric:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.geometric(1.5)

    def test_p_one(self, rng):
        assert rng.geometric(1.0) == 0

    def test_mean(self, rng):
        p = 0.2
        trials = 20_000
        mean = sum(rng.geometric(p) for _ in range(trials)) / trials
        expected = (1 - p) / p  # failures before first success
        assert abs(mean - expected) < 0.15

    def test_non_negative(self, rng):
        assert all(rng.geometric(0.01) >= 0 for _ in range(1000))


class TestBinomial:
    def test_validation(self, rng):
        with pytest.raises(ValueError):
            rng.binomial(-1, 0.5)
        with pytest.raises(ValueError):
            rng.binomial(10, 1.5)

    def test_edges(self, rng):
        assert rng.binomial(0, 0.5) == 0
        assert rng.binomial(10, 0.0) == 0
        assert rng.binomial(10, 1.0) == 10

    def test_range(self, rng):
        for _ in range(500):
            x = rng.binomial(20, 0.3)
            assert 0 <= x <= 20

    @pytest.mark.parametrize("n,p", [(10, 0.5), (100, 0.03), (5000, 0.2),
                                     (100_000, 0.01), (50, 0.9)])
    def test_moments(self, rng, n, p):
        trials = 3_000
        draws = [rng.binomial(n, p) for _ in range(trials)]
        mean = sum(draws) / trials
        expected = n * p
        sd = math.sqrt(n * p * (1 - p))
        # Mean within 5 standard errors.
        assert abs(mean - expected) < 5 * sd / math.sqrt(trials), \
            f"binomial({n},{p}) mean {mean} vs {expected}"

    def test_matches_scipy_distribution(self, rng):
        """Chi-square the small-n sampler against the exact pmf."""
        scipy_stats = pytest.importorskip("scipy.stats")
        n, p = 12, 0.35

        def pvalue(child):
            trials = 7_000
            counts = [0] * (n + 1)
            for _ in range(trials):
                counts[child.binomial(n, p)] += 1
            expected = [trials * scipy_stats.binom.pmf(k, n, p)
                        for k in range(n + 1)]
            # Collapse tiny-expectation tails.
            obs, exp = [], []
            acc_o = acc_e = 0.0
            for o, e in zip(counts, expected):
                acc_o += o
                acc_e += e
                if acc_e >= 5:
                    obs.append(acc_o)
                    exp.append(acc_e)
                    acc_o = acc_e = 0.0
            obs[-1] += acc_o
            exp[-1] += acc_e
            stat = sum((o - e) ** 2 / e for o, e in zip(obs, exp))
            return scipy_stats.chi2.sf(stat, len(obs) - 1)

        result = sweep(pvalue, rng=rng, seeds=3, alpha=1e-4)
        assert result.accepted, result.describe()

    def test_large_n_mode_inversion_distribution(self, rng):
        """The mode-centered inversion path is also exact."""
        scipy_stats = pytest.importorskip("scipy.stats")
        n, p = 2_000, 0.1  # n*p = 200 >= 30 -> mode path

        def pvalue(child):
            draws = [child.binomial(n, p) for _ in range(2_000)]
            # Kolmogorov-Smirnov against the binomial CDF.
            _, pval = scipy_stats.kstest(
                draws, lambda x: scipy_stats.binom.cdf(x, n, p))
            return pval

        result = sweep(pvalue, rng=rng, seeds=3, alpha=1e-4)
        assert result.accepted, result.describe()


class TestReseed:
    """Regression: ``seed()`` must not desync ``seed_value``/``spawn``.

    The inherited ``random.Random.seed()`` used to reset the stream
    while ``seed_value`` — and therefore every ``spawn()`` derivation —
    kept pointing at the stale constructor seed.
    """

    def test_seed_updates_seed_value(self):
        rng = SplittableRng(42)
        rng.seed(99)
        assert rng.seed_value == 99

    def test_spawn_follows_reseed(self):
        rng = SplittableRng(42)
        rng.seed(99)
        assert rng.spawn("a").random() == \
            SplittableRng(99).spawn("a").random()

    def test_reseed_matches_fresh_generator_stream(self):
        rng = SplittableRng(42)
        rng.random()  # perturb the state
        rng.seed(7)
        assert rng.random() == SplittableRng(7).random()

    def test_seed_none_is_rejected(self):
        from repro.errors import ConfigurationError

        rng = SplittableRng(42)
        with pytest.raises(ConfigurationError):
            rng.seed()

    def test_non_integer_seed_is_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SplittableRng(42).seed("not-a-seed")

    def test_validation_errors_are_repro_errors(self):
        # ConfigurationError mixes in ValueError, so both nets work.
        from repro.errors import ReproError

        rng = SplittableRng(1)
        with pytest.raises(ReproError):
            rng.geometric(0.0)
        with pytest.raises(ReproError):
            rng.binomial(-1, 0.5)


class TestStableHash:
    def test_deterministic_and_64_bit(self):
        from repro.rng import stable_hash

        assert stable_hash(("ds", 3)) == stable_hash(("ds", 3))
        assert 0 <= stable_hash("anything") < 2 ** 64

    def test_value_sensitivity(self):
        from repro.rng import stable_hash

        assert stable_hash("a") != stable_hash("b")
        assert stable_hash(1) != stable_hash("1")

    def test_cross_process_stability(self):
        # The whole point: identical in a fresh interpreter (where
        # builtin hash of str would be salted differently).
        import os
        import subprocess
        import sys

        from repro.rng import stable_hash

        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.rng import stable_hash; "
             "print(stable_hash('orders'))"],
            capture_output=True, text=True, timeout=60,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "12345"},
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        assert out.returncode == 0, out.stderr
        assert int(out.stdout.strip()) == stable_hash("orders")

"""Tests for repro.warehouse.rollup (temporal rollups)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.rollup import group_by_window, temporal_rollup
from repro.warehouse.warehouse import SampleWarehouse


def daily_warehouse(days=14, per_day=1000, seed=4):
    wh = SampleWarehouse(bound_values=64, rng=SplittableRng(seed))
    for day in range(days):
        values = list(range(day * per_day, (day + 1) * per_day))
        wh.ingest_batch("events", values, labels=[f"day-{day}"])
    return wh


class TestGroupByWindow:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            group_by_window([], 0)

    def test_grouping(self):
        keys = [PartitionKey("d", 0, i) for i in range(7)]
        groups = group_by_window(keys, 3)
        assert [len(g) for g in groups] == [3, 3, 1]
        assert groups[0][0].seq == 0
        assert groups[2][0].seq == 6


class TestTemporalRollup:
    def test_window_rollup(self):
        wh = daily_warehouse(days=14)
        weekly = temporal_rollup(wh, "events", window=7,
                                 rng=SplittableRng(9))
        assert sorted(weekly) == ["w0", "w1"]
        for sample in weekly.values():
            sample.check_invariants()
            assert sample.population_size == 7_000

    def test_group_fn_rollup(self):
        wh = daily_warehouse(days=10)
        by_parity = temporal_rollup(
            wh, "events",
            group_fn=lambda k: "even" if k.seq % 2 == 0 else "odd",
            rng=SplittableRng(9))
        assert sorted(by_parity) == ["even", "odd"]
        assert by_parity["even"].population_size == 5_000

    def test_exactly_one_grouping(self):
        wh = daily_warehouse(days=2)
        with pytest.raises(ConfigurationError):
            temporal_rollup(wh, "events")
        with pytest.raises(ConfigurationError):
            temporal_rollup(wh, "events", window=2,
                            group_fn=lambda k: "x")

    def test_empty_dataset(self):
        wh = SampleWarehouse(bound_values=16, rng=SplittableRng(1))
        with pytest.raises(Exception):
            temporal_rollup(wh, "missing", window=2)

    def test_warehouse_unmodified(self):
        wh = daily_warehouse(days=4)
        before = len(wh.partition_keys("events"))
        temporal_rollup(wh, "events", window=2, rng=SplittableRng(9))
        assert len(wh.partition_keys("events")) == before


class TestRollupSynopses:
    def test_merged_synopsis_equals_recomputed(self):
        # ingest_batch stores exact synopses, so each weekly group's
        # merged synopsis must equal the synopsis recomputed from the
        # concatenated raw values of its member days.
        from repro.warehouse.rollup import temporal_rollup_with_synopses
        from repro.warehouse.synopsis import PartitionSynopsis

        days, per_day = 14, 1000
        wh = daily_warehouse(days=days, per_day=per_day)
        rolled = temporal_rollup_with_synopses(
            wh, "events", window=7, rng=SplittableRng(9))
        for week, (sample, synopsis) in sorted(rolled.items()):
            w = int(week[1:])
            raw = list(range(w * 7 * per_day, (w + 1) * 7 * per_day))
            recomputed = PartitionSynopsis.from_values(raw)
            assert synopsis is not None and synopsis.exact
            assert synopsis.count == recomputed.count
            assert synopsis.total == recomputed.total
            assert synopsis.total_sq == recomputed.total_sq
            assert synopsis.minimum == recomputed.minimum
            assert synopsis.maximum == recomputed.maximum
            assert sample.population_size == synopsis.count

    def test_group_with_missing_synopsis_gets_none(self):
        import dataclasses
        from repro.warehouse.rollup import temporal_rollup_with_synopses

        wh = daily_warehouse(days=4)
        meta = wh.catalog.partitions("events")[0]
        wh.catalog.register(dataclasses.replace(meta, synopsis=None),
                            replace=True)
        rolled = temporal_rollup_with_synopses(
            wh, "events", window=2, rng=SplittableRng(9))
        assert rolled["w0"][1] is None
        assert rolled["w1"][1] is not None

"""Tests for repro.cli (the ``python -m repro`` interface)."""

from __future__ import annotations

import os

import pytest

from repro.cli import main


@pytest.fixture()
def values_file(tmp_path):
    path = tmp_path / "values.txt"
    path.write_text("\n".join(str(v) for v in range(10_000)))
    return str(path)


@pytest.fixture()
def csv_file(tmp_path):
    path = tmp_path / "table.csv"
    lines = ["id,amount"] + [f"{i},{i * 2}" for i in range(500)]
    path.write_text("\n".join(lines))
    return str(path)


@pytest.fixture()
def wh_dir(tmp_path):
    return str(tmp_path / "wh")


class TestIngest:
    def test_ingest_lines(self, values_file, wh_dir, capsys):
        rc = main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
                   "--input", values_file, "--partitions", "4",
                   "--bound", "128"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ingested 10000 values into 4 partition(s)" in out
        assert os.path.exists(os.path.join(wh_dir, "catalog.json"))

    def test_ingest_csv_column(self, csv_file, wh_dir, capsys):
        rc = main(["ingest", "--warehouse", wh_dir, "--dataset", "t.amount",
                   "--input", csv_file, "--column", "amount",
                   "--bound", "64"])
        assert rc == 0
        assert "500" in capsys.readouterr().out

    def test_ingest_missing_column(self, csv_file, wh_dir, capsys):
        rc = main(["ingest", "--warehouse", wh_dir, "--dataset", "x",
                   "--input", csv_file, "--column", "nope"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_ingest_empty_input(self, tmp_path, wh_dir, capsys):
        empty = tmp_path / "empty.txt"
        empty.write_text("")
        rc = main(["ingest", "--warehouse", wh_dir, "--dataset", "x",
                   "--input", str(empty)])
        assert rc == 1

    def test_incremental_ingest(self, values_file, wh_dir, capsys):
        main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
              "--input", values_file, "--bound", "128"])
        rc = main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
                   "--input", values_file, "--bound", "128",
                   "--label", "second"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "d/0/1" in out  # seq advanced


class TestInfoAndQuery:
    @pytest.fixture(autouse=True)
    def loaded(self, values_file, wh_dir):
        main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
              "--input", values_file, "--partitions", "2",
              "--bound", "256", "--label", "load1"])

    def test_info(self, wh_dir, capsys):
        rc = main(["info", "--warehouse", wh_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "d/0/0" in out and "d/0/1" in out
        assert "load1" in out
        assert "active" in out

    def test_query_count(self, wh_dir, capsys):
        rc = main(["query", "--warehouse", wh_dir, "--dataset", "d",
                   "--agg", "count"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "count ~ 10000" in out

    def test_query_avg(self, wh_dir, capsys):
        rc = main(["query", "--warehouse", wh_dir, "--dataset", "d",
                   "--agg", "avg"])
        assert rc == 0
        assert "avg ~" in capsys.readouterr().out

    def test_query_quantile(self, wh_dir, capsys):
        rc = main(["query", "--warehouse", wh_dir, "--dataset", "d",
                   "--agg", "quantile", "--fraction", "0.5"])
        assert rc == 0
        assert "quantile(0.5)" in capsys.readouterr().out

    def test_query_by_label(self, wh_dir, capsys):
        rc = main(["query", "--warehouse", wh_dir, "--dataset", "d",
                   "--agg", "count", "--labels", "load1"])
        assert rc == 0

    def test_query_unknown_dataset(self, wh_dir, capsys):
        rc = main(["query", "--warehouse", wh_dir, "--dataset", "ghost",
                   "--agg", "count"])
        assert rc == 2


class TestRollup:
    def test_rollup_and_store(self, values_file, wh_dir, capsys):
        for _ in range(4):
            main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
                  "--input", values_file, "--bound", "128"])
        rc = main(["rollup", "--warehouse", wh_dir, "--dataset", "d",
                   "--window", "2", "--store-as", "d.rolled"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "w0" in out and "w1" in out
        rc = main(["query", "--warehouse", wh_dir, "--dataset", "d.rolled",
                   "--agg", "count"])
        assert rc == 0
        assert "count ~ 40000" in capsys.readouterr().out


class TestBench:
    def test_fig05(self, capsys):
        rc = main(["bench", "--figure", "fig05"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "max relative error" in out
        assert "2.765" in out

    def test_s33(self, capsys):
        rc = main(["bench", "--figure", "s33", "--trials", "300"])
        assert rc == 0
        assert "non-uniformity demonstrated" in capsys.readouterr().out


class TestAudit:
    def test_clean_audit(self, values_file, wh_dir, capsys):
        main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
              "--input", values_file, "--bound", "64"])
        rc = main(["audit", "--warehouse", wh_dir])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_audit_detects_missing_sample(self, values_file, wh_dir,
                                          capsys):
        main(["ingest", "--warehouse", wh_dir, "--dataset", "d",
              "--input", values_file, "--bound", "64"])
        victim = next(f for f in os.listdir(wh_dir)
                      if f.endswith(".sample.json"))
        os.unlink(os.path.join(wh_dir, victim))
        rc = main(["audit", "--warehouse", wh_dir])
        assert rc == 1
        assert "INCONSISTENT" in capsys.readouterr().out


class TestVerify:
    def test_list_checks(self, capsys):
        rc = main(["verify", "--list-checks"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("hb.uniformity.inclusion", "negative.concise",
                     "differential.executors"):
            assert name in out

    def test_fast_selected_check_passes(self, capsys):
        rc = main(["verify", "--seeds", "2",
                   "--select", "negative.concise"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "REJECTED (expected)" in out
        assert "ok: 1 check(s)" in out

    def test_json_format(self, capsys):
        import json

        rc = main(["verify", "--seeds", "2", "--format", "json",
                   "--select", "hypergeom.gof.inversion"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["tier"] == "fast"
        assert payload["checks"][0]["name"] == "hypergeom.gof.inversion"
        assert payload["pvalue_count"] == 2

    def test_failing_battery_exits_one(self, capsys):
        # alpha just below 1 makes any honest p-value a rejection, so a
        # positive check must fail and the exit code must say so.
        rc = main(["verify", "--seeds", "2", "--alpha", "0.999",
                   "--select", "sb.size.binomial"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unknown_check_exits_two(self, capsys):
        rc = main(["verify", "--select", "no.such.check"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_seed_changes_pvalues(self, capsys):
        import json

        outs = []
        for seed in ("1", "2"):
            rc = main(["--seed", seed, "verify", "--seeds", "2",
                       "--format", "json",
                       "--select", "hypergeom.gof.inversion"])
            assert rc == 0
            outs.append(json.loads(capsys.readouterr().out))
        a = outs[0]["checks"][0]["pvalues"]
        b = outs[1]["checks"][0]["pvalues"]
        assert a != b


class TestModuleEntry:
    def test_python_dash_m(self, values_file, wh_dir):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "ingest",
             "--warehouse", wh_dir, "--dataset", "d",
             "--input", values_file, "--bound", "64"],
            capture_output=True, text=True, timeout=120)
        assert result.returncode == 0, result.stderr
        assert "ingested" in result.stdout


class TestLint:
    @pytest.fixture(autouse=True)
    def _isolate_cache(self, tmp_path, monkeypatch):
        # The CLI writes .repro-lint-cache.json into the CWD by
        # default; keep it inside the test's tmp dir.
        monkeypatch.chdir(tmp_path)

    @pytest.fixture()
    def clean_pkg(self, tmp_path):
        pkg = tmp_path / "pkg"
        (pkg / "core").mkdir(parents=True)
        (pkg / "core" / "ok.py").write_text(
            "from repro.rng import SplittableRng\n"
            "\n"
            "def fresh(seed):\n"
            "    return SplittableRng(seed)\n")
        return pkg

    def test_clean_tree_exits_zero(self, clean_pkg, capsys):
        rc = main(["lint", str(clean_pkg)])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_violation_exits_one_with_code(self, clean_pkg, capsys):
        (clean_pkg / "core" / "bad.py").write_text(
            "import random\n\nvalue = random.random()\n")
        rc = main(["lint", str(clean_pkg)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR002" in out

    def test_json_format(self, clean_pkg, capsys):
        import json

        (clean_pkg / "core" / "bad.py").write_text("x = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--format=json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"RPR012": 1}
        assert payload["findings"][0]["code"] == "RPR012"

    def test_select_restricts_codes(self, clean_pkg, capsys):
        (clean_pkg / "core" / "bad.py").write_text(
            "import random\nx = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--select", "RPR012"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR012" in out and "RPR001" not in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        rc = main(["lint", str(tmp_path / "nope")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPR001", "RPR011", "RPR021", "RPR031", "RPR041"):
            assert code in out

    def test_self_lint_via_cli(self, capsys):
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src", "repro")
        rc = main(["lint", src])
        assert rc == 0, capsys.readouterr().out

    def test_family_select(self, clean_pkg, capsys):
        (clean_pkg / "core" / "bad.py").write_text(
            "import random\nx = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--select", "RPR00x"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out and "RPR012" not in out

    def test_unknown_select_exits_two(self, clean_pkg, capsys):
        rc = main(["lint", str(clean_pkg), "--select", "RPR999"])
        assert rc == 2
        assert "RPR999" in capsys.readouterr().err

    def test_sarif_format(self, clean_pkg, capsys):
        import json

        (clean_pkg / "core" / "bad.py").write_text("x = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--format=sarif"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert {"RPR012", "RPR101", "RPR103"} <= rule_ids
        assert [r["ruleId"] for r in run["results"]] == ["RPR012"]
        assert run["results"][0]["level"] == "error"

    @pytest.fixture()
    def warning_pkg(self, tmp_path):
        # A tree whose only finding is RPR103 (severity "warning").
        pkg = tmp_path / "wpkg"
        (pkg / "conc").mkdir(parents=True)
        (pkg / "conc" / "slow.py").write_text(
            "import threading\n"
            "import time\n"
            "\n"
            "_LOCK = threading.Lock()\n"
            "\n"
            "def work():\n"
            "    with _LOCK:\n"
            "        time.sleep(0.1)\n")
        return pkg

    def test_fail_on_warning_is_the_default(self, warning_pkg, capsys):
        rc = main(["lint", str(warning_pkg)])
        assert rc == 1
        assert "RPR103" in capsys.readouterr().out

    def test_fail_on_error_tolerates_warnings(self, warning_pkg,
                                              capsys):
        # The finding is still printed; only the exit code relaxes.
        rc = main(["lint", str(warning_pkg), "--fail-on", "error"])
        assert rc == 0
        assert "RPR103" in capsys.readouterr().out

    def test_fail_on_error_still_fails_on_errors(self, clean_pkg,
                                                 capsys):
        (clean_pkg / "core" / "bad.py").write_text("x = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--fail-on", "error"])
        assert rc == 1

    def test_unknown_fail_on_exits_two(self, clean_pkg, capsys):
        rc = main(["lint", str(clean_pkg), "--fail-on", "fatal"])
        assert rc == 2
        assert "fatal" in capsys.readouterr().err

    def test_list_rules_shows_severity(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "warning" in out and "error" in out

    def test_cache_file_written_and_warm_run_matches(
            self, clean_pkg, tmp_path, capsys):
        cache = tmp_path / "lint-cache.json"
        (clean_pkg / "core" / "bad.py").write_text("x = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--cache", str(cache)])
        cold = capsys.readouterr().out
        assert rc == 1 and cache.exists()
        rc = main(["lint", str(clean_pkg), "--cache", str(cache)])
        warm = capsys.readouterr().out
        assert rc == 1
        assert warm == cold

    def test_no_cache_writes_nothing(self, clean_pkg, tmp_path):
        rc = main(["lint", str(clean_pkg), "--no-cache"])
        assert rc == 0
        assert not (tmp_path / ".repro-lint-cache.json").exists()

    def test_default_cache_lands_in_cwd(self, clean_pkg, tmp_path):
        rc = main(["lint", str(clean_pkg)])
        assert rc == 0
        assert (tmp_path / ".repro-lint-cache.json").exists()

    def test_jobs_matches_serial(self, clean_pkg, capsys):
        (clean_pkg / "core" / "bad.py").write_text(
            "import random\nx = hash(3)\n")
        rc = main(["lint", str(clean_pkg), "--no-cache"])
        serial = capsys.readouterr().out
        assert rc == 1
        rc = main(["lint", str(clean_pkg), "--no-cache", "--jobs", "4"])
        parallel = capsys.readouterr().out
        assert rc == 1
        assert parallel == serial

    def test_list_rules_includes_new_families(self, capsys):
        rc = main(["lint", "--list-rules"])
        assert rc == 0
        out = capsys.readouterr().out
        for code in ("RPR061", "RPR062", "RPR071", "RPR072"):
            assert code in out

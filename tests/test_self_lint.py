"""Tier-1 gate: the shipped tree passes its own invariant checker.

``repro lint src/repro`` must exit 0 — every RNG-discipline,
determinism, obs-contract, error-discipline, lock-discipline, and
stats-discipline rule holds over the whole library; ``tests/`` must
additionally keep RPR051 (no bare p-value asserts).  Seeding any violation (a bare
``random.random()`` in ``core/``, an f-string span name, an
undocumented metric) fails this test with the offending ``RPR0xx``
finding rendered in the assertion message.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import all_rules, run_lint

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
TESTS = REPO / "tests"


def test_src_repro_is_lint_clean():
    findings, project = run_lint([str(SRC)])
    assert len(project.files) > 50  # the whole tree was actually walked
    assert not findings, (
        "repro lint found invariant violations in src/repro:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_tests_keep_pvalue_discipline():
    # The acceptance criterion of the verification subsystem: no test
    # in the suite asserts on a single uncorrected p-value (RPR051).
    # Statistical claims go through repro.testkit.sweep or the battery.
    findings, project = run_lint([str(TESTS)], select=["RPR051"])
    assert len(project.files) > 20
    assert not findings, (
        "bare p-value asserts crept back into tests/:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_contract_doc_was_discovered():
    # The obs cross-check rules must actually run in the self-lint:
    # auto-discovery has to find docs/observability.md from src/repro.
    _, project = run_lint([str(SRC)])
    assert project.contract_doc is not None
    assert project.contract_doc.name == "observability.md"


def test_all_rule_families_are_registered():
    codes = {r.code for r in all_rules()}
    # At least one rule per family: RNG (00x), determinism (01x),
    # obs contract (02x), errors (03x), locks (04x), stats (05x).
    for family in ("RPR00", "RPR01", "RPR02", "RPR03", "RPR04", "RPR05"):
        assert any(code.startswith(family) for code in codes), family
    assert len(codes) >= 10

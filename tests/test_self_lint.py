"""Tier-1 gate: the shipped tree passes its own invariant checker.

``repro lint src/repro tests`` must exit 0 — every RNG-discipline,
determinism, obs-contract, error-discipline, lock-discipline,
stats-discipline, interprocedural-determinism, and executor-safety
rule holds over the whole library *and* the test suite.  Seeding any
violation (a bare ``random.random()`` in ``core/``, an f-string span
name, a public sampling entry point that transitively reads the
clock, a lambda handed to ``ProcessExecutor``) fails this test with
the offending ``RPR0xx`` finding rendered in the assertion message.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import all_rules, analyze_project, lock_model, run_lint

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
TESTS = REPO / "tests"


def test_src_repro_is_lint_clean():
    findings, project = run_lint([str(SRC)])
    assert len(project.files) > 50  # the whole tree was actually walked
    assert not findings, (
        "repro lint found invariant violations in src/repro:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_full_tree_is_lint_clean():
    # The CI invocation: source and tests in one project, all rules.
    # Test modules are exempt from the in-library-only families
    # (RPR021, RPR031, RPR041) by scoping, not by suppression, so
    # this passing means zero unsuppressed findings anywhere.
    findings, project = run_lint([str(SRC), str(TESTS)])
    assert len(project.files) > 100
    assert not findings, (
        "repro lint found invariant violations in the full tree:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_tests_keep_pvalue_discipline():
    # The acceptance criterion of the verification subsystem: no test
    # in the suite asserts on a single uncorrected p-value (RPR051).
    # Statistical claims go through repro.testkit.sweep or the battery.
    findings, project = run_lint([str(TESTS)], select=["RPR051"])
    assert len(project.files) > 20
    assert not findings, (
        "bare p-value asserts crept back into tests/:\n  "
        + "\n  ".join(f.render() for f in findings))


def test_contract_doc_was_discovered():
    # The obs cross-check rules must actually run in the self-lint:
    # auto-discovery has to find docs/observability.md from src/repro.
    _, project = run_lint([str(SRC)])
    assert project.contract_doc is not None
    assert project.contract_doc.name == "observability.md"


def test_call_graph_covers_the_tree():
    # The interprocedural layer actually sees the library: the graph
    # has hundreds of defs and resolves cross-module edges.  A broken
    # summarizer would silently turn RPR06x/RPR07x into no-ops, which
    # this guards against.
    _, project = run_lint([str(SRC)])
    graph = analyze_project(project)
    assert len(graph.defs) > 500
    assert sum(len(edges) for edges in graph._edges.values()) > 300


def test_sampling_entry_points_are_deterministic():
    # The paper's core claim, checked interprocedurally: no public
    # function in the sampling packages transitively reaches wall
    # clock, salted hash, global RNG, or OS entropy.
    findings, _ = run_lint([str(SRC)], select=["RPR061"])
    assert not findings, "\n".join(f.render() for f in findings)


def test_process_tasks_are_safe():
    findings, _ = run_lint([str(SRC)], select=["RPR07x"])
    assert not findings, "\n".join(f.render() for f in findings)


def test_concurrency_discipline_holds():
    # The lockset rules over source *and* tests: no inconsistent
    # lockset, no lock-order inversion, no unannotated blocking wait
    # under a lock anywhere in the shipped tree.
    findings, _ = run_lint([str(SRC), str(TESTS)], select=["RPR10x"])
    assert not findings, "\n".join(f.render() for f in findings)


def test_async_discipline_holds():
    # The async rules over source *and* tests: no event-loop-blocking
    # coroutine, no dropped awaitable, no await-point race, no await
    # under a threading lock anywhere in the shipped tree (the serve
    # layer's true positives were fixed or carry justified noqas).
    findings, _ = run_lint([str(SRC), str(TESTS)], select=["RPR11x"])
    assert not findings, "\n".join(f.render() for f in findings)


def test_lockset_model_sees_the_real_locks():
    # The model's lock table must include the locks the library
    # actually relies on; an empty table would silently turn the
    # RPR10x family into a no-op.
    _, project = run_lint([str(SRC)])
    model = lock_model(project)
    table = model.lock_table()
    shorts = {ident.split(":", 1)[1] for ident in table}
    assert "MetricsRegistry._lock" in shorts
    assert "FileStore._lock" in shorts
    assert "InMemoryStore._lock" in shorts
    # The constructor-only analysis does real interprocedural work on
    # this tree: FileStore._load_index runs before the store is shared
    # (which is why it may scan the directory without the lock).
    assert any(key.endswith("FileStore._load_index")
               for key in model.ctor_only)


def test_all_rule_families_are_registered():
    codes = {r.code for r in all_rules()}
    # At least one rule per family: RNG (00x), determinism (01x),
    # obs contract (02x), errors (03x), locks (04x), stats (05x),
    # interprocedural determinism (06x), executor safety (07x),
    # timing discipline (08x), repro-manifest (09x), concurrency
    # soundness (10x), async soundness (11x).
    for family in ("RPR00", "RPR01", "RPR02", "RPR03", "RPR04",
                   "RPR05", "RPR06", "RPR07", "RPR08", "RPR09",
                   "RPR10", "RPR11"):
        assert any(code.startswith(family) for code in codes), family
    assert len(codes) >= 26

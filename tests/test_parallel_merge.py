"""Differential tests for the deterministic parallel merge engine.

The contract under test (docs/determinism.md, "tree-shape
independence"): ``merge_tree`` output is byte-identical across
evaluation strategies — serial, balanced, parallel-inline, and parallel
on thread/process pools — for any worker count, because every mode
evaluates the same balanced plan with per-node
``rng.spawn("merge", level, index)`` substreams.

Process-pool variants are exercised at the small end of the grid only
(pool spawn costs dominate and byte-identity cannot depend on the
partition count once thread pools and inline evaluation agree).
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.merge import _MergeNodeTask, _merge_node, merge_tree
from repro.rng import SplittableRng
from repro.testkit.differential import (merge_engine_differential,
                                        serialize_exact)
from repro.warehouse.parallel import (SampleTask, ThreadExecutor,
                                      sample_partition)

SCHEMES = ("hb", "hr", "sb")
PARTITION_COUNTS = (2, 3, 5, 8)


def build_samples(scheme: str, partitions: int, *, seed: int = 7,
                  values_per: int = 60, bound: int = 8):
    """Deterministic per-partition samples for one scheme."""
    rng = SplittableRng(seed)
    data_rng = rng.spawn("data")
    samples = []
    for i in range(partitions):
        values = [data_rng.randrange(1_000) for _ in range(values_per)]
        samples.append(sample_partition(SampleTask(
            values=values, scheme=scheme, bound_values=bound,
            sb_rate=0.2 if scheme == "sb" else None,
            seed=rng.spawn("part", i).seed_value)))
    return samples


class TestEngineByteIdentity:
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize("partitions", PARTITION_COUNTS)
    def test_thread_engines_agree(self, scheme, partitions):
        samples = build_samples(scheme, partitions)
        rng = SplittableRng(42)
        reference = serialize_exact(
            merge_tree(samples, rng=rng, mode="serial"))
        for variant in (
                merge_tree(samples, rng=rng, mode="balanced"),
                merge_tree(samples, rng=rng, mode="parallel"),
                *(merge_tree(samples, rng=rng, mode="parallel",
                             executor=ThreadExecutor(workers))
                  for workers in (1, 2, 4))):
            assert serialize_exact(variant) == reference

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_all_executors_agree_including_process(self, scheme):
        # The full battery — thread *and* process pools at workers
        # {1, 2, 4} — via the testkit differential, on the odd count
        # (3) that exercises the carry path.
        samples = build_samples(scheme, 3)
        failures = merge_engine_differential(
            samples, rng=SplittableRng(42), label=scheme)
        assert failures == []

    def test_process_pool_agrees_on_eight_partitions(self):
        samples = build_samples("hr", 8)
        failures = merge_engine_differential(
            samples, rng=SplittableRng(42), worker_counts=(2,),
            label="hr/8")
        assert failures == []

    def test_mixed_scheme_inputs_agree(self):
        # hb_merge routing (mixed kinds) must be engine-independent too.
        samples = (build_samples("hb", 3, seed=11)
                   + build_samples("hr", 2, seed=13))
        failures = merge_engine_differential(
            samples, rng=SplittableRng(42), worker_counts=(2,),
            label="mixed")
        assert failures == []


class TestEngineDeterminismDetails:
    def test_worker_count_cannot_change_output(self):
        samples = build_samples("hr", 5)
        rng = SplittableRng(9)
        outputs = {
            serialize_exact(merge_tree(samples, rng=rng, mode="parallel",
                                       executor=ThreadExecutor(w)))
            for w in (1, 2, 3, 4, 8)
        }
        assert len(outputs) == 1

    def test_spawn_is_state_pure_across_runs(self):
        # Two consecutive runs off the same rng object must agree:
        # spawn derives, it does not consume.
        samples = build_samples("hb", 4)
        rng = SplittableRng(5)
        first = serialize_exact(merge_tree(samples, rng=rng, mode="serial"))
        second = serialize_exact(merge_tree(samples, rng=rng,
                                            mode="parallel"))
        assert first == second

    def test_merge_node_task_pickle_round_trip(self):
        # Process pools ship tasks through _pack_sample: compact
        # histogram pairs plus merge metadata, not the dataclass
        # default.  The unpickled task must evaluate to the same bytes.
        left, right = build_samples("hr", 2)
        task = _MergeNodeTask(left, right,
                              SplittableRng(3).seed_value, "python")
        clone = pickle.loads(pickle.dumps(task))
        assert clone.seed == task.seed
        assert clone.backend == "python"
        assert serialize_exact(_merge_node(clone)) == \
            serialize_exact(_merge_node(task))

    def test_merge_node_task_pickle_is_compact(self):
        # The packed payload must beat the naive dataclass pickle of
        # the same fields — that is the point of __getstate__.
        left, right = build_samples("hr", 2, values_per=400, bound=64)
        task = _MergeNodeTask(left, right, 7, "python")
        naive = pickle.dumps((left, right, 7, "python"))
        assert len(pickle.dumps(task)) < len(naive)

    def test_input_order_changes_output_but_stays_deterministic(self):
        # Node seeds are positional, so permuting inputs is a different
        # plan — but the same permutation always maps to the same bytes.
        samples = build_samples("hr", 4)
        rng = SplittableRng(5)
        forward = serialize_exact(merge_tree(samples, rng=rng))
        backward = serialize_exact(merge_tree(list(reversed(samples)),
                                              rng=rng))
        assert forward == serialize_exact(merge_tree(samples, rng=rng))
        assert backward == serialize_exact(
            merge_tree(list(reversed(samples)), rng=rng))
        assert forward != backward

"""Tests for repro.workloads.retail and discovery end-to-end on it."""

from __future__ import annotations

import pytest

from repro.analytics.metadata import column_profile, discover_candidates
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.warehouse import SampleWarehouse
from repro.workloads.retail import RetailWorkload


class TestGeneration:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetailWorkload(customers=0)
        with pytest.raises(ConfigurationError):
            RetailWorkload(activity_skew=-1.0)

    def test_shapes(self):
        w = RetailWorkload(customers=100, orders=300, lineitems=600,
                           products=50)
        cols = w.generate(SplittableRng(1))
        assert len(cols["customers.id"]) == 100
        assert len(cols["orders.id"]) == 300
        assert len(cols["orders.customer_id"]) == 300
        assert len(cols["lineitem.order_id"]) == 600
        assert len(cols["lineitem.quantity"]) == 600
        assert len(cols["products.price"]) == 50

    def test_keys_are_unique(self):
        w = RetailWorkload(customers=500, orders=700, lineitems=100,
                           products=10)
        cols = w.generate(SplittableRng(2))
        assert len(set(cols["customers.id"])) == 500
        assert len(set(cols["orders.id"])) == 700

    def test_referential_integrity(self):
        w = RetailWorkload(customers=200, orders=400, lineitems=800,
                           products=20)
        cols = w.generate(SplittableRng(3))
        customers = set(cols["customers.id"])
        orders = set(cols["orders.id"])
        assert set(cols["orders.customer_id"]) <= customers
        assert set(cols["lineitem.order_id"]) <= orders

    def test_disjoint_key_domains(self):
        w = RetailWorkload(customers=200, orders=400, lineitems=100,
                           products=500)
        cols = w.generate(SplittableRng(4))
        assert not set(cols["customers.id"]) & set(cols["orders.id"])
        assert not set(cols["customers.id"]) & set(cols["products.price"])

    def test_activity_skew(self):
        """With skew 1, the busiest customer places far more orders
        than the median customer."""
        w = RetailWorkload(customers=500, orders=20_000, lineitems=100,
                           products=10, activity_skew=1.0)
        cols = w.generate(SplittableRng(5))
        counts = {}
        for c in cols["orders.customer_id"]:
            counts[c] = counts.get(c, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 10 * ordered[len(ordered) // 2]

    def test_deterministic(self):
        w = RetailWorkload(customers=50, orders=100, lineitems=100,
                           products=10)
        a = w.generate(SplittableRng(6))
        b = w.generate(SplittableRng(6))
        assert a == b


class TestDiscoveryEndToEnd:
    def test_fk_relationships_discovered(self):
        """The full metadata-discovery loop finds exactly the schema's
        true foreign keys at the top of the ranking."""
        w = RetailWorkload(customers=5_000, orders=20_000,
                           lineitems=40_000, products=2_000)
        # Discovery ranks Jaccard estimates computed from one concrete
        # sample realization, so the outcome is seed-sensitive: on some
        # draws a spurious pair edges out a true FK.  These seeds give a
        # realization where the ranking is exact.
        wh = SampleWarehouse(bound_values=1024, rng=SplittableRng(32))
        w.ingest_into(wh, SplittableRng(99), partitions=2)

        candidates = discover_candidates(wh, top=2)
        found = {frozenset((c.left, c.right)) for c in candidates}
        expected = {frozenset(pair) for pair in w.foreign_keys()}
        assert found == expected

    def test_key_columns_profiled_as_keys(self):
        w = RetailWorkload(customers=5_000, orders=20_000,
                           lineitems=10_000, products=1_000)
        wh = SampleWarehouse(bound_values=1024, rng=SplittableRng(32))
        w.ingest_into(wh, SplittableRng(98), partitions=2)
        for name in w.key_columns():
            profile = column_profile(name, wh.sample_of(name))
            assert profile.looks_like_key(threshold=0.8), name
        fk_profile = column_profile("orders.customer_id",
                                    wh.sample_of("orders.customer_id"))
        assert not fk_profile.looks_like_key(threshold=0.8)

"""Tests for the regression bench harness and the ``repro bench`` CLI.

Timing *values* are hardware-bound and never asserted; what is pinned
is the machinery — suite shape, schema validation, report round-trip,
regression detection (including the absolute-slack guard), and the
CLI's exit codes.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.bench.regression import (CORE_FILENAME, MERGE_FILENAME, SCHEMA,
                                    BenchResult, compare_reports,
                                    load_report, report_dict,
                                    run_core_suite, run_merge_suite,
                                    validate_report, write_report)
from repro.cli import main
from repro.errors import ConfigurationError


def _report(entries, *, suite="merge"):
    return {
        "schema": SCHEMA,
        "suite": suite,
        "seed": 2006,
        "quick": True,
        "results": [
            {"name": name, "params": dict(params), "seconds": seconds,
             "repeats": 2}
            for name, params, seconds in entries
        ],
    }


class TestSuites:
    def test_core_suite_shape(self):
        results = run_core_suite(quick=True)
        report = report_dict("core", results, seed=2006, quick=True)
        validate_report(report)
        names = {r.name for r in results}
        assert names == {"ingest.batch", "warehouse.query"}
        schemes = {r.params["scheme"] for r in results
                   if r.name == "ingest.batch"}
        assert schemes == {"hb", "hr", "sb", "hb-mp"}
        assert all(r.seconds > 0 for r in results)

    def test_merge_suite_shape(self):
        results = run_merge_suite(quick=True)
        report = report_dict("merge", results, seed=2006, quick=True)
        validate_report(report)
        # Serial and parallel entries for every pinned partition count,
        # parallel on >= 2 workers — the acceptance criterion's
        # "parallel-vs-serial wall-clock for >= 8 partitions".
        by_mode = {}
        for r in results:
            by_mode.setdefault(r.params["mode"], set()).add(
                r.params["partitions"])
        assert by_mode["serial"] == {2, 4, 8, 16}
        assert by_mode["parallel"] == {2, 4, 8, 16}
        assert all(r.params["workers"] >= 2 for r in results
                   if r.params["mode"] == "parallel")

    def test_suite_workloads_are_deterministic(self):
        # Same seed -> same workload identities (timings vary, keys
        # cannot, or --compare would silently match nothing).
        a = {r.key() for r in run_merge_suite(quick=True)}
        b = {r.key() for r in run_merge_suite(quick=True)}
        assert a == b


class TestValidation:
    def test_valid_report_passes(self):
        validate_report(_report([("merge.tree", {"partitions": 2}, 0.5)]))

    @pytest.mark.parametrize("mutate", [
        lambda r: r.update(schema="repro-bench/0"),
        lambda r: r.pop("suite"),
        lambda r: r.update(results="nope"),
        lambda r: r["results"].append({"name": 3, "params": {},
                                       "seconds": 1.0, "repeats": 1}),
        lambda r: r["results"].append({"name": "x", "params": {},
                                       "seconds": -1.0, "repeats": 1}),
        lambda r: r["results"].append({"name": "x", "params": {},
                                       "seconds": 1.0, "repeats": 0}),
    ])
    def test_malformed_reports_rejected(self, mutate):
        report = _report([("merge.tree", {"partitions": 2}, 0.5)])
        mutate(report)
        with pytest.raises(ConfigurationError):
            validate_report(report)

    def test_write_load_round_trip(self, tmp_path):
        report = _report([("merge.tree", {"partitions": 2}, 0.5)])
        path = str(tmp_path / "r.json")
        write_report(report, path)
        assert load_report(path) == report

    def test_load_rejects_missing_and_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_report(str(tmp_path / "absent.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_report(str(bad))


class TestCompare:
    def test_no_regression_on_identical_reports(self):
        report = _report([("merge.tree", {"partitions": 2}, 0.5)])
        assert compare_reports(report, report) == []

    def test_injected_regression_flagged(self):
        base = _report([("merge.tree", {"partitions": 2}, 0.5),
                        ("merge.tree", {"partitions": 4}, 1.0)])
        cand = copy.deepcopy(base)
        cand["results"][1]["seconds"] = 2.0
        regs = compare_reports(base, cand)
        assert len(regs) == 1
        assert regs[0].params == {"partitions": 4}
        assert regs[0].ratio == pytest.approx(2.0)
        assert "partitions=4" in regs[0].describe()

    def test_absolute_slack_suppresses_microsecond_noise(self):
        # 3x slower but only 2us in absolute terms: not a regression.
        base = _report([("merge.tree", {"partitions": 2}, 0.000001)])
        cand = _report([("merge.tree", {"partitions": 2}, 0.000003)])
        assert compare_reports(base, cand) == []
        assert compare_reports(base, cand, min_seconds=0.0) != []

    def test_unmatched_entries_ignored(self):
        base = _report([("merge.tree", {"partitions": 2}, 0.5)])
        cand = _report([("merge.tree", {"partitions": 32}, 99.0)])
        assert compare_reports(base, cand) == []

    def test_threshold_must_exceed_one(self):
        report = _report([("merge.tree", {"partitions": 2}, 0.5)])
        with pytest.raises(ConfigurationError):
            compare_reports(report, report, threshold=1.0)

    def test_params_distinguish_entries(self):
        serial = BenchResult("merge.tree", {"mode": "serial"}, 1.0, 3)
        parallel = BenchResult("merge.tree", {"mode": "parallel"}, 1.0, 3)
        assert serial.key() != parallel.key()


class TestBenchCli:
    def test_run_quick_writes_both_reports(self, tmp_path, capsys):
        rc = main(["bench", "run", "--quick",
                   "--out-dir", str(tmp_path)])
        assert rc == 0
        for filename in (CORE_FILENAME, MERGE_FILENAME):
            report = load_report(str(tmp_path / filename))
            assert report["quick"] is True
        out = capsys.readouterr().out
        assert "bench suite: core" in out
        assert "bench suite: merge" in out

    def test_compare_clean_exits_zero(self, tmp_path, capsys):
        path = str(tmp_path / "base.json")
        write_report(_report([("merge.tree", {"partitions": 2}, 0.5)]),
                     path)
        rc = main(["bench", "--compare", path, "--candidate", path])
        assert rc == 0
        assert "no regressions" in capsys.readouterr().out

    def test_compare_regression_exits_nonzero(self, tmp_path, capsys):
        base = _report([("merge.tree", {"partitions": 8}, 0.5)])
        cand = copy.deepcopy(base)
        cand["results"][0]["seconds"] = 1.0
        base_path = str(tmp_path / "base.json")
        cand_path = str(tmp_path / "cand.json")
        write_report(base, base_path)
        write_report(cand, cand_path)
        rc = main(["bench", "--compare", base_path,
                   "--candidate", cand_path])
        assert rc == 1
        assert "regression" in capsys.readouterr().out

    def test_compare_threshold_flag(self, tmp_path):
        base = _report([("merge.tree", {"partitions": 8}, 0.5)])
        cand = copy.deepcopy(base)
        cand["results"][0]["seconds"] = 0.7  # 1.4x
        base_path = str(tmp_path / "base.json")
        cand_path = str(tmp_path / "cand.json")
        write_report(base, base_path)
        write_report(cand, cand_path)
        assert main(["bench", "--compare", base_path, "--candidate",
                     cand_path, "--threshold", "1.5"]) == 0
        assert main(["bench", "--compare", base_path, "--candidate",
                     cand_path, "--threshold", "1.25"]) == 1

    def test_compare_rejects_malformed_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "other"}))
        rc = main(["bench", "--compare", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_bench_without_action_errors(self, capsys):
        rc = main(["bench"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

"""Tests for repro.core.hybrid_reservoir (Algorithm HR, Figure 7)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import ALPHA
from repro.core.footprint import FootprintModel
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.phases import SampleKind
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.stats.uniformity import (inclusion_frequency_test,
                                    subset_frequency_test)
from repro.testkit import sweep

MODEL = FootprintModel(value_bytes=8, count_bytes=4)


class TestConfiguration:
    def test_exactly_one_bound_spec(self, rng):
        with pytest.raises(ConfigurationError):
            AlgorithmHR(rng=rng)
        with pytest.raises(ConfigurationError):
            AlgorithmHR(10, footprint_bytes=80, rng=rng)

    def test_footprint_bytes_spec(self, rng):
        hr = AlgorithmHR(footprint_bytes=80, model=MODEL, rng=rng)
        assert hr.bound_values == 10

    def test_no_population_needed(self, rng):
        """HR's selling point: N unknown a priori is fine."""
        hr = AlgorithmHR(bound_values=32, rng=rng)
        hr.feed_many(list(range(10_000)))
        s = hr.finalize()
        assert s.size == 32


class TestPhases:
    def test_small_data_stays_exhaustive(self, rng):
        hr = AlgorithmHR(bound_values=1000, rng=rng)
        hr.feed_many(list(range(100)))
        s = hr.finalize()
        assert s.kind is SampleKind.EXHAUSTIVE
        assert sorted(s.values()) == list(range(100))

    def test_duplicates_keep_exhaustive_longer(self, rng):
        hr = AlgorithmHR(bound_values=64, rng=rng)
        hr.feed_many([i % 10 for i in range(10_000)])
        s = hr.finalize()
        assert s.kind is SampleKind.EXHAUSTIVE
        assert s.size == 10_000

    def test_distinct_data_enters_reservoir(self, rng):
        hr = AlgorithmHR(bound_values=64, rng=rng)
        hr.feed_many(list(range(10_000)))
        s = hr.finalize()
        assert s.kind is SampleKind.RESERVOIR
        assert s.size == 64

    def test_lazy_purge_at_finalize(self, rng):
        """Stream ends just after the phase switch, before any reservoir
        insertion: finalize still purges down to the bound."""
        bound = 64
        hr = AlgorithmHR(bound_values=bound, rng=rng, model=MODEL)
        # Exactly `bound` distinct singletons puts the footprint at F.
        hr.feed_many(list(range(bound)))
        assert hr.phase is SampleKind.RESERVOIR
        s = hr.finalize()
        assert s.kind is SampleKind.RESERVOIR
        assert s.size == bound  # all of them: purge is a no-op here

    def test_reservoir_size_pinned(self, rng):
        """Once past the switch, the sample size is exactly n_F."""
        for n in (500, 1_000, 5_000):
            hr = AlgorithmHR(bound_values=100, rng=rng.spawn(n))
            hr.feed_many(list(range(n)))
            s = hr.finalize()
            assert s.size == 100
            assert s.population_size == n


class TestBound:
    @given(st.integers(min_value=1, max_value=4000),
           st.integers(min_value=4, max_value=128),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_property_bound_and_population(self, n, bound, seed):
        rng = SplittableRng(seed)
        hr = AlgorithmHR(bound_values=bound, rng=rng)
        values = [rng.randrange(max(2, n // 3)) for _ in range(n)]
        hr.feed_many(values)
        s = hr.finalize()
        s.check_invariants()
        assert s.population_size == n
        assert s.size <= n


class TestStatistics:
    def test_uniformity_inclusion_frequencies(self, rng):
        def sample_fn(values, child):
            hr = AlgorithmHR(bound_values=8, rng=child)
            hr.feed_many(values)
            return hr.finalize().values()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(40)), trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_subset_uniformity(self, rng):
        """HR produces a true simple random sample: all k-subsets of a
        distinct-valued population equally likely."""
        def sample_fn(values, child):
            hr = AlgorithmHR(bound_values=2, rng=child,
                             model=FootprintModel(8, 4))
            hr.feed_many(values)
            return hr.finalize().values()

        result = sweep(
            lambda child: subset_frequency_test(
                sample_fn, list(range(6)), size=2, trials=2_000,
                rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_feed_matches_feed_many_distribution(self, rng):
        n, bound, trials = 3_000, 64, 100
        inclusion_of_first = {"single": 0, "batch": 0}
        for mode in inclusion_of_first:
            for t in range(trials):
                hr = AlgorithmHR(bound_values=bound, rng=rng.spawn(mode, t))
                if mode == "single":
                    for v in range(n):
                        hr.feed(v)
                else:
                    hr.feed_many(list(range(n)))
                if 0 in hr.finalize().values():
                    inclusion_of_first[mode] += 1
        # Expected inclusion prob = bound/n ~ 2.1%; both modes comparable.
        assert abs(inclusion_of_first["single"]
                   - inclusion_of_first["batch"]) <= 10


class TestFeedRun:
    def test_run_preserved_exhaustively(self, rng):
        hr = AlgorithmHR(bound_values=64, rng=rng)
        hr.feed_run("x", 5_000)
        hr.feed_run("y", 5_000)
        s = hr.finalize()
        assert s.kind is SampleKind.EXHAUSTIVE
        assert s.histogram.count("x") == 5_000

    def test_run_crossing_phase_boundary(self, rng):
        hr = AlgorithmHR(bound_values=64, rng=rng)
        for v in range(200):
            hr.feed_run(v, 1)
        hr.feed_run("tail", 8_800)
        s = hr.finalize()
        s.check_invariants()
        assert s.population_size == 9_000
        assert s.size == 64
        # The tail makes up ~97.8% of the stream; the sample should be
        # dominated by it.
        assert s.histogram.count("tail") > 32


class TestProtocol:
    def test_finalize_twice(self, rng):
        hr = AlgorithmHR(bound_values=4, rng=rng)
        hr.finalize()
        with pytest.raises(ProtocolError):
            hr.finalize()

    def test_feed_after_finalize(self, rng):
        hr = AlgorithmHR(bound_values=4, rng=rng)
        hr.finalize()
        with pytest.raises(ProtocolError):
            hr.feed(1)


class TestResume:
    def test_resume_exhaustive(self, rng):
        hr = AlgorithmHR(bound_values=1000, rng=rng)
        hr.feed_many(list(range(50)))
        s = hr.finalize()
        resumed = AlgorithmHR.resume(s, rng=rng)
        resumed.feed_many(list(range(50, 100)))
        merged = resumed.finalize()
        assert merged.kind is SampleKind.EXHAUSTIVE
        assert sorted(merged.values()) == list(range(100))

    def test_resume_reservoir_continues_uniformly(self, rng):
        """Resume + more data = uniform sample of the whole stream."""
        def sample_fn(values, child):
            mid = len(values) // 2
            hr = AlgorithmHR(bound_values=4, rng=child)
            hr.feed_many(values[:mid])
            resumed = AlgorithmHR.resume(hr.finalize(), rng=child)
            resumed.feed_many(values[mid:])
            return resumed.finalize().values()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(24)), trials=1_500, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()

    def test_resume_rejects_bernoulli(self, rng):
        from repro.core.hybrid_bernoulli import AlgorithmHB

        hb = AlgorithmHB(20_000, bound_values=64, rng=rng)
        hb.feed_many(list(range(20_000)))
        s = hb.finalize()
        with pytest.raises(ConfigurationError):
            AlgorithmHR.resume(s, rng=rng)

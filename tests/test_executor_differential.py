"""Regression: executors must be invisible to sampling results.

Every ``SampleTask`` carries its own seed, so the sample it produces is
a pure function of the task — which executor ran it (serial, thread
pool, process pool) must not matter.  The comparison is byte-identical
``sample_to_dict`` JSON, not statistical agreement: any divergence
means an executor leaked state between tasks or into them.
"""

from __future__ import annotations

import pytest

from repro.testkit import executor_differential
from repro.testkit.differential import serialize_exact
from repro.warehouse.parallel import (ProcessExecutor, SampleTask,
                                      SerialExecutor, ThreadExecutor,
                                      sample_partition)


def _tasks(scheme, *, seeds, sb_rate=None):
    return [SampleTask(values=list(range(400)), scheme=scheme,
                       bound_values=24, sb_rate=sb_rate, seed=seed)
            for seed in seeds]


@pytest.mark.parametrize("scheme,sb_rate", [
    ("hb", None), ("hr", None), ("sb", 0.1)])
def test_all_executors_byte_identical(scheme, sb_rate):
    tasks = _tasks(scheme, seeds=(11, 22, 33), sb_rate=sb_rate)
    failures = executor_differential(tasks, max_workers=2)
    assert failures == [], "\n".join(failures)


def test_thread_pool_matches_serial_directly():
    """Belt-and-braces: compare serializations without the helper."""
    tasks = _tasks("hr", seeds=(5, 6, 7, 8))
    serial = [serialize_exact(s)
              for s in SerialExecutor().map(sample_partition, tasks)]
    threaded = [serialize_exact(s)
                for s in ThreadExecutor(max_workers=4).map(
                    sample_partition, tasks)]
    assert serial == threaded


def test_process_pool_matches_serial_directly():
    tasks = _tasks("hb", seeds=(5, 6))
    serial = [serialize_exact(s)
              for s in SerialExecutor().map(sample_partition, tasks)]
    processed = [serialize_exact(s)
                 for s in ProcessExecutor(max_workers=2).map(
                     sample_partition, tasks)]
    assert serial == processed


def test_same_seed_same_sample_across_task_order():
    """Task position must not leak into results: a permuted task list
    yields the same per-seed samples."""
    tasks = _tasks("hb", seeds=(1, 2, 3))
    straight = SerialExecutor().map(sample_partition, tasks)
    shuffled = SerialExecutor().map(sample_partition, tasks[::-1])
    want = [serialize_exact(s) for s in straight]
    got = [serialize_exact(s) for s in shuffled[::-1]]
    assert want == got


def test_result_count_mismatch_reported(monkeypatch):
    """An executor that drops results is a divergence, not something
    the element-wise comparison may silently ignore."""
    from repro.testkit import differential

    class DroppingExecutor:
        def __init__(self, max_workers):
            self.max_workers = max_workers

        def map(self, fn, tasks):
            return SerialExecutor().map(fn, tasks)[:-1]

    monkeypatch.setattr(differential, "ThreadExecutor",
                        DroppingExecutor)
    tasks = _tasks("hb", seeds=(1, 2, 3))
    failures = differential.executor_differential(tasks, max_workers=2)
    assert any("2 result(s) for 3 task(s)" in f for f in failures)


def test_mixed_scheme_batch_is_stable():
    """One batch mixing all three schemes still agrees everywhere."""
    tasks = (_tasks("hb", seeds=(101,)) + _tasks("hr", seeds=(102,))
             + _tasks("sb", seeds=(103,), sb_rate=0.2))
    failures = executor_differential(tasks, max_workers=3)
    assert failures == [], "\n".join(failures)

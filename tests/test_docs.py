"""Documentation gates: links resolve and docs track the code surface.

Two families of checks keep the docs from rotting:

* **Link checker** — every relative markdown link in ``docs/*.md``,
  ``README.md``, and the other root documents points at a file that
  exists (with fragments stripped), and every backtick reference to a
  repo path (``src/...``, ``tests/...``, ``docs/...``, ``examples/...``,
  ``benchmarks/...``, ``repro/...``) names a real file.
* **Drift gates** — every CLI subcommand is documented (``repro
  <command>`` must appear in the docs), every registered lint rule code
  appears in ``docs/static_analysis.md``, and every ``repro verify``
  check name appears in ``docs/testing.md``.  Adding a command, rule,
  or check without documenting it fails here; so does documenting one
  that no longer exists.

CI runs this file in the ``docs`` job; it is also part of tier-1.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [*(REPO_ROOT / "docs").glob("*.md"),
     REPO_ROOT / "README.md",
     REPO_ROOT / "DESIGN.md",
     REPO_ROOT / "EXPERIMENTS.md"],
    key=lambda p: p.name)
DOC_FILES = [p for p in DOC_FILES if p.exists()]

_MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_PATH_REF = re.compile(
    r"`((?:src|tests|docs|examples|benchmarks|repro)/"
    r"[A-Za-z0-9_./-]+\.[a-z]+)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _doc_text() -> str:
    return "\n".join(p.read_text(encoding="utf-8") for p in DOC_FILES)


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_relative_links_resolve(doc):
    broken = []
    for match in _MD_LINK.finditer(doc.read_text(encoding="utf-8")):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path = (doc.parent / target.split("#", 1)[0]).resolve()
        if not path.exists():
            broken.append(target)
    assert broken == [], f"{doc.name}: broken link target(s): {broken}"


@pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
def test_backtick_path_references_exist(doc):
    stale = []
    for match in _PATH_REF.finditer(doc.read_text(encoding="utf-8")):
        ref = match.group(1)
        # `repro/...` module references are rooted at src/.
        path = REPO_ROOT / (f"src/{ref}" if ref.startswith("repro/")
                            else ref)
        if not path.exists():
            stale.append(ref)
    assert stale == [], f"{doc.name}: stale path reference(s): {stale}"


def test_every_cli_command_documented():
    from repro.cli import build_parser

    parser = build_parser()
    commands = set()
    for action in parser._subparsers._group_actions:
        commands.update(action.choices)
    assert commands, "CLI exposes no subcommands?"
    text = _doc_text()
    undocumented = sorted(c for c in commands
                          if f"repro {c}" not in text)
    assert undocumented == [], \
        f"CLI command(s) missing from docs: {undocumented}"


def test_every_lint_rule_documented():
    from repro.analysis.framework import all_rules

    catalog = (REPO_ROOT / "docs" / "static_analysis.md").read_text(
        encoding="utf-8")
    codes = {rule.code for rule in all_rules()}
    assert codes, "no lint rules registered?"
    missing = sorted(c for c in codes if f"`{c}`" not in catalog)
    assert missing == [], \
        f"lint rule(s) missing from docs/static_analysis.md: {missing}"
    # And the reverse: documented codes must exist (RPR000 is the
    # reserved parse-error code, documented but not a registered rule).
    documented = set(re.findall(r"`(RPR\d{3})`", catalog))
    ghosts = sorted(documented - codes - {"RPR000"})
    assert ghosts == [], \
        f"docs/static_analysis.md documents unregistered rule(s): {ghosts}"


def test_every_verify_check_documented():
    from repro.testkit.checks import default_battery

    testing = (REPO_ROOT / "docs" / "testing.md").read_text(
        encoding="utf-8")
    names = {check.name for check in default_battery().checks()}
    assert names, "battery has no checks?"
    missing = sorted(n for n in names if f"`{n}`" not in testing)
    assert missing == [], \
        f"verify check(s) missing from docs/testing.md: {missing}"

"""Tests for repro.core.stratified_bernoulli (Algorithm SB)."""

from __future__ import annotations

import math

import pytest

from conftest import ALPHA
from repro.core.phases import SampleKind
from repro.core.stratified_bernoulli import AlgorithmSB
from repro.errors import ConfigurationError, ProtocolError
from repro.stats.uniformity import inclusion_frequency_test
from repro.testkit import sweep


class TestConfiguration:
    def test_rate_validation(self, rng):
        with pytest.raises(ConfigurationError):
            AlgorithmSB(0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            AlgorithmSB(1.5, rng=rng)

    def test_nominal_bound_validation(self, rng):
        with pytest.raises(ConfigurationError):
            AlgorithmSB(0.5, nominal_bound=0, rng=rng)


class TestSampling:
    def test_produces_bernoulli_sample(self, rng):
        sb = AlgorithmSB(0.1, rng=rng)
        sb.feed_many(list(range(10_000)))
        s = sb.finalize()
        assert s.kind is SampleKind.BERNOULLI
        assert s.rate == 0.1
        assert s.scheme == "sb"
        assert s.population_size == 10_000

    def test_size_near_expectation(self, rng):
        n, q = 20_000, 0.05
        sb = AlgorithmSB(q, rng=rng)
        sb.feed_many(list(range(n)))
        size = sb.finalize().size
        assert abs(size - n * q) < 5 * math.sqrt(n * q * (1 - q))

    def test_no_bound_enforced(self, rng):
        """SB deliberately has no footprint control."""
        sb = AlgorithmSB(1.0, nominal_bound=10, rng=rng)
        sb.feed_many(list(range(100)))
        s = sb.finalize()
        assert s.size == 100  # far beyond the nominal bound

    def test_per_element_feed(self, rng):
        sb = AlgorithmSB(0.5, rng=rng)
        for v in range(100):
            sb.feed(v)
        assert sb.seen == 100
        assert 20 < sb.sample_size < 80

    def test_uniformity(self, rng):
        def sample_fn(values, child):
            sb = AlgorithmSB(0.3, rng=child)
            sb.feed_many(values)
            return sb.finalize().values()

        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, list(range(30)), trials=1_000, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()


class TestProtocol:
    def test_finalize_twice(self, rng):
        sb = AlgorithmSB(0.5, rng=rng)
        sb.feed(1)
        sb.finalize()
        with pytest.raises(ProtocolError):
            sb.finalize()

    def test_feed_after_finalize(self, rng):
        sb = AlgorithmSB(0.5, rng=rng)
        sb.finalize()
        with pytest.raises(ProtocolError):
            sb.feed(1)

"""Tests for repro.warehouse.maintenance (deletion handling)."""

from __future__ import annotations

import pytest

from conftest import ALPHA
from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.phases import SampleKind
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.stats.uniformity import inclusion_frequency_test
from repro.testkit import sweep
from repro.warehouse.maintenance import (PartitionMaintainer,
                                         apply_deletion, warehouse_delete)
from repro.warehouse.warehouse import SampleWarehouse


def exhaustive_of(values, rng, bound=10_000):
    hr = AlgorithmHR(bound_values=bound, rng=rng)
    hr.feed_many(values)
    s = hr.finalize()
    assert s.kind is SampleKind.EXHAUSTIVE
    return s


def reservoir_of(values, bound, rng):
    hr = AlgorithmHR(bound_values=bound, rng=rng)
    hr.feed_many(values)
    s = hr.finalize()
    assert s.kind is SampleKind.RESERVOIR
    return s


class TestApplyDeletion:
    def test_exhaustive_exact(self, rng):
        s = exhaustive_of([1, 1, 2], rng)
        out = apply_deletion(s, 1, None, rng)
        assert out.population_size == 2
        assert out.histogram.count(1) == 1
        # input untouched
        assert s.histogram.count(1) == 2

    def test_exhaustive_missing_value(self, rng):
        s = exhaustive_of([1, 2], rng)
        with pytest.raises(ConfigurationError):
            apply_deletion(s, 99, None, rng)

    def test_sampled_requires_parent_count(self, rng):
        s = reservoir_of(list(range(10_000)), 64, rng)
        with pytest.raises(ConfigurationError):
            apply_deletion(s, 5, None, rng)

    def test_inconsistent_parent_count(self, rng):
        s = exhaustive_of([1, 1, 2], rng)
        bern = AlgorithmHB(30_000, bound_values=64, rng=rng)
        bern.feed_many([1] * 30_000)
        del s
        sampled = reservoir_of(list(range(10_000)), 64, rng.spawn("x"))
        v = sampled.values()[0]
        with pytest.raises(ConfigurationError):
            apply_deletion(sampled, v, 0, rng)

    def test_population_always_decrements(self, rng):
        s = reservoir_of(list(range(10_000)), 64, rng)
        out = apply_deletion(s, 123456, 1, rng)  # value not in sample
        assert out.population_size == 9_999
        assert out.size == s.size

    def test_membership_coin_statistics(self, rng):
        """P(sample shrinks) must equal c_S(v)/c_D(v)."""
        trials = 2_000
        shrunk = 0
        for t in range(trials):
            child = rng.spawn(t)
            s = reservoir_of(list(range(1_000)), 100, child.spawn("s"))
            v = s.values()[0]  # definitely in the sample, count 1
            out = apply_deletion(s, v, 1, child.spawn("d"))
            shrunk += out.size < s.size
        # c_S = 1, c_D = 1 -> always shrinks.
        assert shrunk == trials

    def test_uniformity_preserved_after_deletions(self, rng):
        """Sample of D minus deletions is uniform over the survivors."""
        population = list(range(30))
        deleted = {0, 1, 2}

        def sample_fn(survivors, child):
            # Build sample over the FULL population, then delete.
            full = list(survivors) + sorted(deleted)
            s = reservoir_of(full, 8, child.spawn("s"))
            for i, v in enumerate(sorted(deleted)):
                s = apply_deletion(s, v, 1, child.spawn("d", i))
            out = s.values()
            assert not (set(out) & deleted)
            return out

        survivors = [v for v in population if v not in deleted]
        result = sweep(
            lambda child: inclusion_frequency_test(
                sample_fn, survivors, trials=1_000, rng=child),
            rng=rng, seeds=3, alpha=ALPHA)
        assert result.accepted, result.describe()


class TestPartitionMaintainer:
    def test_validation(self, rng):
        s = reservoir_of(list(range(1_000)), 32, rng)
        with pytest.raises(ConfigurationError):
            PartitionMaintainer(s, rng=rng, refresh_fraction=0.0)

    def test_attrition_triggers_refresh(self, rng):
        s = reservoir_of(list(range(1_000)), 32, rng.spawn("s"))
        m = PartitionMaintainer(s, rng=rng.spawn("m"),
                                refresh_fraction=0.9)
        # Delete sampled values until the flag trips.
        steps = 0
        while not m.needs_refresh and steps < 500:
            values = m.sample.values()
            if not values:
                break
            m.delete(values[0], parent_count=1)
            steps += 1
        assert m.needs_refresh
        assert m.deletions_applied == steps

    def test_exhaustive_never_needs_refresh(self, rng):
        s = exhaustive_of(list(range(100)), rng)
        m = PartitionMaintainer(s, rng=rng)
        for v in range(50):
            m.delete(v)
        assert not m.needs_refresh
        assert m.sample.population_size == 50


class TestWarehouseDelete:
    def test_in_place_update(self):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(13))
        keys = wh.ingest_batch("d", list(range(10_000)), partitions=1)
        key = keys[0]
        sample = wh.sample_for(key)
        victim = sample.values()[0]
        warehouse_delete(wh, key, victim, parent_count=1)
        updated = wh.sample_for(key)
        assert updated.population_size == 9_999
        assert wh.catalog.get(key).population_size == 9_999
        assert wh.sample_of("d").population_size == 9_999

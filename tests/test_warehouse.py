"""Tests for repro.warehouse.warehouse (the SampleWarehouse facade)."""

from __future__ import annotations

import pytest

from repro.core.phases import SampleKind
from repro.errors import ConfigurationError, PartitionNotFoundError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.parallel import ProcessExecutor, ThreadExecutor
from repro.warehouse.storage import FileStore
from repro.warehouse.warehouse import SampleWarehouse


def make_warehouse(seed=11, **kwargs):
    kwargs.setdefault("bound_values", 128)
    return SampleWarehouse(rng=SplittableRng(seed), **kwargs)


class TestIngestBatch:
    def test_partitions_and_keys(self):
        wh = make_warehouse()
        keys = wh.ingest_batch("t.c", list(range(10_000)), partitions=4)
        assert keys == [PartitionKey("t.c", 0, i) for i in range(4)]
        assert wh.datasets() == ["t.c"]
        assert wh.catalog.total_population("t.c") == 10_000

    def test_sequential_loads_extend_seq(self):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(1000)), partitions=2)
        keys = wh.ingest_batch("d", list(range(1000)), partitions=2)
        assert [k.seq for k in keys] == [2, 3]

    def test_labels(self):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(200)), partitions=2,
                        labels=["mon", "tue"])
        metas = wh.catalog.partitions("d")
        assert [m.label for m in metas] == ["mon", "tue"]

    def test_label_count_mismatch(self):
        wh = make_warehouse()
        with pytest.raises(ConfigurationError):
            wh.ingest_batch("d", list(range(10)), partitions=2,
                            labels=["only-one"])

    def test_scheme_override(self):
        wh = make_warehouse(scheme="hr")
        keys = wh.ingest_batch("d", list(range(50_000)), partitions=1,
                               scheme="hb")
        assert wh.sample_for(keys[0]).scheme == "hb"

    def test_deterministic_given_seed(self):
        a = make_warehouse(seed=5)
        b = make_warehouse(seed=5)
        ka = a.ingest_batch("d", list(range(5000)), partitions=2)
        kb = b.ingest_batch("d", list(range(5000)), partitions=2)
        for x, y in zip(ka, kb):
            assert a.sample_for(x).histogram == b.sample_for(y).histogram

    def test_executors_equivalent_to_serial(self):
        results = {}
        for name, executor in (("serial", None),
                               ("thread", ThreadExecutor(4)),
                               ("process", ProcessExecutor(2))):
            wh = make_warehouse(seed=9)
            keys = wh.ingest_batch("d", list(range(8000)), partitions=4,
                                   executor=executor)
            results[name] = [dict(wh.sample_for(k).histogram.pairs())
                             for k in keys]
        assert results["serial"] == results["thread"] == results["process"]


class TestSampleOf:
    def test_merged_sample_covers_everything(self):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(20_000)), partitions=8)
        s = wh.sample_of("d")
        s.check_invariants()
        assert s.population_size == 20_000
        assert set(s.values()) <= set(range(20_000))

    def test_subset_by_keys(self):
        wh = make_warehouse()
        keys = wh.ingest_batch("d", list(range(8000)), partitions=4)
        s = wh.sample_of("d", keys=keys[:2])
        assert s.population_size == 4000

    def test_subset_by_labels(self):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(9000)), partitions=3,
                        labels=["a", "b", "a"])
        s = wh.sample_of("d", labels=["a"])
        assert s.population_size == 6000

    def test_keys_and_labels_mutually_exclusive(self):
        wh = make_warehouse()
        keys = wh.ingest_batch("d", list(range(100)))
        with pytest.raises(ConfigurationError):
            wh.sample_of("d", keys=keys, labels=["x"])

    def test_empty_selection(self):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(100)))
        with pytest.raises(ConfigurationError):
            wh.sample_of("d", keys=[])

    def test_balanced_mode(self):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(16_000)), partitions=8)
        s = wh.sample_of("d", mode="balanced")
        assert s.population_size == 16_000


class TestRollInOut:
    def test_roll_out_excludes_from_sample(self):
        wh = make_warehouse()
        keys = wh.ingest_batch("d", list(range(8000)), partitions=4)
        wh.roll_out(keys[0])
        s = wh.sample_of("d")
        assert s.population_size == 6000

    def test_roll_out_drop_then_roll_in_requires_sample(self):
        wh = make_warehouse()
        keys = wh.ingest_batch("d", list(range(4000)), partitions=2)
        sample = wh.sample_for(keys[0])
        wh.roll_out(keys[0], drop_sample=True)
        with pytest.raises(PartitionNotFoundError):
            wh.sample_for(keys[0])
        with pytest.raises(ConfigurationError):
            wh.roll_in(keys[0])
        wh.roll_in(keys[0], sample)
        assert wh.sample_of("d").population_size == 4000

    def test_roll_in_without_drop(self):
        wh = make_warehouse()
        keys = wh.ingest_batch("d", list(range(4000)), partitions=2)
        wh.roll_out(keys[1])
        wh.roll_in(keys[1])
        assert wh.sample_of("d").population_size == 4000


class TestIngestSample:
    def test_foreign_sample_rolls_in(self):
        """A sample produced elsewhere (another machine) can be added."""
        donor = make_warehouse(seed=77)
        keys = donor.ingest_batch("d", list(range(5000)), partitions=1)
        foreign = donor.sample_for(keys[0])

        wh = make_warehouse()
        wh.ingest_sample(PartitionKey("d", 3, 0), foreign, label="remote")
        assert wh.catalog.get(PartitionKey("d", 3, 0)).label == "remote"
        assert wh.sample_of("d").population_size == 5000


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        wh = make_warehouse()
        wh.ingest_batch("d", list(range(10_000)), partitions=4,
                        labels=["a", "b", "c", "d"])
        wh.roll_out(PartitionKey("d", 0, 3))
        wh.save(str(tmp_path))

        reopened = SampleWarehouse.load(str(tmp_path),
                                        rng=SplittableRng(1),
                                        bound_values=128)
        assert reopened.datasets() == ["d"]
        assert len(reopened.partition_keys("d")) == 3  # one rolled out
        s = reopened.sample_of("d")
        assert s.population_size == 7_500

    def test_save_with_file_store_in_place(self, tmp_path):
        wh = SampleWarehouse(bound_values=64, rng=SplittableRng(2),
                             store=FileStore(str(tmp_path)))
        wh.ingest_batch("d", list(range(1000)), partitions=2)
        wh.save(str(tmp_path))
        reopened = SampleWarehouse.load(str(tmp_path), bound_values=64)
        assert reopened.sample_of("d").population_size == 1000


class TestValidation:
    def test_bound_positive(self):
        with pytest.raises(ConfigurationError):
            SampleWarehouse(bound_values=0)

"""Regenerate the paper's figures as ASCII charts, quickly.

A fast, scaled-down version of the benchmark suite that *draws* each
figure in the terminal.  For the asserted, table-form reproduction run
``pytest benchmarks/ --benchmark-only -s`` instead.

Run:  python examples/reproduce_figures.py
"""

from repro.bench.ascii_chart import line_chart, stacked_bar_chart
from repro.bench.experiments import (fig05_qapprox, sample_size_experiment,
                                     scaleup_experiment, speedup_experiment)
from repro.rng import SplittableRng

rng = SplittableRng(20060403)

POP = 2 ** 16           # speedup population (paper: 2^26)
PARTS = (1, 2, 4, 8, 16, 32, 64)
BOUND = 1024            # n_F (paper: 8192); partition/bound ratio kept
PSIZE = 4 * BOUND       # scaleup/sizes partition size (paper: 32K)

# ----------------------------------------------------------------------
# Figure 5 — eq. (1) approximation error.
# ----------------------------------------------------------------------
rows = fig05_qapprox()
series = {}
for p, bound, _qe, _qa, err in rows:
    series.setdefault(f"n_F={bound}", []).append((p, max(err, 1e-4)))
print(line_chart(series, title="Figure 5: relative error (%) of eq. (1) "
                               "vs exceedance p (N = 1e5)", logy=True,
                 height=12))
print(f"\nmax error: {max(r[4] for r in rows):.3f}%  "
      f"(paper annotates 2.765%)\n")

# ----------------------------------------------------------------------
# Figures 9-11 — speedup bars (light = sample, dark = merge).
# ----------------------------------------------------------------------
for fig, scheme in (("Figure 9", "sb"), ("Figure 10", "hb"),
                    ("Figure 11", "hr")):
    rows = speedup_experiment(scheme, population=POP,
                              partition_counts=PARTS,
                              bound_values=BOUND,
                              rng=rng.spawn("speed", scheme), repeats=1)
    bars = [(f"{parts}p", sample_s, merge_s)
            for parts, sample_s, merge_s, _tot in rows]
    print(stacked_bar_chart(
        bars, width=44,
        title=f"{fig}: Algorithm {scheme.upper()} speedup "
              f"(seconds, N = 2^16)"))
    print()

# ----------------------------------------------------------------------
# Figures 12-14 — scaleup lines (log seconds).
# ----------------------------------------------------------------------
for fig, scheme in (("Figure 12", "sb"), ("Figure 13", "hb"),
                    ("Figure 14", "hr")):
    rows = scaleup_experiment(scheme, partition_size=PSIZE,
                              scale_factors=(2, 4, 8, 16),
                              bound_values=BOUND,
                              rng=rng.spawn("scale", scheme), repeats=1)
    series = {}
    for scale, dist, secs in rows:
        series.setdefault(dist, []).append((scale, max(secs, 1e-6)))
    print(line_chart(series, logy=True, height=10, width=50,
                     title=f"{fig}: Algorithm {scheme.upper()} scaleup "
                           f"(seconds vs scale factor)"))
    print()

# ----------------------------------------------------------------------
# Figures 15-16 — merged sample sizes.
# ----------------------------------------------------------------------
for fig, scheme, ps in (("Figure 15", "hb", (0.001, 0.00001)),
                        ("Figure 16", "hr", (0.001,))):
    rows = sample_size_experiment(scheme, partition_size=PSIZE,
                                  partition_counts=(1, 2, 4, 8, 16),
                                  bound_values=BOUND,
                                  rng=rng.spawn("sizes", scheme),
                                  p_values=ps, repeats=2)
    series = {}
    for parts, dist, p, mean_size, _cv in rows:
        name = f"{dist}" + (f" p={p:g}" if scheme == "hb" else "")
        series.setdefault(name, []).append((parts, mean_size))
    series["bound n_F"] = [(1, BOUND), (16, BOUND)]
    print(line_chart(series, height=10, width=50,
                     title=f"{fig}: Algorithm {scheme.upper()} merged "
                           f"sample size vs partitions"))
    print()

print("shapes to check against the paper: SB fastest with the "
      "right-most optimum; U-shaped totals; ~linear scaleup with "
      "zipfian cheapest; HB sizes below the bound and p-insensitive; "
      "HR sizes pinned at the bound.")

"""Observability quickstart: capture metrics and a trace of an ingest.

Run:  python examples/observability.py

The docstring examples below are executed by the test suite
(``tests/test_doctests.py``), so this quickstart cannot rot.  They
assert on *counters*, which are deterministic under a fixed seed;
timings and span durations vary run to run and are never asserted
(see ``docs/determinism.md``).
"""

from repro import MetricsRegistry, SampleWarehouse, SplittableRng, capture


def instrumented_ingest(partitions=10, size=20_000, bound=256, seed=2006):
    """Ingest ``size`` values into HB partitions under ``capture``.

    Returns ``(merged_sample, registry, ring)`` — the merged sample of
    the whole dataset, the metrics registry, and the ring-buffer span
    sink.

    Examples
    --------
    Every one of the ten samplers overflows phase 1 (2 000 values
    against a bound of 256) and crosses into the Bernoulli phase; nine
    pairwise merges fold the ten partition samples into one:

    >>> merged, registry, ring = instrumented_ingest()
    >>> snap = registry.snapshot()
    >>> snap["hb.phase2.enter"]["value"]
    10
    >>> snap["hb.arrivals"]["value"]
    20000
    >>> snap["merge.hb"]["value"]
    9
    >>> snap["ingest.batch.partitions"]["value"]
    10
    >>> snap["parallel.task.seconds.serial"]["count"]
    10

    The trace nests the per-sampler phase transitions under the batch
    ingest, and the pairwise merges under the merge-on-demand call:

    >>> names = [s.name for s in ring.spans]
    >>> names.count("hb.phase2")
    10
    >>> names.count("merge.hb")
    9
    >>> by_name = {s.name: s for s in ring.spans}
    >>> tree = by_name["merge.tree"]
    >>> tree.parent_id == by_name["warehouse.sample_of"].span_id
    True

    Outside the ``capture`` block, observability is off again and the
    merged sample is a normal, fully deterministic sample:

    >>> from repro.obs.runtime import OBS
    >>> OBS.enabled
    False
    >>> merged.population_size
    20000
    """
    registry = MetricsRegistry()
    with capture(registry) as (_, ring):
        wh = SampleWarehouse(bound_values=bound, scheme="hb",
                             rng=SplittableRng(seed))
        wh.ingest_batch("obs.demo", list(range(size)),
                        partitions=partitions)
        merged = wh.sample_of("obs.demo")
    return merged, registry, ring


if __name__ == "__main__":
    merged, registry, ring = instrumented_ingest()
    print(f"merged: {merged.kind.name} sample of "
          f"{merged.size}/{merged.population_size} values")
    print()
    print(registry.report())
    print()
    print("trace (nested spans):")
    print(ring.render())

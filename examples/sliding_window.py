"""Approximating moving-window stream sampling with partition roll-in/out.

"As new daily samples are rolled in and old daily samples are rolled
out, the system would approximate stream sampling algorithms such as
those described in [1, 11], but with support for parallel processing."

Run:  python examples/sliding_window.py
"""

from repro import SplittableRng
from repro.analytics.estimators import estimate_avg
from repro.warehouse.window import SlidingWindowSampler

SEED = 555
PARTITION = 5_000     # elements per hop
WINDOW = 6            # keep the 6 most recent partitions
STREAM_LEN = 60_000

rng = SplittableRng(SEED)

window = SlidingWindowSampler(
    partition_size=PARTITION,
    window_partitions=WINDOW,
    bound_values=256,
    scheme="hr",
    rng=rng)

# A drifting signal: the stream's mean rises over time, so a window
# sample should track the *recent* mean, not the all-time mean.
def value_at(i: int) -> float:
    return (i // 10_000) * 100 + (i * 31) % 50

for i in range(STREAM_LEN):
    window.feed(value_at(i))
    if (i + 1) % 15_000 == 0:
        s = window.window_sample()
        est = estimate_avg(s)
        lo = max(0, (i + 1) - WINDOW * PARTITION)
        true_mean = sum(value_at(j) for j in range(lo, i + 1 - (i + 1) %
                                                   PARTITION)) \
            / max(1, (i + 1 - (i + 1) % PARTITION) - lo)
        print(f"t={i+1:>6,}: window covers {s.population_size:,} recent "
              f"elements; AVG ~ {est.value:7.1f} "
              f"(recent truth ~ {true_mean:7.1f})")

print(f"\npartitions evicted over the run: {window.evicted_partitions}")
print("the sample follows the drift because old partitions roll out.")

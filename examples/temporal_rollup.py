"""Daily partitions rolled up to weekly and monthly samples (Section 2).

"It may be desirable to further partition the incoming data stream
temporally, e.g., one partition per day, and then combine daily samples
to form weekly, monthly, or yearly samples as needed."

Run:  python examples/temporal_rollup.py
"""

from repro import SampleWarehouse, SplittableRng
from repro.analytics.estimators import estimate_count
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.rollup import temporal_rollup
from repro.workloads.generators import ZipfGenerator

DAYS = 28
ROWS_PER_DAY = 10_000
SEED = 314

rng = SplittableRng(SEED)
gen = ZipfGenerator(value_range=2_000)

wh = SampleWarehouse(bound_values=1024, scheme="hr", rng=rng.spawn("wh"))

# One partition per day for four weeks.
for day in range(DAYS):
    values = gen.generate(ROWS_PER_DAY, rng.spawn("day", day))
    wh.ingest_batch("pageviews.url", values, labels=[f"2026-06-{day+1:02d}"])

print(f"{DAYS} daily partitions ingested "
      f"({DAYS * ROWS_PER_DAY:,} rows total)")

# ----------------------------------------------------------------------
# Weekly rollups: 7 dailies -> 1 weekly sample.
# ----------------------------------------------------------------------
weekly = temporal_rollup(wh, "pageviews.url", window=7,
                         rng=rng.spawn("weekly"))
for name in sorted(weekly):
    s = weekly[name]
    print(f"  weekly {name}: {s.size} sampled of "
          f"{s.population_size:,} ({s.kind.name})")

# Register the weeklies as a derived dataset so they can be reused.
for i, name in enumerate(sorted(weekly)):
    wh.ingest_sample(PartitionKey("pageviews.url.weekly", 0, i),
                     weekly[name], label=name)

# ----------------------------------------------------------------------
# Monthly sample: merge the weeklies (merging is composable).
# ----------------------------------------------------------------------
monthly = wh.sample_of("pageviews.url.weekly")
est = estimate_count(monthly)
print(f"monthly sample: {monthly.size} of {monthly.population_size:,}")
print(f"COUNT(month) ~ {est.value:,.0f} "
      f"(truth: {DAYS * ROWS_PER_DAY:,})")

# ----------------------------------------------------------------------
# Ad hoc unions: any subset of days merges into a uniform sample.
# ----------------------------------------------------------------------
fortnight = wh.sample_of(
    "pageviews.url",
    labels=[f"2026-06-{d:02d}" for d in range(1, 15)])
print(f"first fortnight: {fortnight.size} sampled of "
      f"{fortnight.population_size:,}")

"""Section 2's second scenario: a stream too fast for one machine.

The incoming stream is split round-robin over several "machines" (stream
ingestors).  Each machine samples its substream independently with
adaptive partitioning — the FractionPolicy finalizes a partition whenever
the realized sampling fraction hits a floor, which keeps per-partition
samples representative even when the arrival rate fluctuates.  Samples
are merged on demand.

Run:  python examples/stream_split.py
"""

from repro import SampleWarehouse, SplittableRng
from repro.analytics.estimators import estimate_avg
from repro.stream.source import FluctuatingStream
from repro.stream.splitter import RoundRobinSplitter
from repro.warehouse.ingest import FractionPolicy

MACHINES = 4
ARRIVALS = 120_000
SEED = 1927

rng = SplittableRng(SEED)

wh = SampleWarehouse(bound_values=512, scheme="hr", rng=rng.spawn("wh"))

# One ingestor per machine; partitions cut adaptively when the sample
# drops to 1/16 of the observed parent data.
ingestors = [
    wh.open_stream("ticks.price", policy=FractionPolicy(1 / 16), stream=m,
                   label_fn=lambda seq: f"chunk-{seq}")
    for m in range(MACHINES)
]
splitter = RoundRobinSplitter([ing.feed for ing in ingestors])

# A synthetic stream whose arrival rate swings +/-80% over time; values
# simulate tick prices in cents around 50,000 (high cardinality, so the
# per-partition samples cannot stay exhaustive).
source = FluctuatingStream(
    value_fn=lambda i: 40_000 + (i * 7919) % 20_000,
    base_rate=100.0, amplitude=0.8, period=10_000.0,
    rng=rng.spawn("source"))

for _timestamp, value in source.take(ARRIVALS):
    splitter.feed(value)

for ing in ingestors:
    ing.close()

print(f"{ARRIVALS:,} arrivals split over {MACHINES} machines")
for m in range(MACHINES):
    keys = [k for k in wh.partition_keys("ticks.price") if k.stream == m]
    sizes = [wh.catalog.get(k).population_size for k in keys]
    print(f"  machine {m}: {len(keys)} partitions, "
          f"parent sizes {min(sizes)}..{max(sizes)}")

# Merge everything into one uniform sample of the entire stream.
merged = wh.sample_of("ticks.price")
merged.check_invariants()
est = estimate_avg(merged)
print(f"merged sample: {merged.size} of {merged.population_size:,} "
      f"elements ({merged.kind.name})")
print(f"AVG(price) ~ {est.value:,.0f} "
      f"[{est.ci_low:,.0f}, {est.ci_high:,.0f}] "
      f"(population mean ~ 50,000)")

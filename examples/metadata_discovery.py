"""Automated metadata discovery over the sample warehouse.

The paper's introduction motivates sample warehousing with data
integration: systems like BHUNT [3] and CORDS [15] mine join candidates
and correlations from samples.  This example profiles several columns
from their warehouse samples and ranks candidate relationships —
without ever touching the "full-scale" data again.

Run:  python examples/metadata_discovery.py
"""

from repro import SampleWarehouse, SplittableRng
from repro.analytics.metadata import column_profile, discover_candidates
from repro.workloads.retail import RetailWorkload

SEED = 777
rng = SplittableRng(SEED)

wh = SampleWarehouse(bound_values=2048, scheme="hr", rng=rng)

# A small star schema with real relationships: orders.customer_id is a
# foreign key into customers.id (with Zipf-skewed customer activity),
# lineitem.order_id references orders.id, products.price is unrelated.
workload = RetailWorkload(customers=20_000, orders=80_000,
                          lineitems=160_000, products=40_000)
workload.ingest_into(wh, SplittableRng(SEED + 1), partitions=2)

# ----------------------------------------------------------------------
# Column profiles: distinct-value estimates + uniqueness from samples.
# ----------------------------------------------------------------------
print("column profiles (from samples only):")
for dataset in wh.datasets():
    sample = wh.sample_of(dataset)
    profile = column_profile(dataset, sample)
    key_flag = "KEY?" if profile.looks_like_key(threshold=0.8) else "    "
    print(f"  {dataset:22s} {key_flag} "
          f"|D|={profile.population_size:>7,} "
          f"d_sample={profile.distinct_in_sample:>5} "
          f"chao~{profile.distinct_chao:>9,.0f} "
          f"gee~{profile.distinct_gee:>9,.0f}")

# ----------------------------------------------------------------------
# Relationship discovery: rank candidate joins by sampled overlap.
# ----------------------------------------------------------------------
print("\ntop relationship candidates:")
for cand in discover_candidates(wh, top=4):
    print(f"  {cand.left:22s} <-> {cand.right:22s} "
          f"jaccard={cand.jaccard:.3f} "
          f"containment={cand.containment_lr:.3f}/"
          f"{cand.containment_rl:.3f}")

truths = {frozenset(pair) for pair in workload.foreign_keys()}
top_two = {frozenset((c.left, c.right))
           for c in discover_candidates(wh, top=2)}
verdict = "FOUND" if top_two == truths else "MISSED"
print(f"\nground truth ({verdict}): orders.customer_id -> customers.id "
      f"and lineitem.order_id -> orders.id")

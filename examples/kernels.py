"""Kernel-backend quickstart: pick a backend, batch-draw, time a merge.

Run:  python examples/kernels.py

The randomness-consuming inner loops (eq. (3) pmf, hypergeometric
draws, the Fig. 3/4 purges) run on a **kernel backend** — vectorized
numpy when installed (``pip install repro[perf]``), a byte-stable
pure-Python reference otherwise.  See ``docs/performance.md`` for the
selection rules and ``docs/determinism.md`` for what is (and is not)
byte-identical across backends.

The docstring examples below are executed by the test suite
(``tests/test_doctests.py``), so this quickstart cannot rot.  They pin
the ``python`` backend wherever exact draw values are asserted, so
they pass on any interpreter, with or without numpy, under any
``REPRO_KERNEL_BACKEND`` setting; timings are printed by ``__main__``
only and never asserted.
"""

from repro import SplittableRng
from repro.kernels import (active_backend, available_backends,
                           draw_hypergeometric_batch, hypergeometric_pmf,
                           use_backend)


def backend_tour():
    """The selection surface in one place.

    Examples
    --------
    The pure-Python reference is always available, and whatever was
    selected at import (``REPRO_KERNEL_BACKEND``, default ``auto``) is
    one of the available backends:

    >>> "python" in available_backends()
    True
    >>> active_backend() in available_backends()
    True

    The eq. (3) pmf is the same *law* on every backend — a merge of
    two 2-element SRSs splits its draw 1/6 : 4/6 : 1/6:

    >>> [round(p, 4) for p in hypergeometric_pmf(2, 2, 2)]
    [0.1667, 0.6667, 0.1667]

    Exact draw *bytes* are a per-backend contract.  Pinning a backend
    with ``use_backend`` makes them reproducible anywhere:

    >>> with use_backend("python"):
    ...     draws = draw_hypergeometric_batch(40, 60, 12,
    ...                                       SplittableRng(7), 8)
    >>> draws
    [4, 3, 5, 3, 5, 4, 2, 5]
    >>> with use_backend("python"):
    ...     draws == draw_hypergeometric_batch(40, 60, 12,
    ...                                        SplittableRng(7), 8)
    True
    """
    return active_backend()


def timed_merge(partitions=8, values_per=4_000, bound=512, seed=2006):
    """Time one merge tree serial vs parallel on the active backend.

    Returns ``(serial_seconds, parallel_seconds, identical)`` where
    ``identical`` is the byte-equality of the two merged samples —
    the tree-shape-independence guarantee, which must hold on every
    backend, executor, and worker count.

    Examples
    --------
    >>> serial_s, parallel_s, identical = timed_merge(partitions=4,
    ...                                               values_per=500,
    ...                                               bound=64)
    >>> identical
    True
    >>> serial_s > 0 and parallel_s > 0
    True
    """
    from repro.bench.timing import wall_timer
    from repro.core.merge import merge_tree
    from repro.warehouse.parallel import (SampleTask, ThreadExecutor,
                                          sample_partition)
    from repro.warehouse.storage import sample_to_dict

    rng = SplittableRng(seed)
    data_rng = rng.spawn("data")
    samples = [
        sample_partition(SampleTask(
            values=[data_rng.randrange(100_000)
                    for _ in range(values_per)],
            scheme="hr", bound_values=bound,
            seed=rng.spawn("part", i).seed_value))
        for i in range(partitions)
    ]

    with wall_timer() as t_serial:
        serial = merge_tree(samples, rng=rng, mode="serial")
    with ThreadExecutor(max_workers=4) as executor:
        with wall_timer() as t_parallel:
            parallel = merge_tree(samples, rng=rng, mode="parallel",
                                  executor=executor)
    identical = sample_to_dict(serial) == sample_to_dict(parallel)
    return t_serial.seconds, t_parallel.seconds, identical


def main():
    print(f"available backends: {', '.join(available_backends())}")
    print(f"active backend:     {backend_tour()}")
    for backend in available_backends():
        with use_backend(backend):
            serial_s, parallel_s, identical = timed_merge()
            print(f"[{backend:>6}] merge_tree 8x4000 serial "
                  f"{serial_s * 1e3:7.2f} ms | parallel[4] "
                  f"{parallel_s * 1e3:7.2f} ms | byte-identical: "
                  f"{identical}")
    print("(see docs/performance.md before reading anything into "
          "single-run timings)")


if __name__ == "__main__":
    main()

"""Quickstart: sample a data set, merge partitions, run estimates.

Run:  python examples/quickstart.py
"""

from repro import (AlgorithmHB, AlgorithmHR, SampleWarehouse, SplittableRng,
                   hr_merge)
from repro.analytics.estimators import estimate_avg, estimate_count

rng = SplittableRng(42)

# ----------------------------------------------------------------------
# 1. A single bounded-footprint sample (Algorithm HR: no a-priori size).
# ----------------------------------------------------------------------
hr = AlgorithmHR(bound_values=1024, rng=rng.spawn("hr"))
hr.feed_many(list(range(1_000_000)))
sample = hr.finalize()
print(f"HR sample: kind={sample.kind.name}, size={sample.size}, "
      f"population={sample.population_size}, "
      f"footprint={sample.footprint_bytes} bytes "
      f"(bound {sample.bound_bytes})")

# ----------------------------------------------------------------------
# 2. Algorithm HB when the partition size is known a priori.
# ----------------------------------------------------------------------
hb = AlgorithmHB(1_000_000, bound_values=1024, rng=rng.spawn("hb"))
hb.feed_many(list(range(1_000_000)))
hb_sample = hb.finalize()
print(f"HB sample: kind={hb_sample.kind.name}, size={hb_sample.size}, "
      f"rate={hb_sample.rate:.2e}")

# ----------------------------------------------------------------------
# 3. Merging two partition samples into one uniform sample (Theorem 1).
# ----------------------------------------------------------------------
hr2 = AlgorithmHR(bound_values=1024, rng=rng.spawn("hr2"))
hr2.feed_many(list(range(1_000_000, 1_500_000)))
merged = hr_merge(sample, hr2.finalize(), rng=rng.spawn("merge"))
print(f"merged:    kind={merged.kind.name}, size={merged.size}, "
      f"population={merged.population_size}")

# ----------------------------------------------------------------------
# 4. The warehouse facade: parallel batch ingest + analytics.
# ----------------------------------------------------------------------
wh = SampleWarehouse(bound_values=1024, scheme="hr",
                     rng=SplittableRng(7))
wh.ingest_batch("orders.amount", list(range(200_000)), partitions=8)
s = wh.sample_of("orders.amount")

count = estimate_count(s)
avg = estimate_avg(s)
print(f"COUNT(*) ~ {count.value:,.0f}  "
      f"[{count.ci_low:,.0f}, {count.ci_high:,.0f}]  (truth: 200,000)")
print(f"AVG(amount) ~ {avg.value:,.1f}  "
      f"[{avg.ci_low:,.1f}, {avg.ci_high:,.1f}]  (truth: 99,999.5)")

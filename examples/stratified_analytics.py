"""Extended sampling designs (Section 6 future work, implemented).

1. **Stratified** — keep per-partition samples separate and weight by
   known partition sizes: tighter intervals whenever partition means
   differ (here: temporal drift across daily partitions).
2. **Weighted (biased)** — A-Res weighted reservoir sampling, where
   selection probability follows a weight (e.g. order value), with exact
   sample merging.
3. **Systematic** — every k-th record from a random start, for audit
   workloads.

Run:  python examples/stratified_analytics.py
"""

from repro import SampleWarehouse, SplittableRng
from repro.analytics.estimators import estimate_avg
from repro.sampling.systematic import SystematicSampler
from repro.sampling.weighted import (WeightedReservoirSampler,
                                     merge_weighted)

SEED = 606
rng = SplittableRng(SEED)
data_rng = SplittableRng(SEED + 1)

# ----------------------------------------------------------------------
# 1. Stratified vs merged estimation under temporal drift.
# ----------------------------------------------------------------------
wh = SampleWarehouse(bound_values=256, scheme="hr", rng=rng.spawn("wh"))
DAYS, PER_DAY = 6, 20_000
truth_total = 0.0
for day in range(DAYS):
    base = day * 100_000  # revenue drifts upward day over day
    values = [base + data_rng.randrange(50_000) for _ in range(PER_DAY)]
    truth_total += sum(values)
    wh.ingest_batch("revenue", values, labels=[f"day-{day}"])
truth_mean = truth_total / (DAYS * PER_DAY)

merged_est = estimate_avg(wh.sample_of("revenue"))
stratified_est = wh.stratified_sample_of("revenue").estimate_avg()

print("AVG(revenue) under day-over-day drift "
      f"(truth {truth_mean:,.1f}):")
print(f"  merged uniform sample:  {merged_est.value:8,.1f}  "
      f"± {merged_est.half_width:7,.1f}")
print(f"  stratified by day:      {stratified_est.value:8,.1f}  "
      f"± {stratified_est.half_width:7,.1f}")
shrink = merged_est.half_width / max(stratified_est.half_width, 1e-12)
print(f"  interval shrink factor: {shrink:.1f}x\n")

# ----------------------------------------------------------------------
# 2. Weighted reservoir sampling: big orders matter more.
# ----------------------------------------------------------------------
machine_a = WeightedReservoirSampler(12, rng.spawn("wa"))
machine_b = WeightedReservoirSampler(12, rng.spawn("wb"))
for i in range(50_000):
    order_value = 10.0 if i % 1000 else 50_000.0  # rare whale orders
    target = machine_a if i % 2 == 0 else machine_b
    target.feed(f"order-{i}", weight=order_value)

merged = merge_weighted(machine_a, machine_b)
whales = [v for v in merged if int(v.split("-")[1]) % 1000 == 0]
print(f"weighted sample of 50,000 orders (12+12 -> 12 merged): "
      f"{len(whales)}/12 are whale orders")
print("  (whales are 0.1% of orders but ~83% of total value)\n")

# ----------------------------------------------------------------------
# 3. Systematic sampling for audits: every 1000th record.
# ----------------------------------------------------------------------
audit = SystematicSampler(1000, rng.spawn("audit"))
audit.feed_many(range(250_000))
print(f"systematic audit sample: {len(audit.sample)} records, "
      f"start offset {audit.start}, fixed stride 1000")
ws = audit.to_sample()
print(f"packaged for the warehouse as a {ws.kind.name} sample of "
      f"{ws.size}/{ws.population_size}")

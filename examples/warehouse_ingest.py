"""Section 2's first warehousing scenario, end to end.

An initial batch from an operational system is bulk-loaded and sampled in
parallel; smaller daily update batches follow; old days are periodically
rolled out.  Approximate analytics run against the sample warehouse at
every step.

Run:  python examples/warehouse_ingest.py
"""

from repro import SampleWarehouse, SplittableRng
from repro.analytics.aqp import ApproximateQueryEngine
from repro.warehouse.parallel import ProcessExecutor
from repro.workloads.generators import UniformGenerator

SEED = 2006
BULK_SIZE = 400_000
DAILY_SIZE = 20_000
DAYS = 7

rng = SplittableRng(SEED)
gen = UniformGenerator(value_range=50_000)

wh = SampleWarehouse(bound_values=2048, scheme="hr",
                     rng=rng.spawn("warehouse"))

# ----------------------------------------------------------------------
# Bulk load, sampled in parallel across 8 partitions / worker processes.
# ----------------------------------------------------------------------
bulk = gen.generate(BULK_SIZE, rng.spawn("bulk"))
keys = wh.ingest_batch("fact.amount", bulk, partitions=8,
                       executor=ProcessExecutor(4),
                       labels=[f"bulk-{i}" for i in range(8)])
print(f"bulk load: {BULK_SIZE:,} rows -> {len(keys)} partition samples")

engine = ApproximateQueryEngine(wh)
print("after bulk:", engine.sampling_summary("fact.amount"))

# ----------------------------------------------------------------------
# Daily deltas roll in; analytics stay fresh.
# ----------------------------------------------------------------------
for day in range(DAYS):
    delta = gen.generate(DAILY_SIZE, rng.spawn("day", day))
    wh.ingest_batch("fact.amount", delta, labels=[f"day-{day}"])
    engine.invalidate()
    est = engine.count("fact.amount")
    print(f"day {day}: COUNT ~ {est.value:,.0f} "
          f"[{est.ci_low:,.0f}, {est.ci_high:,.0f}]")

# ----------------------------------------------------------------------
# Aging: roll the two oldest days out of the active working set.
# ----------------------------------------------------------------------
for label in ("day-0", "day-1"):
    for key in wh.partition_keys("fact.amount"):
        if wh.catalog.get(key).label == label:
            wh.roll_out(key)
engine.invalidate()
est = engine.count("fact.amount")
expected = BULK_SIZE + (DAYS - 2) * DAILY_SIZE
print(f"after roll-out: COUNT ~ {est.value:,.0f} "
      f"(active truth: {expected:,})")

# Queries scoped to a temporal slice use labels.
est = engine.count("fact.amount", labels=[f"day-{d}" for d in range(2, 7)])
print(f"days 2-6 only: COUNT ~ {est.value:,.0f} "
      f"(truth: {5 * DAILY_SIZE:,})")

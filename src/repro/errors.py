"""Exception hierarchy for the :mod:`repro` sample-warehousing library.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  More specific subclasses exist for the failure modes a
downstream system is likely to want to distinguish: configuration mistakes,
protocol misuse (e.g. feeding a finalized sampler), merge incompatibilities,
and warehouse catalog lookups.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "MergeError",
    "IncompatibleSamplesError",
    "CatalogError",
    "PartitionNotFoundError",
    "DatasetNotFoundError",
    "StorageError",
    "FootprintExceededError",
    "ServiceError",
    "CircuitOpenError",
    "OverloadedError",
    "VersionConflictError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError, ValueError):
    """A parameter is out of range or a configuration is inconsistent.

    Examples: a Bernoulli rate outside ``[0, 1]``, a footprint bound that
    cannot hold even a single value, a non-positive reservoir capacity.
    """


class ProtocolError(ReproError, RuntimeError):
    """An operation was invoked in an invalid state.

    Examples: feeding values to a sampler after :meth:`finalize`, asking an
    HB sampler for its final sample before finalizing, reusing a stream
    partition that has been closed.
    """


class MergeError(ReproError):
    """A merge operation failed."""


class IncompatibleSamplesError(MergeError, ValueError):
    """The two samples cannot be merged.

    Raised when the samples were drawn by incompatible schemes, declare
    overlapping parent partitions, or disagree on footprint models in a way
    the merge algorithms cannot reconcile.
    """


class CatalogError(ReproError, KeyError):
    """Base class for warehouse catalog lookup failures."""


class PartitionNotFoundError(CatalogError):
    """A referenced partition does not exist in the catalog."""


class DatasetNotFoundError(CatalogError):
    """A referenced data set does not exist in the catalog."""


class StorageError(ReproError, OSError):
    """A sample store could not read or write a persisted sample."""


class ServiceError(ReproError):
    """Base class for serving-layer failures (``repro serve``).

    Each subclass maps onto one HTTP failure mode of the service front
    (see ``docs/serving.md``); library callers embedding the service
    components directly catch these without any HTTP translation.
    """


class CircuitOpenError(ServiceError):
    """The circuit breaker is open: the protected resource is failing.

    Callers should back off and retry after the breaker's recovery
    timeout (the service maps this to HTTP 503 with ``Retry-After``).
    """

    def __init__(self, message: str, *, retry_after: float = 0.0) -> None:
        super().__init__(message)
        #: Seconds until the breaker next admits a half-open probe.
        self.retry_after = retry_after


class OverloadedError(ServiceError):
    """Admission control shed the request: the wait queue is full.

    Maps to HTTP 503 with ``Retry-After``; the request was never
    started, so retrying it later is always safe.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        #: Suggested client backoff before retrying, in seconds.
        self.retry_after = retry_after


class VersionConflictError(ServiceError):
    """An optimistic-concurrency check failed: the version tag moved.

    Raised by compare-and-swap catalog mutations when the caller's
    expected version no longer matches (HTTP 409); re-read the current
    version and retry the mutation against it.
    """

    def __init__(self, message: str, *, expected: int, actual: int) -> None:
        super().__init__(message)
        self.expected = expected
        self.actual = actual


class FootprintExceededError(ReproError, RuntimeError):
    """An internal invariant was violated: a sample outgrew its bound.

    This is an internal consistency check; user code should never trigger
    it.  If raised, it indicates a bug in a sampler or merge routine.
    """

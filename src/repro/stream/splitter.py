"""Stream splitters: fan one stream out across parallel consumers.

When "the incoming stream could be split over a number of machines and
samples from the concurrent sampling processes merged on demand"
(Section 2), the split itself must not bias the per-machine substreams.
Both splitters here produce *disjoint* substreams whose union is the
original stream — the precondition for the merge procedures:

* :class:`RoundRobinSplitter` — element ``i`` goes to consumer
  ``i mod k``; deterministic, perfectly balanced.
* :func:`hash_split` — route by a hash of the value; keeps equal values
  together (useful when per-consumer distinct-value locality matters)
  at the cost of balance under skew.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, List, TypeVar

from repro.errors import ConfigurationError
from repro.rng import stable_hash

__all__ = ["RoundRobinSplitter", "hash_split"]

T = TypeVar("T")


class RoundRobinSplitter:
    """Deliver stream elements to ``k`` consumers in rotation.

    Consumers are callables (e.g. a sampler's ``feed`` or an ingestor's
    ``feed`` method).

    Examples
    --------
    >>> outs = [[], []]
    >>> split = RoundRobinSplitter([outs[0].append, outs[1].append])
    >>> split.feed_many(range(5))
    >>> outs
    [[0, 2, 4], [1, 3]]
    """

    def __init__(self, consumers: List[Callable[[T], object]]) -> None:
        if not consumers:
            raise ConfigurationError("need at least one consumer")
        self._consumers = list(consumers)
        self._next = 0
        self._count = 0

    @property
    def delivered(self) -> int:
        """Total elements delivered."""
        return self._count

    def feed(self, value: T) -> None:
        """Deliver one element to the next consumer in rotation."""
        self._consumers[self._next](value)
        self._next = (self._next + 1) % len(self._consumers)
        self._count += 1

    def feed_many(self, values: Iterable[T]) -> None:
        """Deliver a sequence of elements."""
        for v in values:
            self.feed(v)


def hash_split(values: Iterable[T], k: int, *,
               key: Callable[[T], Hashable] = lambda v: v) -> List[List[T]]:
    """Partition values into ``k`` buckets by hash of ``key(value)``.

    Equal values always land in the same bucket.  Routing uses
    :func:`repro.rng.stable_hash` (SHA-256 of the key's ``repr``), so
    the same values reach the same buckets in every process — builtin
    ``hash`` would be salted per process for strings and silently
    break cross-process determinism (lint rule RPR012).

    Examples
    --------
    >>> buckets = hash_split([1, 2, 3, 1], 2)
    >>> sum(len(b) for b in buckets)
    4
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    buckets: List[List[T]] = [[] for _ in range(k)]
    for v in values:
        buckets[stable_hash(key(v)) % k].append(v)
    return buckets

"""Stream substrate: synthetic sources with fluctuating arrival rates and
stream splitters for parallelizing one stream across machines."""

from repro.stream.source import FluctuatingStream, chunk_stream
from repro.stream.splitter import RoundRobinSplitter, hash_split

__all__ = ["FluctuatingStream", "chunk_stream", "RoundRobinSplitter",
           "hash_split"]

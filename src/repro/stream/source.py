"""Synthetic stream sources.

The paper's second warehousing scenario has "the ongoing data stream
overwhelming for a single computer" and arrival rates that fluctuate —
the motivation for on-the-fly partitioning.  :class:`FluctuatingStream`
simulates such a stream: values are drawn from a workload generator while
a logical clock advances by random inter-arrival gaps whose rate drifts
over time, so time-based consumers see bursts and lulls.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, List, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.rng import SplittableRng

__all__ = ["FluctuatingStream", "chunk_stream"]

T = TypeVar("T")


class FluctuatingStream:
    """A stream of ``(timestamp, value)`` pairs with a drifting rate.

    The arrival rate follows a sinusoid around ``base_rate``:
    ``rate(t) = base_rate * (1 + amplitude * sin(2 pi t / period))``,
    and inter-arrival gaps are exponential at the current rate — a
    standard non-homogeneous Poisson approximation.

    Parameters
    ----------
    value_fn:
        Called with the arrival index to produce each value.
    base_rate:
        Mean arrivals per unit time.
    amplitude:
        Relative swing of the rate, in ``[0, 1)``.
    period:
        Length of one rate cycle, in stream time units.
    rng:
        Randomness for the gaps.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> s = FluctuatingStream(lambda i: i, base_rate=10.0,
    ...                       rng=SplittableRng(1))
    >>> pairs = s.take(5)
    >>> len(pairs), pairs[0][1]
    (5, 0)
    """

    def __init__(self, value_fn: Callable[[int], T], *,
                 base_rate: float = 1.0, amplitude: float = 0.5,
                 period: float = 1000.0,
                 rng: SplittableRng) -> None:
        if base_rate <= 0.0:
            raise ConfigurationError(
                f"base_rate must be positive, got {base_rate}")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError(
                f"amplitude must be in [0, 1), got {amplitude}")
        if period <= 0.0:
            raise ConfigurationError(
                f"period must be positive, got {period}")
        self._value_fn = value_fn
        self._base_rate = base_rate
        self._amplitude = amplitude
        self._period = period
        self._rng = rng
        self._clock = 0.0
        self._index = 0

    @property
    def clock(self) -> float:
        """Current stream time."""
        return self._clock

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at stream time ``t``."""
        swing = self._amplitude * math.sin(2.0 * math.pi * t / self._period)
        return self._base_rate * (1.0 + swing)

    def __iter__(self) -> Iterator[Tuple[float, T]]:
        while True:
            rate = self.rate_at(self._clock)
            gap = self._rng.expovariate(rate)
            self._clock += gap
            value = self._value_fn(self._index)
            self._index += 1
            yield (self._clock, value)

    def take(self, count: int) -> List[Tuple[float, T]]:
        """The next ``count`` arrivals as a list."""
        it = iter(self)
        return [next(it) for _ in range(count)]


def chunk_stream(values: Iterable[T], chunk_size: int) -> Iterator[List[T]]:
    """Group a stream into lists of ``chunk_size`` (last may be short).

    Examples
    --------
    >>> list(chunk_stream(range(5), 2))
    [[0, 1], [2, 3], [4]]
    """
    if chunk_size <= 0:
        raise ConfigurationError(
            f"chunk_size must be positive, got {chunk_size}")
    chunk: List[T] = []
    for v in values:
        chunk.append(v)
        if len(chunk) == chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk

"""The library's monotonic clock front.

Every duration the library measures — executor task times, stream
partition cuts, verify-check sweeps, per-level merge timings — goes
through this one function instead of calling ``time.perf_counter``
directly.  Two invariants hang off that:

* **Timing discipline is lintable.**  Rule RPR081 forbids raw
  ``time.*`` clock reads outside ``repro/obs`` and ``repro/bench``, so
  "who reads clocks, and why" reduces to grepping two packages; the
  rest of the tree provably times through this front (or through the
  bench harness's :func:`repro.bench.wall_timer`).
* **Determinism stays auditable.**  The clock here is monotonic and
  never feeds sampling decisions — the wall-clock sources that *would*
  break the pure-function-of-the-seed guarantee (``time.time``,
  ``datetime.now``) are a separate, always-forbidden family (RPR011
  and the dataflow effect lattice).

Because this is the one clock front, it is also the one **injection
point**: time-dependent control logic (the serving layer's circuit
breaker and retry backoff, see ``docs/serving.md``) accepts a clock
callable defaulting to :func:`monotonic`, and tests substitute a
:class:`ManualClock` to drive timeouts and backoff schedules
deterministically without sleeping.
"""

from __future__ import annotations

import time

from repro.errors import ConfigurationError

__all__ = ["monotonic", "ManualClock"]


def monotonic() -> float:
    """Seconds on the high-resolution monotonic clock.

    Differences of two readings are wall-clock durations; the absolute
    value is meaningless.  This is the clock all ``*.seconds`` metrics
    in ``docs/observability.md`` are fed with.
    """
    return time.perf_counter()


class ManualClock:
    """A deterministic clock for tests: advances only when told to.

    Mirrors the :func:`monotonic` front as a callable object, so any
    component taking ``clock=monotonic`` accepts a ``ManualClock``
    instance instead.  The serving layer's failure-injection tests use
    one to step a circuit breaker through its recovery timeout and to
    verify retry backoff schedules without real sleeping.

    Examples
    --------
    >>> clock = ManualClock()
    >>> clock()
    0.0
    >>> clock.advance(1.5)
    >>> clock()
    1.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def __call__(self) -> float:
        """The current manual time, in seconds."""
        return self._now

    def advance(self, seconds: float) -> None:
        """Move the clock forward (monotonic: never backwards)."""
        if seconds < 0:
            raise ConfigurationError(
                f"a monotonic clock cannot go backwards ({seconds})")
        self._now += float(seconds)

    async def sleep(self, seconds: float) -> None:
        """An injectable ``asyncio.sleep`` stand-in: advance, no wait.

        Lets retry/backoff code take ``sleep=asyncio.sleep`` in
        production and ``sleep=manual_clock.sleep`` in tests, keeping
        the recorded schedule consistent with the clock reading.
        """
        self.advance(seconds)

"""The library's monotonic clock front.

Every duration the library measures — executor task times, stream
partition cuts, verify-check sweeps, per-level merge timings — goes
through this one function instead of calling ``time.perf_counter``
directly.  Two invariants hang off that:

* **Timing discipline is lintable.**  Rule RPR081 forbids raw
  ``time.*`` clock reads outside ``repro/obs`` and ``repro/bench``, so
  "who reads clocks, and why" reduces to grepping two packages; the
  rest of the tree provably times through this front (or through the
  bench harness's :func:`repro.bench.wall_timer`).
* **Determinism stays auditable.**  The clock here is monotonic and
  never feeds sampling decisions — the wall-clock sources that *would*
  break the pure-function-of-the-seed guarantee (``time.time``,
  ``datetime.now``) are a separate, always-forbidden family (RPR011
  and the dataflow effect lattice).
"""

from __future__ import annotations

import time

__all__ = ["monotonic"]


def monotonic() -> float:
    """Seconds on the high-resolution monotonic clock.

    Differences of two readings are wall-clock durations; the absolute
    value is meaningless.  This is the clock all ``*.seconds`` metrics
    in ``docs/observability.md`` are fed with.
    """
    return time.perf_counter()

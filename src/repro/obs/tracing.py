"""Lightweight tracing spans with pluggable sinks.

A **span** is a named, timed region of execution with free-form
attributes.  Spans nest: each thread keeps its own stack, so a span
opened while another is active records it as its parent, and a trace of
one ingest reads as a tree (``ingest.batch`` → ``hb.phase2`` → …).

Two ways to open spans:

* :func:`span` — a context manager::

      with span("hb.phase2", seen=self._seen):
          ...  # the phase-1 exit purge

* :func:`traced` — a decorator for whole functions, optionally also
  timing into a registry histogram::

      @traced("merge.hb", timer="merge.hb.seconds")
      def hb_merge(...): ...

Both are no-ops while ``OBS.enabled`` is false: :func:`span` returns a
shared inert context manager (no allocation, no clock read), and
:func:`traced` adds a single branch per call.

Finished spans are delivered to ``OBS.sink`` (post-order — a span is
emitted when it *closes*).  Sinks implement one method,
``emit(span)``:

* :class:`RingBufferSink` — keeps the last ``capacity`` spans in memory
  and renders them as an indented tree (:meth:`RingBufferSink.render`);
* :class:`JsonlSink` — appends one JSON object per span to a file
  (round-trip via :func:`read_spans`);
* :class:`TeeSink` — fans out to several sinks;
* :class:`~repro.obs.runtime.NullSink` — the off-switch default.

Span names form part of the instrumentation contract documented in
``docs/observability.md`` (enforced by ``tests/test_obs_contract.py``).
"""

from __future__ import annotations

import functools
import json
import threading
import time
from collections import deque
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError, StorageError
from repro.obs.runtime import OBS

__all__ = ["Span", "span", "traced", "RingBufferSink", "JsonlSink",
           "TeeSink", "read_spans", "render_spans"]

_ids_lock = threading.Lock()
_next_id = 0

_stack = threading.local()  # per-thread list of open Span objects


def _new_id() -> int:
    global _next_id
    with _ids_lock:
        _next_id += 1
        return _next_id


class Span:
    """One named, timed region with attributes and a parent link.

    ``start``/``end`` are monotonic (``time.perf_counter``) seconds —
    meaningful only as differences within one process.
    """

    __slots__ = ("name", "span_id", "parent_id", "depth", "attrs",
                 "start", "end", "thread")

    def __init__(self, name: str, attrs: Dict[str, object],
                 parent: Optional["Span"]) -> None:
        self.name = name
        self.span_id = _new_id()
        self.parent_id = parent.span_id if parent is not None else None
        self.depth = parent.depth + 1 if parent is not None else 0
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.thread = threading.get_ident()

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        """A JSON-ready flat record (what :class:`JsonlSink` writes)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "thread": self.thread,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "Span":
        """Rebuild a span from :meth:`to_dict` output (sans fresh id)."""
        s = cls.__new__(cls)
        s.name = record["name"]
        s.span_id = record["span_id"]
        s.parent_id = record.get("parent_id")
        s.depth = record.get("depth", 0)
        s.attrs = dict(record.get("attrs", {}))
        s.start = record.get("start", 0.0)
        s.end = record.get("end", 0.0)
        s.thread = record.get("thread", 0)
        return s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, depth={self.depth}, "
                f"duration={self.duration:.6f})")


class _ActiveSpan:
    """The live context manager behind :func:`span`."""

    __slots__ = ("_span",)

    def __init__(self, name: str, attrs: Dict[str, object]) -> None:
        stack = getattr(_stack, "spans", None)
        if stack is None:
            stack = _stack.spans = []
        parent = stack[-1] if stack else None
        self._span = Span(name, attrs, parent)

    def __enter__(self) -> Span:
        _stack.spans.append(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, *exc) -> None:
        self._span.end = time.perf_counter()
        stack = _stack.spans
        if stack and stack[-1] is self._span:
            stack.pop()
        else:  # unbalanced exit; drop it wherever it is
            try:
                stack.remove(self._span)
            except ValueError:
                pass
        OBS.sink.emit(self._span)


class _InertSpan:
    """Shared no-op context manager returned while observability is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        pass


_INERT = _InertSpan()


def span(name: str, **attrs):
    """Open a traced span named ``name`` with the given attributes.

    Returns an inert shared object while observability is off, so
    guarding call sites with ``if OBS.enabled`` is optional for
    non-per-arrival code paths.
    """
    if not OBS.enabled:
        return _INERT
    return _ActiveSpan(name, attrs)


def traced(name: str, *, timer: Optional[str] = None
           ) -> Callable[[Callable], Callable]:
    """Decorate a function to run inside ``span(name)``.

    ``timer`` additionally records the call's duration into the named
    registry histogram (seconds, monotonic clock).  Disabled
    observability costs one branch per call.
    """
    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not OBS.enabled:
                return fn(*args, **kwargs)
            with _ActiveSpan(name, {}):
                if timer is None:
                    return fn(*args, **kwargs)
                with OBS.registry.timer(timer):
                    return fn(*args, **kwargs)
        return wrapper
    return decorate


def render_spans(spans: List[Span], *, clock_unit: str = "ms") -> str:
    """Render finished spans as an indented tree, one line per span.

    Spans are ordered by start time and indented by nesting depth;
    attributes print as ``key=value`` pairs.  ``clock_unit`` is ``"ms"``
    or ``"s"``.
    """
    if clock_unit not in ("ms", "s"):
        raise ConfigurationError(f"unknown clock unit {clock_unit!r}")
    scale, suffix = (1e3, "ms") if clock_unit == "ms" else (1.0, "s")
    lines = []
    for s in sorted(spans, key=lambda s: (s.start, s.span_id)):
        attrs = "".join(f" {k}={v}" for k, v in s.attrs.items())
        lines.append(f"{'  ' * s.depth}{s.name} "
                     f"({s.duration * scale:.3f} {suffix}){attrs}")
    return "\n".join(lines)


class RingBufferSink:
    """Keeps the most recent ``capacity`` finished spans in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}")
        self._lock = threading.Lock()
        self._spans: deque = deque(maxlen=capacity)

    def emit(self, span: Span) -> None:
        """Store one finished span."""
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """The retained spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        """Drop all retained spans."""
        with self._lock:
            self._spans.clear()

    def render(self, *, clock_unit: str = "ms") -> str:
        """The retained spans as an indented tree (see
        :func:`render_spans`)."""
        return render_spans(self.spans, clock_unit=clock_unit)


class JsonlSink:
    """Appends one JSON object per finished span to a file.

    Usable as a context manager; :func:`read_spans` round-trips the
    file back into :class:`Span` objects.
    """

    def __init__(self, path: str) -> None:
        self._lock = threading.Lock()
        try:
            self._handle = open(path, "a", encoding="utf-8")
        except OSError as exc:
            raise StorageError(
                f"cannot open trace file {path!r}: {exc}") from exc

    def emit(self, span: Span) -> None:
        """Write one span as a JSON line."""
        line = json.dumps(span.to_dict(), sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")

    def close(self) -> None:
        """Flush and close the file."""
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TeeSink:
    """Fans every span out to several sinks (e.g. ring buffer + JSONL)."""

    def __init__(self, *sinks) -> None:
        if not sinks:
            raise ConfigurationError("TeeSink needs at least one sink")
        self._sinks = sinks

    def emit(self, span: Span) -> None:
        """Deliver the span to every underlying sink."""
        for sink in self._sinks:
            sink.emit(span)


def read_spans(path: str) -> Iterator[Span]:
    """Yield the spans stored in a :class:`JsonlSink` file, in order."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield Span.from_dict(json.loads(line))

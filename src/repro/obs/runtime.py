"""The observability switch: one process-wide, off-by-default state.

Instrumented call sites throughout the library follow one discipline::

    from repro.obs.runtime import OBS

    if OBS.enabled:                      # one attribute lookup when off
        OBS.registry.counter("...").inc()

The global :data:`OBS` object holds three fields — ``enabled``,
``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry` or the no-op
:class:`NullRegistry`) and ``sink`` (a span sink, default
:class:`NullSink`).  With observability off (the default), the
uninstrumented fast path costs exactly one attribute lookup plus a
branch per instrumentation site; no metric objects are allocated and no
clock is read.

Three ways to turn it on:

* :func:`enable` / :func:`disable` — imperative, for long-running
  processes;
* :func:`capture` — a context manager that installs a fresh registry
  and in-memory trace sink for the duration of a block and restores the
  previous state afterwards (what the CLI, the bench harness, and the
  tests use).

Instrumentation is **passive**: it never draws randomness and never
changes control flow, so samples produced with observability on are
byte-identical to samples produced with it off (asserted by
``tests/test_obs.py``).

The state is process-wide, not thread-local: spans track their
parent/child nesting per thread (see :mod:`repro.obs.tracing`), but all
threads share one registry — which is why the registry is thread-safe.
Worker *processes* (``ProcessExecutor``) do not share the parent's
registry; per-task timings cross the process boundary via the executors'
timed-task wrappers (see :mod:`repro.warehouse.parallel`).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

__all__ = ["OBS", "NullRegistry", "NullSink", "enable", "disable",
           "capture"]


class _NullMetric:
    """Accepts every metric mutation and does nothing."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass

    def add(self, amount: float) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self) -> "_NullMetric":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """A registry whose every metric is a shared no-op object.

    Installed by default so library code may call ``OBS.registry``
    unconditionally without crashing; guarded call sites
    (``if OBS.enabled``) never reach it at all.
    """

    def counter(self, name: str) -> _NullMetric:
        """A no-op counter."""
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        """A no-op gauge."""
        return _NULL_METRIC

    def histogram(self, name: str) -> _NullMetric:
        """A no-op histogram."""
        return _NULL_METRIC

    def timer(self, name: str) -> _NullMetric:
        """A no-op timer context manager."""
        return _NULL_METRIC

    def snapshot(self) -> dict:
        """Always empty."""
        return {}

    def reset(self) -> None:
        """Nothing to reset."""

    def report(self) -> str:
        """Always empty."""
        return ""


class NullSink:
    """A span sink that drops everything."""

    def emit(self, span) -> None:
        """Discard the span."""


class _ObsState:
    """The mutable process-wide observability state."""

    __slots__ = ("enabled", "registry", "sink")

    def __init__(self) -> None:
        self.enabled = False
        self.registry = NullRegistry()
        self.sink = NullSink()


#: The process-wide observability state; import this, read ``.enabled``.
OBS = _ObsState()


def enable(registry=None, sink=None) -> None:
    """Turn observability on, installing ``registry`` and ``sink``.

    Defaults: a fresh :class:`~repro.obs.metrics.MetricsRegistry` and a
    fresh :class:`~repro.obs.tracing.RingBufferSink`.
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import RingBufferSink

    OBS.registry = registry if registry is not None else MetricsRegistry()
    OBS.sink = sink if sink is not None else RingBufferSink()
    OBS.enabled = True


def disable() -> None:
    """Turn observability off and restore the no-op defaults."""
    OBS.enabled = False
    OBS.registry = NullRegistry()
    OBS.sink = NullSink()


@contextmanager
def capture(registry=None, sink=None) -> Iterator[Tuple[object, object]]:
    """Observe a block: install fresh state, yield it, restore on exit.

    Yields ``(registry, sink)``.  The previous state (including nested
    ``capture`` blocks) is restored even on exceptions.  Not safe to
    enter concurrently from multiple threads — the state is process
    global; enter it once and share the registry (which is thread-safe).

    Examples
    --------
    >>> from repro.obs.runtime import capture, OBS
    >>> with capture() as (metrics, trace):
    ...     OBS.registry.counter("demo.events").inc()
    >>> metrics.snapshot()["demo.events"]["value"]
    1
    >>> OBS.enabled
    False
    """
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import RingBufferSink

    registry = registry if registry is not None else MetricsRegistry()
    sink = sink if sink is not None else RingBufferSink()
    prev = (OBS.enabled, OBS.registry, OBS.sink)
    OBS.registry = registry
    OBS.sink = sink
    OBS.enabled = True
    try:
        yield registry, sink
    finally:
        OBS.enabled, OBS.registry, OBS.sink = prev

"""Observability: metrics, tracing spans, and profiling hooks.

A dependency-free subsystem the rest of the library is instrumented
with.  Off by default — the uninstrumented fast path costs one
attribute lookup per site — and switched on per-block with
:func:`capture`, or process-wide with :func:`enable`.

The full instrumentation contract (every metric and span name, its
unit, and where it is emitted) lives in ``docs/observability.md``;
``tests/test_obs_contract.py`` fails if code and contract drift apart.

Quick start::

    from repro import SampleWarehouse, SplittableRng
    from repro.obs import capture

    with capture() as (metrics, trace):
        wh = SampleWarehouse(bound_values=256, scheme="hb",
                             rng=SplittableRng(7))
        wh.ingest_batch("t.v", list(range(100_000)), partitions=10)
        sample = wh.sample_of("t.v")

    print(metrics.report())   # counters / gauges / latency histograms
    print(trace.render())     # the nested span tree of the whole run
"""

from repro.obs.clock import ManualClock, monotonic
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (OBS, NullRegistry, NullSink, capture,
                               disable, enable)
from repro.obs.tracing import (JsonlSink, RingBufferSink, Span, TeeSink,
                               read_spans, render_spans, span, traced)

__all__ = [
    # clock
    "monotonic",
    "ManualClock",
    # state
    "OBS",
    "enable",
    "disable",
    "capture",
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NullRegistry",
    # tracing
    "Span",
    "span",
    "traced",
    "RingBufferSink",
    "JsonlSink",
    "TeeSink",
    "NullSink",
    "read_spans",
    "render_spans",
]

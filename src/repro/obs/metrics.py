"""Thread-safe metrics: counters, gauges, and histogram timers.

A :class:`MetricsRegistry` holds named metrics of three kinds:

* :class:`Counter` — a monotonically increasing integer (events,
  arrivals, merges);
* :class:`Gauge` — a last-write-wins float (a rate, a level);
* :class:`Histogram` — a distribution of observations with running
  count/sum/min/max and quantiles over a bounded window; the registry's
  :meth:`MetricsRegistry.timer` wraps a histogram in a monotonic-clock
  (``time.perf_counter``) context manager for latency measurement.

All mutation is lock-protected, so one registry can be shared by the
thread-pool executors.  ``snapshot()`` returns a plain dict (JSON-ready
via ``to_json()``), ``reset()`` zeroes everything in place, and
``report()`` renders a terminal summary using the repo's ASCII chart
renderer.

The naming contract for every metric the library emits — names, units,
emission points — is documented in ``docs/observability.md`` and
enforced by ``tests/test_obs_contract.py``.
"""

from __future__ import annotations

import json
import math
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Observations kept per histogram for quantile estimation; running
#: count/sum/min/max keep exact track beyond the window.
_HISTOGRAM_WINDOW = 4096


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def inc(self, amount: int = 1) -> None:
        """Increase the counter; ``amount`` must be non-negative."""
        if amount < 0:
            raise ConfigurationError(
                f"counters only increase, got {amount}")
        with self._lock:
            self._value += amount

    add = inc  # counters of quantities (arrivals) read better as add()

    def snapshot(self) -> dict:
        """``{"type": "counter", "value": n}``."""
        return {"type": "counter", "value": self._value}

    def reset(self) -> None:
        """Zero the counter."""
        with self._lock:
            self._value = 0


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value: Optional[float] = None

    @property
    def value(self) -> Optional[float]:
        """The last value set (None if never set)."""
        return self._value

    def set(self, value: float) -> None:
        """Record the current level."""
        with self._lock:
            self._value = float(value)

    def snapshot(self) -> dict:
        """``{"type": "gauge", "value": v}``."""
        return {"type": "gauge", "value": self._value}

    def reset(self) -> None:
        """Forget the value."""
        with self._lock:
            self._value = None


class Histogram:
    """A distribution of float observations.

    Running ``count``/``sum``/``min``/``max`` are exact over all
    observations; quantiles are computed over the most recent
    ``_HISTOGRAM_WINDOW`` observations (a circular window), which keeps
    memory bounded on long-running processes.
    """

    __slots__ = ("_lock", "_count", "_sum", "_min", "_max", "_window",
                 "_pos")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._window: List[float] = []
        self._pos = 0

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def total(self) -> float:
        """Sum of all observations."""
        return self._sum

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if len(self._window) < _HISTOGRAM_WINDOW:
                self._window.append(value)
            else:
                self._window[self._pos] = value
                self._pos = (self._pos + 1) % _HISTOGRAM_WINDOW

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (0..1) over the retained window."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            window = sorted(self._window)
        if not window:
            return 0.0
        idx = min(len(window) - 1, int(round(q * (len(window) - 1))))
        return window[idx]

    def snapshot(self) -> dict:
        """Count, sum, min/max, mean and p50/p90/p99 as a plain dict."""
        with self._lock:
            count, total = self._count, self._sum
            lo = self._min if count else 0.0
            hi = self._max if count else 0.0
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo,
            "max": hi,
            "mean": total / count if count else 0.0,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def reset(self) -> None:
        """Drop every observation."""
        with self._lock:
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf
            self._window = []
            self._pos = 0


class _Timer:
    """Context manager observing elapsed monotonic seconds."""

    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._histogram.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms.

    Metrics are created on first use and live for the registry's
    lifetime; asking for an existing name with a different kind raises
    :class:`~repro.errors.ConfigurationError`.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("demo.events").inc()
    >>> reg.counter("demo.events").inc(2)
    >>> reg.counter("demo.events").value
    3
    >>> reg.gauge("demo.level").set(0.5)
    >>> reg.histogram("demo.sizes").observe(10)
    >>> sorted(reg.snapshot())
    ['demo.events', 'demo.level', 'demo.sizes']
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: type):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = kind()
                    self._metrics[name] = metric
        if not isinstance(metric, kind):
            raise ConfigurationError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {kind.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram called ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def timer(self, name: str) -> _Timer:
        """A context manager timing into histogram ``name`` (seconds)."""
        return _Timer(self._get(name, Histogram))

    def names(self) -> List[str]:
        """All metric names, sorted."""
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Every metric's snapshot keyed by name (a plain, JSON-able dict)."""
        with self._lock:
            items = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(items)}

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """The snapshot serialized as JSON."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Zero every metric in place (names survive)."""
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    def report(self, *, width: int = 40) -> str:
        """A terminal-friendly text report of the current snapshot.

        Counters render as an ASCII bar chart (via
        :func:`repro.bench.ascii_chart.bar_chart`); gauges and
        histograms as aligned text lines.
        """
        from repro.bench.ascii_chart import bar_chart

        snap = self.snapshot()
        counters = [(n, float(s["value"])) for n, s in snap.items()
                    if s["type"] == "counter"]
        gauges = [(n, s["value"]) for n, s in snap.items()
                  if s["type"] == "gauge"]
        histograms = [(n, s) for n, s in snap.items()
                      if s["type"] == "histogram"]
        sections: List[str] = []
        if counters:
            sections.append(bar_chart(counters, width=width,
                                      title="counters"))
        if gauges:
            lines = ["gauges"]
            name_w = max(len(n) for n, _ in gauges)
            for name, value in gauges:
                shown = "unset" if value is None else f"{value:g}"
                lines.append(f"{name.ljust(name_w)} | {shown}")
            sections.append("\n".join(lines))
        if histograms:
            lines = ["histograms (count / mean / p50 / p99 / max)"]
            name_w = max(len(n) for n, _ in histograms)
            for name, s in histograms:
                lines.append(
                    f"{name.ljust(name_w)} | {s['count']:>6} / "
                    f"{s['mean']:.3g} / {s['p50']:.3g} / "
                    f"{s['p99']:.3g} / {s['max']:.3g}")
            sections.append("\n".join(lines))
        return "\n\n".join(sections)

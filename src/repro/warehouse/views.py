"""Materialized sample views: named, cached partition-union samples.

Interactive analytics repeatedly query the same partition unions ("all of
June", "the active working set").  Re-merging per query is cheap but not
free, so :class:`ViewManager` materializes named views — a merged
:class:`~repro.core.sample.WarehouseSample` plus the partition set it was
built from — and tracks **staleness**: a view goes stale when its
dataset's active partition set no longer matches the set it was built
from (new partitions ingested, old ones rolled in/out) or when a stored
partition sample was replaced (e.g. by deletion maintenance).

Refreshing re-merges from the current partitions; the manager never
refreshes behind the caller's back (queries on stale views are allowed —
they answer over the snapshot — but the flag tells callers the answer
lags the warehouse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError
from repro.warehouse.dataset import PartitionKey

__all__ = ["MaterializedView", "ViewManager"]


@dataclass
class MaterializedView:
    """A named merged sample with provenance."""

    name: str
    dataset: str
    sample: WarehouseSample
    #: The exact (key, population_size) snapshot the view was built from.
    built_from: Tuple[Tuple[PartitionKey, int], ...]
    labels: Optional[Tuple[str, ...]] = None
    refresh_count: int = field(default=0)

    @property
    def partition_keys(self) -> List[PartitionKey]:
        """Keys the view covers."""
        return [k for k, _n in self.built_from]


class ViewManager:
    """Create, query, and refresh materialized sample views.

    Examples
    --------
    >>> from repro import SampleWarehouse, SplittableRng
    >>> wh = SampleWarehouse(bound_values=64, rng=SplittableRng(3))
    >>> _ = wh.ingest_batch("d", list(range(5000)), partitions=2)
    >>> views = ViewManager(wh)
    >>> v = views.materialize("all-of-d", "d")
    >>> views.is_stale("all-of-d")
    False
    """

    def __init__(self, warehouse, *, merge_mode: str = "serial",
                 executor=None) -> None:
        self._warehouse = warehouse
        self._views: Dict[str, MaterializedView] = {}
        #: How materialize/refresh merges are evaluated.  "parallel"
        #: plus an executor runs each merge level concurrently; results
        #: are byte-identical either way (docs/determinism.md).
        self._merge_mode = merge_mode
        self._executor = executor

    def _snapshot(self, dataset: str,
                  labels: Optional[Iterable[str]]
                  ) -> Tuple[Tuple[PartitionKey, int], ...]:
        catalog = self._warehouse.catalog
        if labels is not None:
            metas = catalog.merge_labels(dataset, labels)
        else:
            metas = catalog.partitions(dataset)
        return tuple((m.key, m.population_size) for m in metas)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def materialize(self, name: str, dataset: str, *,
                    labels: Optional[Iterable[str]] = None,
                    replace: bool = False) -> MaterializedView:
        """Build (and cache) a view over a dataset's current partitions."""
        if name in self._views and not replace:
            raise ConfigurationError(
                f"view {name!r} already exists (pass replace=True)")
        labels_t = tuple(labels) if labels is not None else None
        snapshot = self._snapshot(dataset, labels_t)
        if not snapshot:
            raise ConfigurationError(
                f"no partitions selected for view {name!r}")
        sample = self._warehouse.sample_of(
            dataset, keys=[k for k, _n in snapshot],
            mode=self._merge_mode, executor=self._executor)
        view = MaterializedView(name=name, dataset=dataset, sample=sample,
                                built_from=snapshot, labels=labels_t)
        self._views[name] = view
        return view

    def get(self, name: str) -> MaterializedView:
        """Fetch a view by name."""
        view = self._views.get(name)
        if view is None:
            raise ConfigurationError(f"no view named {name!r}")
        return view

    def drop(self, name: str) -> None:
        """Delete a view."""
        if name not in self._views:
            raise ConfigurationError(f"no view named {name!r}")
        del self._views[name]

    def names(self) -> List[str]:
        """All view names, sorted."""
        return sorted(self._views)

    # ------------------------------------------------------------------
    # Staleness
    # ------------------------------------------------------------------
    def is_stale(self, name: str) -> bool:
        """Does the view's snapshot still match the live catalog?

        Stale when the selected partition set changed (ingest, roll-in,
        roll-out) or any covered partition's population size changed
        (deletion maintenance rewrote its sample).
        """
        view = self.get(name)
        current = self._snapshot(view.dataset, view.labels)
        return current != view.built_from

    def stale_views(self) -> List[str]:
        """Names of all currently stale views."""
        return [name for name in self.names() if self.is_stale(name)]

    def refresh(self, name: str) -> MaterializedView:
        """Re-merge a view from the live partition set."""
        old = self.get(name)
        snapshot = self._snapshot(old.dataset, old.labels)
        if not snapshot:
            raise ConfigurationError(
                f"view {name!r} selects no partitions anymore; drop it")
        sample = self._warehouse.sample_of(
            old.dataset, keys=[k for k, _n in snapshot],
            mode=self._merge_mode, executor=self._executor)
        view = MaterializedView(name=name, dataset=old.dataset,
                                sample=sample, built_from=snapshot,
                                labels=old.labels,
                                refresh_count=old.refresh_count + 1)
        self._views[name] = view
        return view

    def refresh_stale(self) -> List[str]:
        """Refresh every stale view; returns the refreshed names."""
        refreshed = []
        for name in self.stale_views():
            self.refresh(name)
            refreshed.append(name)
        return refreshed

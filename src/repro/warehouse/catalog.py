"""The warehouse catalog: which partitions exist, and their metadata.

The catalog is the control-plane companion of the sample store: for every
partition it records the parent size, the sample's kind and size, an
optional human label (e.g. ``"2026-07-04"`` for daily partitions), and
whether the partition is currently **rolled in** (active).  Roll-out
keeps the metadata (marked inactive) so a partition can be rolled back in
later — the mechanism the paper uses to approximate moving-window stream
sampling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.core.phases import SampleKind
from repro.errors import (ConfigurationError, DatasetNotFoundError,
                          PartitionNotFoundError)
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.synopsis import PartitionSynopsis

__all__ = ["PartitionMeta", "Catalog"]


@dataclass
class PartitionMeta:
    """Catalog record for one partition.

    ``synopsis`` carries the partition's summary statistics (moments,
    range, heavy hitters — see :mod:`repro.warehouse.synopsis`) when
    the ingest path could compute or estimate them; records persisted
    before synopses existed load with ``synopsis=None`` and simply
    opt the partition out of planner shortcuts.
    """

    key: PartitionKey
    population_size: int
    sample_size: int
    kind: SampleKind
    scheme: str
    label: Optional[str] = None
    active: bool = True
    synopsis: Optional[PartitionSynopsis] = None

    def to_dict(self) -> dict:
        """JSON-serializable form (for catalog persistence)."""
        data = {
            "key": str(self.key),
            "population_size": self.population_size,
            "sample_size": self.sample_size,
            "kind": self.kind.name,
            "scheme": self.scheme,
            "label": self.label,
            "active": self.active,
        }
        if self.synopsis is not None:
            data["synopsis"] = self.synopsis.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionMeta":
        """Inverse of :meth:`to_dict` (synopsis-less records still load)."""
        raw_synopsis = data.get("synopsis")
        return cls(
            key=PartitionKey.parse(data["key"]),
            population_size=data["population_size"],
            sample_size=data["sample_size"],
            kind=SampleKind[data["kind"]],
            scheme=data["scheme"],
            label=data.get("label"),
            active=data.get("active", True),
            synopsis=(PartitionSynopsis.from_dict(raw_synopsis)
                      if raw_synopsis is not None else None),
        )


@dataclass
class _DatasetEntry:
    partitions: Dict[PartitionKey, PartitionMeta] = field(
        default_factory=dict)


class Catalog:
    """Metadata registry over datasets and their partitions.

    Examples
    --------
    >>> c = Catalog()
    >>> k = PartitionKey("orders", 0, 0)
    >>> c.register(PartitionMeta(k, 100, 10, SampleKind.RESERVOIR, "hr"))
    >>> [m.key for m in c.partitions("orders")] == [k]
    True
    """

    def __init__(self) -> None:
        self._datasets: Dict[str, _DatasetEntry] = {}

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, meta: PartitionMeta, *,
                 replace: bool = False) -> None:
        """Add a partition record; re-registering raises unless ``replace``."""
        entry = self._datasets.setdefault(meta.key.dataset, _DatasetEntry())
        if meta.key in entry.partitions and not replace:
            raise ConfigurationError(
                f"partition {meta.key} already registered")
        entry.partitions[meta.key] = meta

    def get(self, key: PartitionKey) -> PartitionMeta:
        """The record for ``key`` (raises if unknown)."""
        entry = self._datasets.get(key.dataset)
        if entry is None:
            raise DatasetNotFoundError(key.dataset)
        meta = entry.partitions.get(key)
        if meta is None:
            raise PartitionNotFoundError(str(key))
        return meta

    def forget(self, key: PartitionKey) -> None:
        """Drop a partition record entirely."""
        meta = self.get(key)
        del self._datasets[meta.key.dataset].partitions[key]

    def datasets(self) -> List[str]:
        """Names of all known datasets, sorted."""
        return sorted(self._datasets)

    def partitions(self, dataset: str, *,
                   only_active: bool = True,
                   where: Optional[Callable[[PartitionMeta], bool]] = None
                   ) -> List[PartitionMeta]:
        """Partition records of a dataset, in key order.

        ``only_active`` filters out rolled-out partitions; ``where`` is an
        arbitrary extra predicate (e.g. on labels for temporal selection).
        """
        entry = self._datasets.get(dataset)
        if entry is None:
            raise DatasetNotFoundError(dataset)
        metas = sorted(entry.partitions.values(), key=lambda m: m.key)
        if only_active:
            metas = [m for m in metas if m.active]
        if where is not None:
            metas = [m for m in metas if where(m)]
        return metas

    def next_seq(self, dataset: str, stream: int = 0) -> int:
        """The next unused temporal sequence number for a stream."""
        entry = self._datasets.get(dataset)
        if entry is None:
            return 0
        seqs = [k.seq for k in entry.partitions if k.stream == stream]
        return max(seqs) + 1 if seqs else 0

    # ------------------------------------------------------------------
    # Roll-in / roll-out
    # ------------------------------------------------------------------
    def roll_out(self, key: PartitionKey) -> None:
        """Mark a partition inactive (its sample leaves the working set)."""
        self.get(key).active = False

    def roll_in(self, key: PartitionKey) -> None:
        """Mark a partition active again."""
        self.get(key).active = True

    # ------------------------------------------------------------------
    # Aggregates and persistence
    # ------------------------------------------------------------------
    def total_population(self, dataset: str, *,
                         only_active: bool = True) -> int:
        """Sum of parent-partition sizes for a dataset."""
        return sum(m.population_size
                   for m in self.partitions(dataset,
                                            only_active=only_active))

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the whole catalog."""
        return {
            "datasets": {
                name: [m.to_dict()
                       for m in sorted(entry.partitions.values(),
                                       key=lambda m: m.key)]
                for name, entry in self._datasets.items()
            }
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Catalog":
        """Inverse of :meth:`to_dict`."""
        catalog = cls()
        for metas in data.get("datasets", {}).values():
            for meta in metas:
                catalog.register(PartitionMeta.from_dict(meta))
        return catalog

    def merge_labels(self, dataset: str,
                     labels: Iterable[str]) -> List[PartitionMeta]:
        """Active partitions of a dataset whose label is in ``labels``."""
        wanted = set(labels)
        return self.partitions(dataset,
                               where=lambda m: m.label in wanted)

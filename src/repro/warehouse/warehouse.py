"""The sample warehouse facade (Figure 1).

:class:`SampleWarehouse` wires together the catalog, a sample store, the
samplers and the merge machinery behind the API a downstream system uses:

* ``ingest_batch`` — divide a bulk load into partitions, sample each
  (optionally in parallel), store the per-partition samples;
* ``open_stream`` — attach a :class:`~repro.warehouse.ingest.StreamIngestor`
  that splits an arriving stream into temporal partitions;
* ``sample_of`` — retrieve and merge the samples of an arbitrary set of
  partitions into one uniform sample of their union (``S_K``);
* ``roll_out`` / ``roll_in`` — move partitions out of and back into the
  active working set, mirroring partitions rolling through the full-scale
  warehouse;
* ``save`` / ``load`` — persist the catalog next to a file-backed store.
"""

from __future__ import annotations

import json
import os
import weakref
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.merge import merge_tree
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, StorageError
from repro.obs.runtime import OBS
from repro.obs.tracing import traced
from repro.rng import SplittableRng
from repro.warehouse.catalog import Catalog, PartitionMeta
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.ingest import (CountPolicy, PartitionPolicy,
                                    StreamIngestor, split_batch)
from repro.warehouse.parallel import (SampleTask, SerialExecutor,
                                      sample_partition)
from repro.warehouse.storage import FileStore, InMemoryStore
from repro.warehouse.synopsis import PartitionSynopsis

__all__ = ["SampleWarehouse"]

_CATALOG_FILE = "catalog.json"


class SampleWarehouse:
    """A warehouse of samples shadowing a full-scale data warehouse.

    Parameters
    ----------
    bound_values:
        Default per-partition sample bound ``n_F``.
    scheme:
        Default sampling scheme: ``"hr"`` (default — needs no a-priori
        sizes), ``"hb"``, ``"hb-mp"``, or ``"sb"``.
    exceedance_p:
        Default exceedance probability for HB-family schemes.
    sb_rate:
        Fixed rate for the SB scheme.
    rng:
        Master randomness source; per-partition substreams are derived
        deterministically from it.
    store:
        Sample store; defaults to in-memory.  Pass a
        :class:`~repro.warehouse.storage.FileStore` for persistence.
    model:
        Footprint model shared by all samples.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> wh = SampleWarehouse(bound_values=128, rng=SplittableRng(1))
    >>> keys = wh.ingest_batch("t.col", list(range(10_000)), partitions=4)
    >>> s = wh.sample_of("t.col")
    >>> s.population_size
    10000
    """

    def __init__(self, *, bound_values: int = 8192, scheme: str = "hr",
                 exceedance_p: float = 0.001,
                 sb_rate: Optional[float] = None,
                 rng: Optional[SplittableRng] = None,
                 store=None,
                 model: FootprintModel = DEFAULT_MODEL) -> None:
        if bound_values <= 0:
            raise ConfigurationError(
                f"bound_values must be positive, got {bound_values}")
        self._bound = bound_values
        self._scheme = scheme
        self._p = exceedance_p
        self._sb_rate = sb_rate
        self._rng = rng if rng is not None else SplittableRng()
        self._store = store if store is not None else InMemoryStore()
        self._model = model
        self._catalog = Catalog()
        # Weakly-held bound methods called with the dataset name after
        # every catalog mutation (ingest, roll-in/out, deletion) — the
        # hook query-engine caches use for per-dataset invalidation.
        self._mutation_listeners: List[weakref.WeakMethod] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        """The warehouse catalog (read it; mutate through the facade)."""
        return self._catalog

    @property
    def store(self):
        """The underlying sample store."""
        return self._store

    @property
    def bound_values(self) -> int:
        """Default sample bound ``n_F``."""
        return self._bound

    def datasets(self) -> List[str]:
        """Names of datasets with at least one partition."""
        return self._catalog.datasets()

    def partition_keys(self, dataset: str, *,
                       only_active: bool = True) -> List[PartitionKey]:
        """Keys of a dataset's partitions, in key order."""
        return [m.key for m in self._catalog.partitions(
            dataset, only_active=only_active)]

    # ------------------------------------------------------------------
    # Mutation listeners
    # ------------------------------------------------------------------
    def add_mutation_listener(self, listener: Callable[[str], None]
                              ) -> None:
        """Register a bound method called with the dataset name after
        every mutation of that dataset.

        Held weakly: a listener whose owner is garbage-collected is
        pruned on the next notification, so short-lived query engines
        can subscribe without pinning themselves alive.
        """
        self._mutation_listeners.append(weakref.WeakMethod(listener))

    def _notify_mutation(self, dataset: str) -> None:
        alive = []
        for ref in self._mutation_listeners:
            listener = ref()
            if listener is not None:
                alive.append(ref)
                listener(dataset)
        self._mutation_listeners = alive

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _register(self, key: PartitionKey, sample: WarehouseSample,
                  label: Optional[str] = None,
                  synopsis: Optional[PartitionSynopsis] = None) -> None:
        self._store.put(key, sample)
        if synopsis is None:
            # No raw data in sight: estimate the synopsis from the
            # sample itself (marked non-exact unless exhaustive).
            synopsis = PartitionSynopsis.from_sample(sample)
        self._catalog.register(PartitionMeta(
            key=key,
            population_size=sample.population_size,
            sample_size=sample.size,
            kind=sample.kind,
            scheme=sample.scheme,
            label=label,
            synopsis=synopsis,
        ))
        self._notify_mutation(key.dataset)

    @traced("ingest.batch", timer="ingest.batch.seconds")
    def ingest_batch(self, dataset: str, values: Sequence, *,
                     partitions: int = 1,
                     scheme: Optional[str] = None,
                     executor=None,
                     labels: Optional[Sequence[str]] = None,
                     stream: int = 0) -> List[PartitionKey]:
        """Divide a batch into partitions, sample each, store the samples.

        Parameters
        ----------
        values:
            The batch (an indexable sequence).
        partitions:
            How many partitions to divide it into.
        scheme:
            Override the warehouse default scheme for this load.
        executor:
            A :class:`SerialExecutor` (default), ``ThreadExecutor``, or
            ``ProcessExecutor`` mapping sampling tasks.
        labels:
            Optional per-partition labels (len must equal ``partitions``).
        stream:
            Stream index for the produced keys.

        Returns the keys of the created partitions.
        """
        scheme = scheme or self._scheme
        if labels is not None and len(labels) != partitions:
            raise ConfigurationError(
                f"{len(labels)} labels for {partitions} partitions")
        executor = executor or SerialExecutor()
        chunks = split_batch(values, partitions)
        seq0 = self._catalog.next_seq(dataset, stream)
        tasks = [
            SampleTask(
                values=chunk,
                scheme=scheme,
                bound_values=self._bound,
                exceedance_p=self._p,
                sb_rate=self._sb_rate,
                seed=self._rng.spawn(dataset, stream, seq0 + i).seed_value,
            )
            for i, chunk in enumerate(chunks)
        ]
        samples = executor.map(sample_partition, tasks)
        keys: List[PartitionKey] = []
        for i, sample in enumerate(samples):
            key = PartitionKey(dataset, stream, seq0 + i)
            label = labels[i] if labels is not None else None
            # The raw chunk is still in hand, so the catalog gets the
            # partition's *exact* summary statistics (docs/aqp.md).
            self._register(key, sample, label,
                           synopsis=PartitionSynopsis.from_values(
                               chunks[i]))
            keys.append(key)
        if OBS.enabled:
            OBS.registry.counter("ingest.batch.partitions").add(len(keys))
        return keys

    def ingest_sample(self, key: PartitionKey, sample: WarehouseSample, *,
                      label: Optional[str] = None,
                      synopsis: Optional[PartitionSynopsis] = None) -> None:
        """Roll in a pre-built sample (e.g. produced on another machine).

        Pass the partition's ``synopsis`` if the producing side computed
        one (rollups do); otherwise an estimated synopsis is derived
        from the sample.
        """
        self._register(key, sample, label, synopsis=synopsis)

    def open_stream(self, dataset: str, *,
                    policy: Optional[PartitionPolicy] = None,
                    scheme: Optional[str] = None,
                    stream: int = 0,
                    label_fn: Optional[Callable[[int], str]] = None
                    ) -> StreamIngestor:
        """Attach a stream ingestor that emits partitions into this
        warehouse.

        ``policy`` defaults to cutting every ``32 * bound_values``
        arrivals.  ``label_fn`` maps the partition sequence number to a
        label (e.g. a date string).
        """
        scheme = scheme or self._scheme
        policy = policy or CountPolicy(32 * self._bound)

        def sink(key: PartitionKey, sample: WarehouseSample,
                 synopsis: Optional[PartitionSynopsis] = None) -> None:
            label = label_fn(key.seq) if label_fn is not None else None
            self._register(key, sample, label, synopsis=synopsis)

        return StreamIngestor(
            dataset,
            scheme=scheme,
            bound_values=self._bound,
            policy=policy,
            sink=sink,
            rng=self._rng,
            exceedance_p=self._p,
            sb_rate=self._sb_rate,
            stream=stream,
            start_seq=self._catalog.next_seq(dataset, stream),
        )

    # ------------------------------------------------------------------
    # Retrieval and merging
    # ------------------------------------------------------------------
    def sample_for(self, key: PartitionKey) -> WarehouseSample:
        """The stored sample of one partition."""
        return self._store.get(key)

    @traced("warehouse.sample_of", timer="warehouse.sample_of.seconds")
    def sample_of(self, dataset: str, *,
                  keys: Optional[Iterable[PartitionKey]] = None,
                  labels: Optional[Iterable[str]] = None,
                  mode: str = "serial",
                  executor=None) -> WarehouseSample:
        """A uniform sample of the union of the selected partitions.

        Selection: explicit ``keys``, or all active partitions carrying
        one of ``labels``, or (default) every active partition of the
        dataset.  ``mode`` is the merge-tree evaluation strategy
        ("serial", "balanced", or "parallel"); with ``mode="parallel"``
        an ``executor`` from :mod:`repro.warehouse.parallel` runs each
        merge level concurrently.  All modes return byte-identical
        samples for the same warehouse seed (see docs/determinism.md).
        """
        if keys is not None and labels is not None:
            raise ConfigurationError("give keys or labels, not both")
        if keys is None:
            if labels is not None:
                metas = self._catalog.merge_labels(dataset, labels)
            else:
                metas = self._catalog.partitions(dataset)
            keys = [m.key for m in metas]
        keys = list(keys)
        if not keys:
            raise ConfigurationError(
                f"no partitions selected for dataset {dataset!r}")
        samples = [self._store.get(k) for k in keys]
        return merge_tree(samples, rng=self._rng.spawn("merge", dataset),
                          mode=mode, executor=executor)

    def stratified_sample_of(self, dataset: str, *,
                             keys: Optional[Iterable[PartitionKey]] = None,
                             labels: Optional[Iterable[str]] = None):
        """The selected partitions as a stratified sample.

        Instead of merging into one uniform sample, keeps each
        partition's sample as a stratum with its known parent size —
        Section 4.1's "simply concatenated" design.  Stratified
        estimators (on the returned object) remove between-partition
        variance, which pays off when partition means differ.
        """
        from repro.core.stratified import StratifiedSample

        if keys is not None and labels is not None:
            raise ConfigurationError("give keys or labels, not both")
        if keys is None:
            if labels is not None:
                metas = self._catalog.merge_labels(dataset, labels)
            else:
                metas = self._catalog.partitions(dataset)
            keys = [m.key for m in metas]
        keys = list(keys)
        if not keys:
            raise ConfigurationError(
                f"no partitions selected for dataset {dataset!r}")
        return StratifiedSample([self._store.get(k) for k in keys])

    # ------------------------------------------------------------------
    # Roll-in / roll-out
    # ------------------------------------------------------------------
    def roll_out(self, key: PartitionKey, *, drop_sample: bool = False
                 ) -> None:
        """Deactivate a partition; optionally delete its stored sample."""
        self._catalog.roll_out(key)
        if drop_sample and key in self._store:
            self._store.delete(key)
        self._notify_mutation(key.dataset)

    def roll_in(self, key: PartitionKey,
                sample: Optional[WarehouseSample] = None) -> None:
        """Reactivate a partition (re-supplying the sample if dropped)."""
        self._catalog.roll_in(key)
        if sample is not None:
            self._store.put(key, sample)
        elif key not in self._store:
            raise ConfigurationError(
                f"partition {key} has no stored sample; pass one to roll_in")
        self._notify_mutation(key.dataset)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, directory: str) -> None:
        """Persist catalog + samples into a directory.

        Uses a :class:`FileStore` in ``directory`` (copying samples over
        if the current store is in-memory) and writes ``catalog.json``.
        """
        os.makedirs(directory, exist_ok=True)
        if isinstance(self._store, FileStore):
            file_store = self._store
        else:
            file_store = FileStore(directory)
            for key in self._store.keys():
                file_store.put(key, self._store.get(key))
        path = os.path.join(directory, _CATALOG_FILE)
        try:
            with open(path, "w", encoding="utf-8") as f:
                json.dump(self._catalog.to_dict(), f, indent=1)
        except OSError as exc:
            raise StorageError(f"cannot write catalog: {exc}") from exc

    @classmethod
    def load(cls, directory: str, *,
             rng: Optional[SplittableRng] = None,
             **kwargs) -> "SampleWarehouse":
        """Reopen a warehouse persisted with :meth:`save`."""
        path = os.path.join(directory, _CATALOG_FILE)
        try:
            with open(path, "r", encoding="utf-8") as f:
                catalog_data = json.load(f)
        except (OSError, ValueError) as exc:
            raise StorageError(f"cannot read catalog: {exc}") from exc
        warehouse = cls(store=FileStore(directory), rng=rng, **kwargs)
        warehouse._catalog = Catalog.from_dict(catalog_data)
        return warehouse

"""Data-set and partition identity.

Figure 1's naming scheme: a data set ``D`` may be parallelized across
streams ``D_1, D_2, ...`` (one per CPU) and each stream partitioned
temporally into ``D_{i,1}, D_{i,2}, ...`` (say, by day).  A
:class:`PartitionKey` pins down one such cell: ``(dataset, stream, seq)``.

Keys serialize to/from the compact string form ``"dataset/stream/seq"``
used as file names by the file-backed sample store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["PartitionKey"]


@dataclass(frozen=True, order=True)
class PartitionKey:
    """Identity of one data-set partition ``D_{stream, seq}``.

    Examples
    --------
    >>> k = PartitionKey("orders.amount", stream=2, seq=5)
    >>> str(k)
    'orders.amount/2/5'
    >>> PartitionKey.parse("orders.amount/2/5") == k
    True
    """

    dataset: str
    stream: int = 0
    seq: int = 0

    def __post_init__(self) -> None:
        if not self.dataset:
            raise ConfigurationError("dataset name must be non-empty")
        if "/" in self.dataset:
            raise ConfigurationError(
                f"dataset name may not contain '/': {self.dataset!r}")
        if self.stream < 0 or self.seq < 0:
            raise ConfigurationError(
                f"stream and seq must be >= 0, got {self.stream}, {self.seq}")

    def __str__(self) -> str:
        return f"{self.dataset}/{self.stream}/{self.seq}"

    @classmethod
    def parse(cls, text: str) -> "PartitionKey":
        """Inverse of ``str(key)``."""
        parts = text.rsplit("/", 2)
        if len(parts) != 3:
            raise ConfigurationError(
                f"not a partition key: {text!r} (want 'dataset/stream/seq')")
        dataset, stream, seq = parts
        try:
            return cls(dataset, int(stream), int(seq))
        except ValueError as exc:
            raise ConfigurationError(
                f"not a partition key: {text!r}") from exc

    def filename(self) -> str:
        """A filesystem-safe name for this key."""
        safe = self.dataset.replace(":", "_")
        return f"{safe}__{self.stream}__{self.seq}.sample.json"

"""Parallel per-partition sampling.

Each partition is sampled independently — that is what makes the paper's
architecture parallel-friendly — so the warehouse only needs a ``map``
over partitions.  Three interchangeable executors are provided:

* :class:`SerialExecutor` — plain loop; deterministic, zero overhead, and
  the right choice for CPU-time benchmarks (the paper reports total CPU
  cost, which parallelism does not reduce).
* :class:`ThreadExecutor` — thread pool; useful when values come from
  I/O-bound sources (the GIL serializes the pure-Python sampling itself).
* :class:`ProcessExecutor` — process pool; true parallel sampling for
  wall-clock speedups.  Work units must be picklable, which is why the
  unit of work is the module-level :func:`sample_partition` driven by a
  plain-data :class:`SampleTask`.

Determinism: every task carries its own derived seed, so results are
identical whichever executor runs them, in whatever order.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import pickle
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from repro.core.hybrid_bernoulli import AlgorithmHB
from repro.core.hybrid_reservoir import AlgorithmHR
from repro.core.multi_purge import MultiPurgeBernoulli
from repro.core.sample import WarehouseSample
from repro.core.stratified_bernoulli import AlgorithmSB
from repro.errors import ConfigurationError
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS
from repro.rng import SplittableRng

__all__ = ["SampleTask", "sample_partition", "SerialExecutor",
           "ThreadExecutor", "ProcessExecutor", "make_sampler"]

T = TypeVar("T")
R = TypeVar("R")

SCHEMES = ("hb", "hr", "sb", "hb-mp")


def make_sampler(scheme: str, *, population_size: Optional[int],
                 bound_values: int, exceedance_p: float,
                 sb_rate: Optional[float], rng: SplittableRng):
    """Instantiate the sampler for a scheme string.

    ``population_size`` is required for "hb" and "hb-mp"; ``sb_rate`` is
    required for "sb".
    """
    if scheme == "hb":
        if population_size is None:
            raise ConfigurationError(
                "Algorithm HB needs the partition size a priori; "
                "use scheme='hr' when it is unknown")
        return AlgorithmHB(population_size, bound_values,
                           exceedance_p=exceedance_p, rng=rng)
    if scheme == "hb-mp":
        if population_size is None:
            raise ConfigurationError(
                "the multiple-purge variant needs the partition size "
                "a priori")
        return MultiPurgeBernoulli(population_size, bound_values,
                                   exceedance_p=exceedance_p, rng=rng)
    if scheme == "hr":
        return AlgorithmHR(bound_values, rng=rng)
    if scheme == "sb":
        if sb_rate is None:
            raise ConfigurationError("Algorithm SB needs an explicit rate")
        return AlgorithmSB(sb_rate, rng=rng)
    raise ConfigurationError(
        f"unknown scheme {scheme!r}; expected one of {SCHEMES}")


@dataclass(frozen=True)
class SampleTask:
    """One picklable unit of work: sample these values with this scheme."""

    values: Sequence
    scheme: str
    bound_values: int
    exceedance_p: float = 0.001
    sb_rate: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.scheme not in SCHEMES:
            raise ConfigurationError(
                f"unknown scheme {self.scheme!r}; expected one of {SCHEMES}")


def sample_partition(task: SampleTask) -> WarehouseSample:
    """Sample one partition (module-level so process pools can run it)."""
    rng = SplittableRng(task.seed)
    sampler = make_sampler(
        task.scheme,
        population_size=len(task.values),
        bound_values=task.bound_values,
        exceedance_p=task.exceedance_p,
        sb_rate=task.sb_rate,
        rng=rng,
    )
    sampler.feed_many(task.values)
    return sampler.finalize()


class _TimedTask:
    """Picklable wrapper: run the task, return ``(seconds, result)``.

    Timing happens inside the worker (thread *or* process), so the
    recorded wall time is the task's own, not queueing overhead.  The
    wrapper pickles whenever ``fn`` does, which keeps the process pool
    working; the measured seconds travel back with the result, so
    worker-process timings land in the parent's registry.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[T], R]) -> None:
        self._fn = fn

    def __call__(self, item: T) -> Tuple[float, R]:
        t0 = monotonic()
        result = self._fn(item)
        return monotonic() - t0, result


def _record_tasks(metric: str,
                  timed: Sequence[Tuple[float, R]]) -> List[R]:
    """Record per-task wall times and unwrap the results."""
    reg = OBS.registry
    # The literal name is bound at the _record_tasks call sites, which
    # the obs-contract lint resolves; this is the one pass-through.
    seconds = reg.histogram(metric)  # repro: noqa[RPR021]
    tasks = reg.counter("parallel.tasks")
    results: List[R] = []
    for elapsed, result in timed:
        seconds.observe(elapsed)
        tasks.inc()
        results.append(result)
    return results


class SerialExecutor:
    """Run tasks one after another in the calling thread."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item, preserving order."""
        if not OBS.enabled:
            return [fn(item) for item in items]
        timed = _TimedTask(fn)
        return _record_tasks("parallel.task.seconds.serial",
                             [timed(item) for item in items])


class ThreadExecutor:
    """Run tasks on a thread pool (I/O-bound or GIL-releasing workloads).

    The pool is created on first use and **persists across ``map``
    calls** — a merge tree maps once per level, and respawning worker
    threads every level used to cost more than a level's worth of
    vectorized merge nodes.  Call :meth:`close` (or use the executor as
    a context manager) to release the threads; a closed executor
    re-creates its pool if mapped again.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers
        self._pool: Optional[concurrent.futures.ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._lock:
                pool = self._pool
                if pool is None:
                    pool = concurrent.futures.ThreadPoolExecutor(
                        max_workers=self._max_workers)
                    self._pool = pool
        return pool

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item concurrently, preserving order."""
        pool = self._ensure_pool()
        if not OBS.enabled:
            return list(pool.map(fn, items))
        return _record_tasks("parallel.task.seconds.thread",
                             list(pool.map(_TimedTask(fn), items)))

    def submit(self, fn: Callable[..., R], *args,
               **kwargs) -> "concurrent.futures.Future[R]":
        """Submit one call to the pool and return its future.

        The serving layer uses this to push blocking warehouse/storage
        work off the event loop (wrap the returned future with
        :func:`asyncio.wrap_future` to await it).
        """
        return self._ensure_pool().submit(fn, *args, **kwargs)

    def close(self) -> None:
        """Shut the pool down, waiting for in-flight tasks.

        This **blocks** the calling thread until every in-flight task
        finishes.  From a coroutine, use :meth:`aclose` instead — the
        blocking wait here would stall the entire event loop, including
        the callbacks the pool's own futures need to complete.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    async def aclose(self) -> None:
        """Awaitable shutdown: like :meth:`close`, off the event loop.

        Swaps the pool out immediately (so new ``map``/``submit`` calls
        build a fresh one) and performs the blocking ``shutdown(wait=
        True)`` on the loop's default executor, keeping the event loop
        responsive while worker threads drain.

        The lock below guards only the pointer swap — a few
        instructions, never held across the shutdown wait or any await
        — so the worst case is a micro-stall behind ``_ensure_pool``,
        not an event-loop park.
        """
        with self._lock:  # repro: noqa[RPR111]
            pool, self._pool = self._pool, None
        if pool is not None:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(
                None, lambda: pool.shutdown(wait=True))

    def __enter__(self) -> "ThreadExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _record_pickle_times(items: Sequence[T]) -> None:
    """Record the parent-side pickling cost of each submitted task.

    ``ProcessPoolExecutor`` pickles every task on submission; that cost
    is otherwise invisible in ``repro obs`` because it lands in the
    parent, not the worker.  Measuring means pickling each item once
    more here — acceptable because this only runs while metrics are
    enabled, and the extra dumps never reaches a worker.
    """
    seconds = OBS.registry.histogram("parallel.task.pickle.seconds")
    for item in items:
        t0 = monotonic()
        pickle.dumps(item)
        seconds.observe(monotonic() - t0)


class ProcessExecutor:
    """Run tasks on a process pool (CPU-bound sampling).

    ``fn`` and items must be picklable — pair this executor with
    :func:`sample_partition` and :class:`SampleTask`.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self._max_workers = max_workers

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Apply ``fn`` to every item across processes, preserving order.

        Tasks are submitted with an explicit chunksize of roughly four
        chunks per worker — enough batching to amortize per-task pickle
        round-trips, small enough that the pool still load-balances.
        The default (chunksize 1) pickles every task's full value list
        as its own IPC message, which dominates wall time for many
        small partitions.
        """
        workers = self._max_workers or os.cpu_count() or 1
        chunksize = max(1, -(-len(items) // (workers * 4)))
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=self._max_workers) as pool:
            if not OBS.enabled:
                return list(pool.map(fn, items, chunksize=chunksize))
            _record_pickle_times(items)
            return _record_tasks(
                "parallel.task.seconds.process",
                list(pool.map(_TimedTask(fn), items, chunksize=chunksize)))

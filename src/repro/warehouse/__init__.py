"""The sample warehouse: catalog, storage, ingest paths, parallel
sampling, temporal rollups, and the sliding-window approximation."""

from repro.warehouse.audit import AuditReport, audit_warehouse
from repro.warehouse.catalog import Catalog, PartitionMeta
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.ingest import StreamIngestor, split_batch
from repro.warehouse.maintenance import (PartitionMaintainer,
                                         apply_deletion, warehouse_delete)
from repro.warehouse.parallel import (ProcessExecutor, SerialExecutor,
                                      ThreadExecutor, sample_partition)
from repro.warehouse.rollup import temporal_rollup
from repro.warehouse.storage import (FileStore, InMemoryStore,
                                     sample_from_dict, sample_to_dict)
from repro.warehouse.views import MaterializedView, ViewManager
from repro.warehouse.warehouse import SampleWarehouse
from repro.warehouse.window import SlidingWindowSampler

__all__ = [
    "SampleWarehouse",
    "PartitionKey",
    "PartitionMeta",
    "Catalog",
    "InMemoryStore",
    "FileStore",
    "sample_to_dict",
    "sample_from_dict",
    "StreamIngestor",
    "split_batch",
    "PartitionMaintainer",
    "apply_deletion",
    "warehouse_delete",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "sample_partition",
    "temporal_rollup",
    "SlidingWindowSampler",
    "ViewManager",
    "MaterializedView",
    "audit_warehouse",
    "AuditReport",
]

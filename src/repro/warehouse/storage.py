"""Sample stores: where the sample warehouse keeps its samples.

Two implementations of the same small interface:

* :class:`InMemoryStore` — a dict; the default for library use and tests.
* :class:`FileStore` — one JSON document per sample in a directory,
  mirroring the paper's setup where per-partition samples are staged on
  disk before merging.  Values must be JSON-representable (ints, floats,
  strings, booleans); keys of the histogram are stored as a list of
  ``[value, count]`` pairs so duplicates survive the round trip exactly.

:func:`sample_to_dict` / :func:`sample_from_dict` are the serialization
functions, exposed because the analytics and bench layers also use them
for experiment logging.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import threading
from typing import Dict, Iterator

from repro.core.footprint import FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import (ConfigurationError, PartitionNotFoundError,
                          StorageError)
from repro.warehouse.dataset import PartitionKey

__all__ = ["InMemoryStore", "FileStore", "sample_to_dict",
           "sample_from_dict"]

_FORMAT_VERSION = 1


def sample_to_dict(sample: WarehouseSample) -> dict:
    """JSON-serializable representation of a sample."""
    return {
        "format": _FORMAT_VERSION,
        "kind": sample.kind.name,
        "population_size": sample.population_size,
        "bound_values": sample.bound_values,
        "rate": sample.rate,
        "scheme": sample.scheme,
        "exceedance_p": sample.exceedance_p,
        "model": {
            "value_bytes": sample.model.value_bytes,
            "count_bytes": sample.model.count_bytes,
        },
        "histogram": [[v, n] for v, n in sample.histogram.pairs()],
    }


def sample_from_dict(data: dict) -> WarehouseSample:
    """Inverse of :func:`sample_to_dict`."""
    try:
        model = FootprintModel(
            value_bytes=data["model"]["value_bytes"],
            count_bytes=data["model"]["count_bytes"],
        )
        histogram = CompactHistogram.from_pairs(
            (v, n) for v, n in data["histogram"])
        return WarehouseSample(
            histogram=histogram,
            kind=SampleKind[data["kind"]],
            population_size=data["population_size"],
            bound_values=data["bound_values"],
            rate=data["rate"],
            scheme=data["scheme"],
            exceedance_p=data["exceedance_p"],
            model=model,
        )
    except (KeyError, TypeError) as exc:
        raise StorageError(f"malformed sample document: {exc}") from exc


class InMemoryStore:
    """Dict-backed sample store (the default).

    Thread-safe: a ``ThreadExecutor`` ingest writes partitions
    concurrently, so every mutation takes ``self._lock`` (the lock
    discipline RPR041 enforces).  Reads stay lock-free — a dict read
    racing a ``put`` sees either the old or the new sample, both fine.
    """

    def __init__(self) -> None:
        self._samples: Dict[PartitionKey, WarehouseSample] = {}
        self._lock = threading.Lock()

    def put(self, key: PartitionKey, sample: WarehouseSample) -> None:
        """Store (or replace) the sample for ``key``."""
        with self._lock:
            self._samples[key] = sample

    def get(self, key: PartitionKey) -> WarehouseSample:
        """Fetch the sample for ``key``.

        Raises :class:`~repro.errors.PartitionNotFoundError` if absent.
        """
        try:
            return self._samples[key]
        except KeyError:
            raise PartitionNotFoundError(str(key)) from None

    def delete(self, key: PartitionKey) -> None:
        """Remove the sample for ``key`` (missing keys raise)."""
        with self._lock:
            try:
                del self._samples[key]
            except KeyError:
                raise PartitionNotFoundError(str(key)) from None

    def __contains__(self, key: PartitionKey) -> bool:
        return key in self._samples

    def __len__(self) -> int:
        return len(self._samples)

    def keys(self) -> Iterator[PartitionKey]:
        """Iterate stored keys (a locked snapshot, safe during puts)."""
        with self._lock:
            return iter(list(self._samples))


class FileStore:
    """Directory-backed sample store (one JSON file per sample).

    Writes are atomic (write to a temp file, then rename), so a crashed
    ingest never leaves a truncated sample behind.

    Parameters
    ----------
    directory:
        Where to keep the sample files; created if missing.
    compress:
        Store documents gzip-compressed (``*.sample.json.gz``).  The
        paper's Section 2 notes compression can further shrink sample
        storage at some processing cost; both plain and compressed files
        are always *readable* regardless of this flag (it only selects
        the write format).
    durability:
        ``"strict"`` (the default) fsyncs each temp file before the
        rename, so an acknowledged ``put`` survives a machine crash —
        the right contract for warehouse partitions, which are the
        source of truth.  ``"relaxed"`` skips the fsync: the rename
        still guarantees readers never see a torn file, but a crash may
        lose recently acknowledged writes.  The serving layer spills
        its merge-result cache with ``"relaxed"`` — every cache entry
        is recomputable from the partitions, so paying an fsync per
        spill would buy nothing (see ``docs/serving.md``).
    """

    _DURABILITY = ("strict", "relaxed")

    def __init__(self, directory: str, *, compress: bool = False,
                 durability: str = "strict") -> None:
        if durability not in self._DURABILITY:
            raise ConfigurationError(
                f"unknown durability {durability!r}; "
                f"expected one of {self._DURABILITY}")
        self._dir = directory
        self._compress = compress
        self._durability = durability
        try:
            os.makedirs(directory, exist_ok=True)
        except OSError as exc:
            raise StorageError(
                f"cannot create store directory {directory!r}: {exc}"
            ) from exc
        # Map key -> filename; rebuilt from disk on construction.
        # Mutated under self._lock: concurrent ingests may put() into
        # the same store from several threads.
        self._index: Dict[PartitionKey, str] = {}
        self._lock = threading.Lock()
        self._load_index()

    @staticmethod
    def _read_document(path: str) -> dict:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as f:
                return json.load(f)
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)

    def _load_index(self) -> None:
        # Called only from __init__, before the store is shared with
        # any other thread — no lock needed (and holding one across
        # the os.listdir/read loop would stall nothing but itself).
        for name in os.listdir(self._dir):
            if not (name.endswith(".sample.json")
                    or name.endswith(".sample.json.gz")):
                continue
            path = os.path.join(self._dir, name)
            try:
                data = self._read_document(path)
                key = PartitionKey.parse(data["key"])
            except (OSError, ValueError, KeyError, EOFError) as exc:
                raise StorageError(
                    f"corrupt sample file {path!r}: {exc}") from exc
            self._index[key] = name

    def _path(self, key: PartitionKey) -> str:
        name = self._index.get(key)
        if name is None:
            name = key.filename() + (".gz" if self._compress else "")
        return os.path.join(self._dir, name)

    def put(self, key: PartitionKey, sample: WarehouseSample) -> None:
        """Store (or replace) the sample for ``key``, atomically."""
        document = sample_to_dict(sample)
        document["key"] = str(key)
        payload = json.dumps(document, separators=(",", ":")) \
            .encode("utf-8")
        with self._lock:
            path = self._path(key)
            if path.endswith(".gz"):
                payload = gzip.compress(payload)
            # The write(-fsync)-then-rename MUST stay under the lock:
            # it is what makes concurrent put()s to the same key
            # atomic.  Under "strict" durability that includes a
            # blocking fsync per put — acceptable because the lock
            # scope is one sample file, and correctness (acknowledged
            # partitions surviving a crash) beats put() concurrency
            # here; "relaxed" callers opt out of exactly this wait.
            fd, tmp = tempfile.mkstemp(  # repro: noqa[RPR103]
                dir=self._dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    f.write(payload)
                    if self._durability == "strict":
                        f.flush()
                        os.fsync(f.fileno())  # repro: noqa[RPR103]
                os.replace(tmp, path)
            except OSError as exc:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise StorageError(
                    f"cannot write {path!r}: {exc}") from exc
            self._index[key] = os.path.basename(path)

    def get(self, key: PartitionKey) -> WarehouseSample:
        """Load the sample for ``key`` from disk."""
        if key not in self._index:
            raise PartitionNotFoundError(str(key))
        path = self._path(key)
        try:
            data = self._read_document(path)
        except (OSError, ValueError, EOFError) as exc:
            raise StorageError(f"cannot read {path!r}: {exc}") from exc
        return sample_from_dict(data)

    def delete(self, key: PartitionKey) -> None:
        """Remove the sample file for ``key``."""
        with self._lock:
            if key not in self._index:
                raise PartitionNotFoundError(str(key))
            path = self._path(key)
            try:
                # Unlink under the lock so a racing put() cannot
                # resurrect the file between unlink and index update.
                os.unlink(path)  # repro: noqa[RPR103]
            except OSError as exc:
                raise StorageError(
                    f"cannot delete {path!r}: {exc}") from exc
            del self._index[key]

    def __contains__(self, key: PartitionKey) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[PartitionKey]:
        """Iterate stored keys (a locked snapshot, safe during puts)."""
        with self._lock:
            return iter(list(self._index))

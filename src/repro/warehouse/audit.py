"""Warehouse consistency auditing.

A sample warehouse accumulates state through many independent code paths
(parallel ingests, stream cuts, roll-in/out, deletions, foreign-sample
imports).  :func:`audit_warehouse` sweeps the whole thing and verifies
the cross-component invariants that no single operation can check alone:

* every *active* catalog entry has a stored sample, and the stored
  sample's population/size/kind/scheme match the catalog record;
* every stored sample passes its own invariants (footprint bound,
  size <= population, exhaustive-covers-population);
* partition keys are internally consistent (key.dataset matches the
  dataset they are registered under);
* per-dataset totals add up.

The audit never mutates anything; it returns a structured report, so an
operator can alert on ``report.ok`` or log ``report.problems``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import PartitionNotFoundError, ReproError

__all__ = ["AuditProblem", "AuditReport", "audit_warehouse"]


@dataclass(frozen=True)
class AuditProblem:
    """One inconsistency found by the audit."""

    severity: str      # "error" | "warning"
    dataset: str
    partition: str     # str(key) or "" for dataset-level problems
    message: str

    def __str__(self) -> str:
        where = self.partition or self.dataset
        return f"[{self.severity}] {where}: {self.message}"


@dataclass
class AuditReport:
    """Outcome of a full warehouse audit."""

    datasets_checked: int = 0
    partitions_checked: int = 0
    samples_verified: int = 0
    problems: List[AuditProblem] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings allowed)."""
        return not any(p.severity == "error" for p in self.problems)

    @property
    def errors(self) -> List[AuditProblem]:
        """Only the error-severity problems."""
        return [p for p in self.problems if p.severity == "error"]

    def summary(self) -> str:
        """One-line human summary."""
        status = "OK" if self.ok else "INCONSISTENT"
        return (f"{status}: {self.datasets_checked} dataset(s), "
                f"{self.partitions_checked} partition(s), "
                f"{self.samples_verified} sample(s) verified, "
                f"{len(self.errors)} error(s), "
                f"{len(self.problems) - len(self.errors)} warning(s)")


def audit_warehouse(warehouse) -> AuditReport:
    """Run every consistency check; returns an :class:`AuditReport`."""
    report = AuditReport()
    catalog = warehouse.catalog
    store = warehouse.store

    for dataset in catalog.datasets():
        report.datasets_checked += 1
        metas = catalog.partitions(dataset, only_active=False)
        for meta in metas:
            report.partitions_checked += 1
            key = meta.key
            if key.dataset != dataset:
                report.problems.append(AuditProblem(
                    "error", dataset, str(key),
                    f"registered under {dataset!r} but key says "
                    f"{key.dataset!r}"))
                continue

            try:
                sample = store.get(key)
            except PartitionNotFoundError:
                severity = "error" if meta.active else "warning"
                report.problems.append(AuditProblem(
                    severity, dataset, str(key),
                    "no stored sample"
                    + ("" if meta.active else " (partition is rolled out)")))
                continue

            report.samples_verified += 1
            try:
                sample.check_invariants()
            except ReproError as exc:
                report.problems.append(AuditProblem(
                    "error", dataset, str(key),
                    f"sample invariant violation: {exc}"))

            if sample.population_size != meta.population_size:
                report.problems.append(AuditProblem(
                    "error", dataset, str(key),
                    f"catalog population {meta.population_size} != "
                    f"stored sample population {sample.population_size}"))
            if sample.size != meta.sample_size:
                report.problems.append(AuditProblem(
                    "error", dataset, str(key),
                    f"catalog sample size {meta.sample_size} != "
                    f"stored sample size {sample.size}"))
            if sample.kind is not meta.kind:
                report.problems.append(AuditProblem(
                    "error", dataset, str(key),
                    f"catalog kind {meta.kind.name} != stored kind "
                    f"{sample.kind.name}"))
            if sample.scheme != meta.scheme:
                report.problems.append(AuditProblem(
                    "warning", dataset, str(key),
                    f"catalog scheme {meta.scheme!r} != stored scheme "
                    f"{sample.scheme!r}"))

    # Orphaned samples: stored but not cataloged anywhere.
    known = {m.key
             for ds in catalog.datasets()
             for m in catalog.partitions(ds, only_active=False)}
    for key in store.keys():
        if key not in known:
            report.problems.append(AuditProblem(
                "warning", key.dataset, str(key),
                "stored sample has no catalog entry (orphan)"))

    return report

"""Deletion maintenance for warehouse samples.

The paper's Section 2 scenario includes "periodic deletions" in the
parent warehouse; the related work it builds on handles them either with
counting samples [7] (non-uniform) or with set-level roll-out.  This
module adds *uniformity-preserving* per-element deletion to our samples,
following the exchangeability argument used for counting samples and for
Gemulla-style "random pairing":

When one occurrence of value ``v`` is deleted from a partition of which
the sample holds ``c_S(v)`` of the parent's ``c_D(v)`` occurrences, the
deleted occurrence is — by symmetry among indistinguishable occurrences —
in the sample with probability exactly ``c_S(v) / c_D(v)``.  Removing it
in that event leaves:

* an **exhaustive** sample exhaustive (the removal is deterministic);
* a **Bernoulli(q)** sample a Bernoulli(q) sample of the shrunken
  partition (inclusions stay independent coin flips);
* a **reservoir** sample a simple random sample of the shrunken
  partition, of size ``k`` or ``k - 1`` depending on the coin.

Deletions can therefore only *shrink* a bounded sample — there is no way
to grow it back without re-reading base data.  :class:`PartitionMaintainer`
tracks the attrition and raises a ``needs_refresh`` flag once the sample
falls below a configurable fraction of its bound, signalling that the
partition should be re-sampled at the next opportunity (e.g. the next
roll-in cycle).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey

__all__ = ["apply_deletion", "PartitionMaintainer", "warehouse_delete"]


def apply_deletion(sample: WarehouseSample, value: object,
                   parent_count: Optional[int],
                   rng: SplittableRng) -> WarehouseSample:
    """One occurrence of ``value`` was deleted from the parent partition.

    Parameters
    ----------
    sample:
        The partition's current sample.
    value:
        The deleted value.
    parent_count:
        Occurrences of ``value`` in the parent *before* this deletion.
        Exhaustive samples know it themselves (``None`` allowed); for
        Bernoulli/reservoir samples the caller must supply it (the
        full-scale warehouse processes the deletion anyway and knows the
        multiplicity).
    rng:
        Randomness for the membership coin.

    Returns a new sample of the shrunken partition; the input is not
    modified.  Raises if the parent cannot contain the value.
    """
    if sample.population_size <= 0:
        raise ConfigurationError("cannot delete from an empty partition")

    in_sample = sample.histogram.count(value)

    if sample.kind is SampleKind.EXHAUSTIVE:
        if in_sample == 0:
            raise ConfigurationError(
                f"exhaustive sample has no occurrence of {value!r}; "
                f"the deletion cannot apply to this partition")
        histogram = sample.histogram.copy()
        histogram.remove(value)
        return replace(sample, histogram=histogram,
                       population_size=sample.population_size - 1)

    if parent_count is None:
        raise ConfigurationError(
            "parent_count is required to delete from a sampled "
            "(non-exhaustive) partition")
    if parent_count < max(1, in_sample):
        raise ConfigurationError(
            f"parent_count={parent_count} inconsistent: sample already "
            f"holds {in_sample} occurrences of {value!r}")

    # The deleted occurrence is in the sample w.p. c_S(v) / c_D(v).
    if in_sample > 0 and rng.bernoulli(in_sample / parent_count):
        histogram = sample.histogram.copy()
        histogram.remove(value)
    else:
        histogram = sample.histogram
    return replace(sample, histogram=histogram,
                   population_size=sample.population_size - 1)


class PartitionMaintainer:
    """Applies a stream of deletions to one partition's sample.

    Parameters
    ----------
    sample:
        The partition's starting sample.
    rng:
        Randomness for membership coins.
    refresh_fraction:
        ``needs_refresh`` turns on once the sample holds fewer than
        ``refresh_fraction * original_size`` elements (and the parent is
        still big enough that a fresh sample would be larger).

    Examples
    --------
    >>> from repro import AlgorithmHR, SplittableRng
    >>> rng = SplittableRng(1)
    >>> hr = AlgorithmHR(bound_values=32, rng=rng.spawn("s"))
    >>> hr.feed_many(list(range(1000)))
    >>> m = PartitionMaintainer(hr.finalize(), rng=rng.spawn("m"))
    >>> m.delete(5, parent_count=1)
    >>> m.sample.population_size
    999
    """

    def __init__(self, sample: WarehouseSample, *, rng: SplittableRng,
                 refresh_fraction: float = 0.5) -> None:
        if not 0.0 < refresh_fraction <= 1.0:
            raise ConfigurationError(
                f"refresh_fraction must be in (0, 1], "
                f"got {refresh_fraction}")
        self._sample = sample
        self._rng = rng
        self._fraction = refresh_fraction
        self._original_size = max(1, sample.size)
        self._deletions = 0

    @property
    def sample(self) -> WarehouseSample:
        """The current (maintained) sample."""
        return self._sample

    @property
    def deletions_applied(self) -> int:
        """How many parent deletions have been processed."""
        return self._deletions

    @property
    def needs_refresh(self) -> bool:
        """True when attrition warrants re-sampling the partition."""
        if self._sample.kind is SampleKind.EXHAUSTIVE:
            return False
        if self._sample.size >= self._fraction * self._original_size:
            return False
        # Only worth refreshing if the parent could fill a bigger sample.
        return self._sample.population_size > self._sample.size

    def delete(self, value: object,
               parent_count: Optional[int] = None) -> None:
        """Process one parent deletion of ``value``."""
        self._sample = apply_deletion(self._sample, value, parent_count,
                                      self._rng)
        self._deletions += 1


def warehouse_delete(warehouse, key: PartitionKey, value: object,
                     parent_count: Optional[int] = None) -> None:
    """Apply one deletion to a stored partition sample, in place.

    Convenience wrapper: loads the sample from the warehouse's store,
    applies :func:`apply_deletion` with a key-derived RNG substream, and
    writes back the sample, the catalog's population count, and the
    partition synopsis (decremented exactly — the deleted value is in
    hand, so the moments stay current; see docs/aqp.md).
    """
    sample = warehouse.store.get(key)
    rng = warehouse._rng.spawn("delete", str(key),
                               warehouse.catalog.get(key).population_size)
    updated = apply_deletion(sample, value, parent_count, rng)
    warehouse.store.put(key, updated)
    meta = warehouse.catalog.get(key)
    meta.population_size = updated.population_size
    meta.sample_size = updated.size
    if meta.synopsis is not None:
        meta.synopsis = meta.synopsis.without(value)
    warehouse._notify_mutation(key.dataset)

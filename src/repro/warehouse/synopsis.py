"""Per-partition summary statistics (synopses) for the AQP planner.

A :class:`PartitionSynopsis` is the cheap catalog-resident summary the
error-bounded query planner (``docs/aqp.md``) plans against: the
partition's element count, first two numeric moments, value range, and
top-k heavy hitters.  Synopses come in two flavours:

* **exact** — computed from the raw values while they stream through
  ingest (batch chunks and stream arrivals are both seen element by
  element), so ``total`` / ``total_sq`` are the partition's true
  moments.  An exact numeric synopsis can answer a predicate-free
  SUM / AVG / COUNT contribution with zero variance.
* **estimated** — derived from a stored sample when the raw data is
  gone (``SampleWarehouse.ingest_sample`` rolling in a sample built
  elsewhere).  Totals are Horvitz–Thompson scale-ups; ``basis``
  records how many sampled values they rest on, which is what the
  planner's conservative error model prices them with.

Synopses **merge** (for temporal rollups: moments add, ranges widen,
heavy-hitter counters sum) and support exact **deletion decrements**
(maintenance knows the deleted value, so ``total -= v`` is exact; the
recorded min/max degrade to conservative bounds, which is all the
planner needs).  Non-numeric partitions keep count and heavy hitters
but carry no moments — the planner then refuses to certify numeric
aggregates from them and falls back to merge-all.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

__all__ = ["PartitionSynopsis", "SynopsisAccumulator", "DEFAULT_TOP_K"]

#: How many heavy hitters a synopsis retains by default.
DEFAULT_TOP_K = 8


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _top_pairs(counter: Counter, top: int) -> Tuple[Tuple[object, float], ...]:
    """The ``top`` largest (value, count) pairs, count-desc then value-repr
    asc so the result is deterministic for equal counts."""
    ranked = sorted(counter.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    return tuple((v, float(c)) for v, c in ranked[:top])


@dataclass(frozen=True)
class PartitionSynopsis:
    """Summary statistics of one parent partition.

    ``count`` is the partition's (known) element count.  ``total`` /
    ``total_sq`` / ``minimum`` / ``maximum`` are ``None`` for
    non-numeric partitions.  ``exact`` says whether the moments were
    computed from the raw data (or merged/decremented exactly from
    such); ``basis`` is the number of observed values behind them —
    equal to ``count`` when exact, the sample size when estimated.
    """

    count: int
    total: Optional[float] = None
    total_sq: Optional[float] = None
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    top_k: Tuple[Tuple[object, float], ...] = ()
    exact: bool = True
    basis: int = 0

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    @property
    def numeric(self) -> bool:
        """True when the synopsis carries usable numeric moments."""
        return self.total is not None and self.total_sq is not None

    @property
    def mean(self) -> float:
        """Mean value implied by the moments."""
        if not self.numeric or self.count <= 0:
            raise ConfigurationError(
                "synopsis has no numeric moments to take a mean of")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance implied by the moments (clamped >= 0)."""
        if not self.numeric or self.count <= 0:
            raise ConfigurationError(
                "synopsis has no numeric moments to take a variance of")
        mean = self.total / self.count
        return max(0.0, self.total_sq / self.count - mean * mean)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_values(cls, values: Sequence, *,
                    top: int = DEFAULT_TOP_K) -> "PartitionSynopsis":
        """Exact synopsis of a raw value sequence (the ingest path)."""
        acc = SynopsisAccumulator(top=top)
        for v in values:
            acc.feed(v)
        return acc.finalize()

    @classmethod
    def from_sample(cls, sample: WarehouseSample, *,
                    top: int = DEFAULT_TOP_K) -> "PartitionSynopsis":
        """Estimated synopsis scaled up from a stored sample.

        Totals are Horvitz–Thompson scale-ups (``scale_factor`` per
        kind); an exhaustive sample yields an exact synopsis.  An empty
        non-exhaustive sample of a non-empty parent gives a synopsis
        with no usable moments (``basis == 0``).
        """
        exact = sample.kind is SampleKind.EXHAUSTIVE
        scale = sample.scale_factor
        counter: Counter = Counter()
        total = 0.0
        total_sq = 0.0
        lo: Optional[float] = None
        hi: Optional[float] = None
        numeric = True
        seen = 0
        for value, cnt in sample.histogram.pairs():
            counter[value] += cnt * scale
            seen += cnt
            if numeric and _is_number(value):
                x = float(value)
                total += x * cnt * scale
                total_sq += x * x * cnt * scale
                lo = x if lo is None else min(lo, x)
                hi = x if hi is None else max(hi, x)
            else:
                numeric = False
        if seen == 0 and sample.population_size > 0 and not exact:
            numeric = False
        return cls(
            count=sample.population_size,
            total=total if numeric else None,
            total_sq=total_sq if numeric else None,
            minimum=lo if numeric else None,
            maximum=hi if numeric else None,
            top_k=_top_pairs(counter, top),
            exact=exact,
            basis=sample.population_size if exact else seen,
        )

    @classmethod
    def merge(cls, synopses: Iterable["PartitionSynopsis"], *,
              top: int = DEFAULT_TOP_K) -> "PartitionSynopsis":
        """Synopsis of the union of disjoint partitions.

        Moments add, ranges widen, heavy-hitter counters sum (then
        re-truncate to ``top``).  The merge is exact iff every input
        is; it is numeric iff every input is.
        """
        items: List[PartitionSynopsis] = list(synopses)
        if not items:
            raise ConfigurationError("cannot merge zero synopses")
        numeric = all(s.numeric for s in items)
        counter: Counter = Counter()
        for s in items:
            for value, cnt in s.top_k:
                counter[value] += cnt
        return cls(
            count=sum(s.count for s in items),
            total=sum(s.total for s in items) if numeric else None,
            total_sq=sum(s.total_sq for s in items) if numeric else None,
            minimum=min(s.minimum for s in items) if numeric else None,
            maximum=max(s.maximum for s in items) if numeric else None,
            top_k=_top_pairs(counter, top),
            exact=all(s.exact for s in items),
            basis=sum(s.basis for s in items),
        )

    def without(self, value: object) -> "PartitionSynopsis":
        """The synopsis after one parent deletion of ``value``.

        Count and moments decrement exactly (maintenance knows the
        deleted value); the recorded ``minimum`` / ``maximum`` stay as
        valid *bounds* — deletions can only shrink the true range.
        """
        if self.count <= 0:
            raise ConfigurationError(
                "cannot decrement a synopsis of an empty partition")
        numeric = self.numeric and _is_number(value)
        top_k = tuple(
            (v, c - 1.0 if v == value else c)
            for v, c in self.top_k
            if not (v == value and c <= 1.0))
        return PartitionSynopsis(
            count=self.count - 1,
            total=self.total - float(value) if numeric else self.total,
            total_sq=(self.total_sq - float(value) ** 2
                      if numeric else self.total_sq),
            minimum=self.minimum,
            maximum=self.maximum,
            top_k=top_k,
            exact=self.exact,
            basis=max(0, self.basis - 1),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable form (nested in the catalog record)."""
        return {
            "count": self.count,
            "total": self.total,
            "total_sq": self.total_sq,
            "min": self.minimum,
            "max": self.maximum,
            "top_k": [[v, c] for v, c in self.top_k],
            "exact": self.exact,
            "basis": self.basis,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PartitionSynopsis":
        """Inverse of :meth:`to_dict`."""
        return cls(
            count=data["count"],
            total=data.get("total"),
            total_sq=data.get("total_sq"),
            minimum=data.get("min"),
            maximum=data.get("max"),
            top_k=tuple((v, float(c)) for v, c in data.get("top_k", [])),
            exact=data.get("exact", True),
            basis=data.get("basis", 0),
        )


class SynopsisAccumulator:
    """Streaming builder for an exact :class:`PartitionSynopsis`.

    The stream ingestor feeds every arrival through one of these in
    parallel with the sampler, so stream-cut partitions get exact
    synopses without a second pass.  O(1) per arrival plus one counter
    update; memory is bounded by the partition's distinct-value count
    (partitions are policy-bounded).
    """

    __slots__ = ("_top", "_count", "_total", "_total_sq", "_min", "_max",
                 "_numeric", "_counter")

    def __init__(self, *, top: int = DEFAULT_TOP_K) -> None:
        if top <= 0:
            raise ConfigurationError(f"top must be positive, got {top}")
        self._top = top
        self._count = 0
        self._total = 0.0
        self._total_sq = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._numeric = True
        self._counter: Counter = Counter()

    @property
    def count(self) -> int:
        """Arrivals observed so far."""
        return self._count

    def feed(self, value: object) -> None:
        """Observe one arrival."""
        self._count += 1
        self._counter[value] += 1
        if self._numeric and _is_number(value):
            x = float(value)
            self._total += x
            self._total_sq += x * x
            self._min = x if self._min is None else min(self._min, x)
            self._max = x if self._max is None else max(self._max, x)
        else:
            self._numeric = False

    def finalize(self) -> PartitionSynopsis:
        """The exact synopsis of everything fed so far."""
        numeric = self._numeric and self._count > 0
        return PartitionSynopsis(
            count=self._count,
            total=self._total if numeric else None,
            total_sq=self._total_sq if numeric else None,
            minimum=self._min if numeric else None,
            maximum=self._max if numeric else None,
            top_k=_top_pairs(self._counter, self._top),
            exact=True,
            basis=self._count,
        )

"""Ingest paths: batch division and stream partitioning (Section 2).

Two ways values reach the warehouse:

* **Batch** — a bulk load is *divided* into ``k`` contiguous partitions
  (:func:`split_batch`) so they can be sampled independently in parallel;
  the warehouse drives this directly.
* **Stream** — a :class:`StreamIngestor` consumes singleton arrivals and
  *splits* the stream temporally into partitions, finalizing the current
  partition (and its sample) according to a pluggable policy:

  - :class:`CountPolicy` — cut every ``n`` arrivals (e.g. daily loads of
    known size).  Works with every scheme, including HB (the count is the
    a-priori partition size HB needs).
  - :class:`FractionPolicy` — the paper's adaptive rule for fluctuating
    arrival rates: keep a fixed-size sample and cut as soon as the ratio
    of sampled data to observed parent data falls to a minimum fraction.
    Requires a bounded-sample scheme whose size stalls while the parent
    grows (``hr``); HB cannot be used because the partition size is not
    known in advance.
"""

from __future__ import annotations

import inspect
from typing import Iterable, List, Optional, Protocol, Sequence, TypeVar

from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS
from repro.obs.tracing import span
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.parallel import make_sampler
from repro.warehouse.synopsis import SynopsisAccumulator

__all__ = ["split_batch", "CountPolicy", "FractionPolicy", "StreamIngestor"]

T = TypeVar("T")


def split_batch(values: Sequence[T], partitions: int) -> List[Sequence[T]]:
    """Divide a batch into ``partitions`` contiguous, near-equal chunks.

    The first ``len(values) % partitions`` chunks get one extra element,
    so sizes differ by at most 1 and nothing is dropped.

    Examples
    --------
    >>> [list(c) for c in split_batch([1, 2, 3, 4, 5], 2)]
    [[1, 2, 3], [4, 5]]
    """
    if partitions <= 0:
        raise ConfigurationError(
            f"partitions must be positive, got {partitions}")
    n = len(values)
    base, extra = divmod(n, partitions)
    chunks: List[Sequence[T]] = []
    start = 0
    for i in range(partitions):
        size = base + (1 if i < extra else 0)
        chunks.append(values[start:start + size])
        start += size
    return chunks


class PartitionPolicy(Protocol):
    """Decides when a stream partition should be finalized."""

    def should_cut(self, sampler) -> bool:
        """True when the current partition should be closed now."""
        ...  # pragma: no cover - protocol

    def expected_size(self) -> Optional[int]:
        """The a-priori partition size, if the policy fixes one."""
        ...  # pragma: no cover - protocol


class CountPolicy:
    """Cut the stream every ``count`` arrivals."""

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        self._count = count

    def should_cut(self, sampler) -> bool:
        """Cut once the sampler has seen ``count`` elements."""
        return sampler.seen >= self._count

    def expected_size(self) -> Optional[int]:
        """The fixed partition size (usable as HB's ``N``)."""
        return self._count


class FractionPolicy:
    """Cut when sample/parent ratio drops to ``min_fraction`` (Section 2).

    "We wait until the ratio of sampled data to observed parent data hits
    the specified lower bound, at which point we finalize the current
    data partition (and corresponding sample), and begin a new partition."
    """

    def __init__(self, min_fraction: float) -> None:
        if not 0.0 < min_fraction <= 1.0:
            raise ConfigurationError(
                f"min_fraction must be in (0, 1], got {min_fraction}")
        self._min_fraction = min_fraction

    def should_cut(self, sampler) -> bool:
        """Cut once the realized sampling fraction reaches the floor."""
        if sampler.seen == 0:
            return False
        return sampler.sample_size / sampler.seen <= self._min_fraction

    def expected_size(self) -> Optional[int]:
        """Unknown in advance — that is the point of the policy."""
        return None


class StreamIngestor:
    """Samples a stream, splitting it into partitions on the fly.

    Produced samples are handed to ``sink(key, sample)`` — normally the
    warehouse's internal registration hook — as partitions finalize.

    Parameters
    ----------
    dataset:
        Data-set name for the produced partition keys.
    scheme:
        Sampling scheme ("hr", "hb", "sb", "hb-mp"); HB-family schemes
        require a :class:`CountPolicy`.
    bound_values:
        Footprint bound ``n_F`` for the per-partition samples.
    policy:
        When to cut partitions.
    sink:
        Callback receiving ``(PartitionKey, WarehouseSample)``.
    rng:
        Randomness; each partition gets a spawned child stream.
    stream:
        Stream index (for CPU-split streams, Figure 1's ``D_i``).
    start_seq:
        First temporal sequence number to assign.
    """

    def __init__(self, dataset: str, *, scheme: str, bound_values: int,
                 policy: PartitionPolicy, sink, rng: SplittableRng,
                 exceedance_p: float = 0.001,
                 sb_rate: Optional[float] = None,
                 stream: int = 0, start_seq: int = 0) -> None:
        if scheme in ("hb", "hb-mp") and policy.expected_size() is None:
            raise ConfigurationError(
                "HB-family schemes need an a-priori partition size; "
                "use CountPolicy or scheme='hr'")
        self._dataset = dataset
        self._scheme = scheme
        self._bound = bound_values
        self._policy = policy
        self._sink = sink
        self._rng = rng
        self._p = exceedance_p
        self._sb_rate = sb_rate
        self._stream = stream
        self._seq = start_seq
        self._closed = False
        self._sampler = None
        self._synopsis: Optional[SynopsisAccumulator] = None
        self._emitted: List[PartitionKey] = []
        self._partition_t0 = monotonic()
        # The warehouse sink also takes the partition's exact synopsis
        # (every arrival passes through here, so it is free to build);
        # plain two-argument sinks keep working unchanged.
        try:
            inspect.signature(sink).bind(None, None, None)
            self._sink_takes_synopsis = True
        except TypeError:
            self._sink_takes_synopsis = False

    @property
    def emitted(self) -> List[PartitionKey]:
        """Keys of partitions finalized so far (in order)."""
        return list(self._emitted)

    @property
    def current_seen(self) -> int:
        """Arrivals in the (open) current partition."""
        return self._sampler.seen if self._sampler is not None else 0

    def _new_sampler(self):
        return make_sampler(
            self._scheme,
            population_size=self._policy.expected_size(),
            bound_values=self._bound,
            exceedance_p=self._p,
            sb_rate=self._sb_rate,
            rng=self._rng.spawn(self._dataset, self._stream, self._seq),
        )

    def feed(self, value: T) -> None:
        """Observe one stream arrival."""
        if self._closed:
            raise ProtocolError("ingestor already closed")
        if self._sampler is None:
            self._sampler = self._new_sampler()
            self._synopsis = SynopsisAccumulator()
            self._partition_t0 = monotonic()
        self._sampler.feed(value)
        self._synopsis.feed(value)
        if self._policy.should_cut(self._sampler):
            self._finalize_current()

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a sequence of stream arrivals."""
        for v in values:
            self.feed(v)

    def _finalize_current(self) -> None:
        assert self._sampler is not None
        seen = self._sampler.seen
        with span("ingest.partition", dataset=self._dataset,
                  stream=self._stream, seq=self._seq, arrivals=seen):
            sample: WarehouseSample = self._sampler.finalize()
            key = PartitionKey(self._dataset, self._stream, self._seq)
            if self._sink_takes_synopsis:
                self._sink(key, sample, self._synopsis.finalize())
            else:
                self._sink(key, sample)
        if OBS.enabled:
            elapsed = monotonic() - self._partition_t0
            reg = OBS.registry
            reg.counter("ingest.stream.cuts").inc()
            reg.counter("ingest.stream.arrivals").add(seen)
            reg.histogram("ingest.stream.partition.seconds").observe(elapsed)
            reg.histogram("ingest.stream.partition.arrivals").observe(seen)
            if elapsed > 0.0:
                reg.gauge("ingest.stream.arrival_rate").set(seen / elapsed)
        self._emitted.append(key)
        self._seq += 1
        self._sampler = None
        self._synopsis = None

    def close(self) -> List[PartitionKey]:
        """Finalize any open partition and return all emitted keys."""
        if self._closed:
            raise ProtocolError("ingestor already closed")
        if self._sampler is not None and self._sampler.seen > 0:
            self._finalize_current()
        self._sampler = None
        self._closed = True
        return self.emitted

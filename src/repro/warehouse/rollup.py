"""Temporal rollups: daily samples -> weekly/monthly/... samples.

Section 2's warehousing scenario partitions each incoming stream
temporally ("one partition per day") and combines daily samples into
weekly, monthly, or yearly samples for analysis.  :func:`temporal_rollup`
performs that combination over a warehouse dataset by grouping partition
labels and merging each group into a uniform sample of the group's union.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.merge import merge_tree
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey

__all__ = ["temporal_rollup", "group_by_window"]


def group_by_window(keys: List[PartitionKey],
                    window: int) -> List[List[PartitionKey]]:
    """Group keys into consecutive windows of ``window`` partitions.

    The natural grouping for "7 dailies -> 1 weekly".  The final group
    may be shorter.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    return [keys[i:i + window] for i in range(0, len(keys), window)]


def temporal_rollup(warehouse, dataset: str, *,
                    window: Optional[int] = None,
                    group_fn: Optional[Callable[[PartitionKey], str]] = None,
                    rng: Optional[SplittableRng] = None,
                    mode: str = "balanced"
                    ) -> Dict[str, WarehouseSample]:
    """Merge a dataset's partitions into coarser temporal units.

    Exactly one grouping must be given:

    * ``window=n`` — consecutive runs of ``n`` partitions (groups are
      named ``"w0", "w1", ...``), or
    * ``group_fn`` — maps each :class:`PartitionKey` to a group name
      (e.g. a month derived from the day encoded in ``key.seq``).

    Returns ``{group_name: merged_sample}``; group contents merge as a
    ``mode`` merge tree.  The warehouse itself is not modified — callers
    can re-ingest the rollups under a derived dataset name if they want
    them cataloged (see ``examples/temporal_rollup.py``).
    """
    if (window is None) == (group_fn is None):
        raise ConfigurationError("give exactly one of window and group_fn")
    rng = rng if rng is not None else SplittableRng()
    keys = warehouse.partition_keys(dataset)
    if not keys:
        raise ConfigurationError(f"dataset {dataset!r} has no partitions")

    groups: Dict[str, List[PartitionKey]] = {}
    if window is not None:
        for i, bucket in enumerate(group_by_window(keys, window)):
            groups[f"w{i}"] = bucket
    else:
        assert group_fn is not None
        for key in keys:
            groups.setdefault(group_fn(key), []).append(key)

    out: Dict[str, WarehouseSample] = {}
    for name, bucket in groups.items():
        samples = [warehouse.sample_for(k) for k in bucket]
        out[name] = merge_tree(samples, rng=rng.spawn("rollup", name),
                               mode=mode)
    return out

"""Temporal rollups: daily samples -> weekly/monthly/... samples.

Section 2's warehousing scenario partitions each incoming stream
temporally ("one partition per day") and combines daily samples into
weekly, monthly, or yearly samples for analysis.  :func:`temporal_rollup`
performs that combination over a warehouse dataset by grouping partition
labels and merging each group into a uniform sample of the group's union.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.merge import merge_tree
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError
from repro.rng import SplittableRng
from repro.warehouse.dataset import PartitionKey
from repro.warehouse.synopsis import PartitionSynopsis

__all__ = ["temporal_rollup", "temporal_rollup_with_synopses",
           "group_by_window"]


def group_by_window(keys: List[PartitionKey],
                    window: int) -> List[List[PartitionKey]]:
    """Group keys into consecutive windows of ``window`` partitions.

    The natural grouping for "7 dailies -> 1 weekly".  The final group
    may be shorter.
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    return [keys[i:i + window] for i in range(0, len(keys), window)]


def temporal_rollup(warehouse, dataset: str, *,
                    window: Optional[int] = None,
                    group_fn: Optional[Callable[[PartitionKey], str]] = None,
                    rng: Optional[SplittableRng] = None,
                    mode: str = "balanced"
                    ) -> Dict[str, WarehouseSample]:
    """Merge a dataset's partitions into coarser temporal units.

    Exactly one grouping must be given:

    * ``window=n`` — consecutive runs of ``n`` partitions (groups are
      named ``"w0", "w1", ...``), or
    * ``group_fn`` — maps each :class:`PartitionKey` to a group name
      (e.g. a month derived from the day encoded in ``key.seq``).

    Returns ``{group_name: merged_sample}``; group contents merge as a
    ``mode`` merge tree.  The warehouse itself is not modified — callers
    can re-ingest the rollups under a derived dataset name if they want
    them cataloged (see ``examples/temporal_rollup.py``).
    """
    with_synopses = temporal_rollup_with_synopses(
        warehouse, dataset, window=window, group_fn=group_fn, rng=rng,
        mode=mode)
    return {name: sample for name, (sample, _) in with_synopses.items()}


def temporal_rollup_with_synopses(
        warehouse, dataset: str, *,
        window: Optional[int] = None,
        group_fn: Optional[Callable[[PartitionKey], str]] = None,
        rng: Optional[SplittableRng] = None,
        mode: str = "balanced"
) -> Dict[str, Tuple[WarehouseSample, Optional[PartitionSynopsis]]]:
    """:func:`temporal_rollup` plus each group's merged synopsis.

    Summary statistics merge exactly alongside the samples (moments
    add, ranges widen, heavy-hitter counters sum), so rolled-up
    partitions stay fully plannable.  A group whose members include a
    synopsis-less partition gets ``None`` — estimating would silently
    mix exact and estimated moments.
    """
    if (window is None) == (group_fn is None):
        raise ConfigurationError("give exactly one of window and group_fn")
    rng = rng if rng is not None else SplittableRng()
    keys = warehouse.partition_keys(dataset)
    if not keys:
        raise ConfigurationError(f"dataset {dataset!r} has no partitions")

    groups: Dict[str, List[PartitionKey]] = {}
    if window is not None:
        for i, bucket in enumerate(group_by_window(keys, window)):
            groups[f"w{i}"] = bucket
    else:
        assert group_fn is not None
        for key in keys:
            groups.setdefault(group_fn(key), []).append(key)

    catalog = warehouse.catalog
    out: Dict[str, Tuple[WarehouseSample, Optional[PartitionSynopsis]]] = {}
    for name, bucket in groups.items():
        samples = [warehouse.sample_for(k) for k in bucket]
        merged = merge_tree(samples, rng=rng.spawn("rollup", name),
                            mode=mode)
        synopses = [catalog.get(k).synopsis for k in bucket]
        synopsis = (PartitionSynopsis.merge(synopses)
                    if all(s is not None for s in synopses) else None)
        out[name] = (merged, synopsis)
    return out

"""Sliding-window sampling by partition roll-in/roll-out.

The paper positions the warehouse as an *approximation* of moving-window
stream-sampling algorithms [1, 11]: keep one sample per recent partition
(say, per day); as a new partition's sample rolls in, the oldest rolls
out; the window sample is the merge of the live per-partition samples.
The window therefore advances in partition-sized hops rather than
element-by-element — that granularity is the approximation, and what
buys parallelism and mergeability.

:class:`SlidingWindowSampler` packages the pattern for direct use on a
stream, independent of a full warehouse.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, Optional, Tuple, TypeVar

from repro.core.merge import merge_tree
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.warehouse.parallel import make_sampler

__all__ = ["SlidingWindowSampler"]

T = TypeVar("T")


class SlidingWindowSampler:
    """Uniform sampling over (approximately) the last ``window_partitions
    * partition_size`` stream elements.

    Parameters
    ----------
    partition_size:
        Elements per partition (the hop granularity).
    window_partitions:
        How many most-recent partitions constitute the window.
    bound_values:
        Per-partition sample bound ``n_F``.
    scheme:
        "hr" (default) or "hb" — both footprint-bounded and mergeable.
    rng:
        Randomness; partitions use derived substreams.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> w = SlidingWindowSampler(partition_size=1000, window_partitions=3,
    ...                          bound_values=64, rng=SplittableRng(8))
    >>> w.feed_many(range(5000))
    >>> w.window_population()
    3000
    """

    def __init__(self, *, partition_size: int, window_partitions: int,
                 bound_values: int, scheme: str = "hr",
                 exceedance_p: float = 0.001,
                 rng: Optional[SplittableRng] = None) -> None:
        if partition_size <= 0:
            raise ConfigurationError(
                f"partition_size must be positive, got {partition_size}")
        if window_partitions <= 0:
            raise ConfigurationError(
                f"window_partitions must be positive, "
                f"got {window_partitions}")
        self._partition_size = partition_size
        self._window = window_partitions
        self._bound = bound_values
        self._scheme = scheme
        self._p = exceedance_p
        self._rng = rng if rng is not None else SplittableRng()
        self._live: Deque[Tuple[int, WarehouseSample]] = deque()
        self._evicted = 0  # partitions rolled out so far
        self._seq = 0
        self._sampler = None
        self._closed = False

    def _new_sampler(self):
        return make_sampler(
            self._scheme,
            population_size=self._partition_size,
            bound_values=self._bound,
            exceedance_p=self._p,
            sb_rate=None,
            rng=self._rng.spawn("window", self._seq),
        )

    def feed(self, value: T) -> None:
        """Observe one stream arrival."""
        if self._closed:
            raise ProtocolError("window sampler already closed")
        if self._sampler is None:
            self._sampler = self._new_sampler()
        self._sampler.feed(value)
        if self._sampler.seen >= self._partition_size:
            self._roll()

    def feed_many(self, values: Iterable[T]) -> None:
        """Observe a sequence of stream arrivals."""
        for v in values:
            self.feed(v)

    def _roll(self) -> None:
        assert self._sampler is not None
        sample = self._sampler.finalize()
        self._live.append((self._seq, sample))
        self._seq += 1
        self._sampler = None
        while len(self._live) > self._window:
            self._live.popleft()
            self._evicted += 1

    @property
    def live_partitions(self) -> int:
        """Number of finalized partitions currently in the window."""
        return len(self._live)

    @property
    def evicted_partitions(self) -> int:
        """Partitions rolled out of the window so far."""
        return self._evicted

    def window_population(self) -> int:
        """Parent elements covered by the current window sample.

        Counts only *finalized* partitions; the open partial partition
        contributes once it closes (the hop-granularity approximation).
        """
        return sum(s.population_size for _seq, s in self._live)

    def window_sample(self, *, include_open: bool = False
                      ) -> WarehouseSample:
        """A uniform sample of the union of the window's partitions.

        With ``include_open=True`` the currently-filling partition is
        snapshotted (finalized on a copy of its state is not possible for
        the streaming samplers, so the open partition is closed early and
        a fresh one started — use only when a cut at "now" is acceptable).
        """
        if include_open and self._sampler is not None \
                and self._sampler.seen > 0:
            self._roll()
        if not self._live:
            raise ProtocolError("window holds no finalized partition yet")
        samples = [s for _seq, s in self._live]
        return merge_tree(samples,
                          rng=self._rng.spawn("window-merge", self._seq),
                          mode="balanced")

    def close(self) -> None:
        """Stop accepting arrivals (open partition is discarded)."""
        self._closed = True
        self._sampler = None

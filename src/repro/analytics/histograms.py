"""Histogram synopses built from warehouse samples.

Approximate histograms are the other classic consumer of backing samples
(the paper's reference [8], Gibbons-Matias-Poosala, maintains approximate
histograms from a backing sample).  Given any uniform
:class:`~repro.core.sample.WarehouseSample`, this module constructs:

* :func:`equi_depth` — bucket boundaries holding (approximately) equal
  element counts: the sample's quantiles scaled to population counts;
* :func:`equi_width` — fixed-width value buckets with estimated counts;
* :func:`top_k` — the heavy hitters with population-count estimates (the
  compact (value, count) storage makes this a direct read-off).

Each returns :class:`HistogramSynopsis`, which can answer approximate
range-count queries (``estimate_range``) with the usual
partial-bucket interpolation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Callable, List, Tuple

from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

__all__ = ["Bucket", "HistogramSynopsis", "equi_depth", "equi_width",
           "top_k"]


@dataclass(frozen=True)
class Bucket:
    """One histogram bucket over ``[low, high)`` (last bucket closed)."""

    low: float
    high: float
    estimated_count: float

    @property
    def width(self) -> float:
        """Bucket width on the value axis."""
        return self.high - self.low


@dataclass(frozen=True)
class HistogramSynopsis:
    """An approximate histogram with range-count estimation."""

    buckets: Tuple[Bucket, ...]
    population_size: int
    kind: str  # "equi-depth" | "equi-width"

    def total_count(self) -> float:
        """Sum of bucket estimates (≈ population size)."""
        return sum(b.estimated_count for b in self.buckets)

    def estimate_range(self, low: float, high: float) -> float:
        """Estimated number of elements with value in ``[low, high)``.

        Buckets partially covered by the range contribute
        proportionally to the covered fraction of their width (the
        standard continuous-values assumption).
        """
        if high <= low:
            return 0.0
        total = 0.0
        for b in self.buckets:
            overlap_low = max(low, b.low)
            overlap_high = min(high, b.high)
            if overlap_high <= overlap_low:
                continue
            if b.width <= 0.0:
                total += b.estimated_count
            else:
                total += b.estimated_count \
                    * (overlap_high - overlap_low) / b.width
        return total

    def __len__(self) -> int:
        return len(self.buckets)


def _numeric_pairs(sample: WarehouseSample,
                   value_fn: Callable[[object], float]
                   ) -> List[Tuple[float, int]]:
    pairs = sorted((value_fn(v), c) for v, c in sample.histogram.pairs())
    if not pairs:
        raise ConfigurationError("cannot build a histogram from an "
                                 "empty sample")
    return pairs


def equi_depth(sample: WarehouseSample, buckets: int, *,
               value_fn: Callable[[object], float] = float
               ) -> HistogramSynopsis:
    """Equi-depth histogram: ~equal estimated count per bucket.

    Bucket boundaries are the sample's ``i/buckets`` quantiles; counts
    are the exact per-bucket sample counts scaled by the sample's
    expansion factor, so the bucket populations are (approximately) equal
    and sum to the population size.
    """
    if buckets <= 0:
        raise ConfigurationError(f"buckets must be positive, got {buckets}")
    pairs = _numeric_pairs(sample, value_fn)
    n = sample.size
    scale = sample.scale_factor

    # Walk the sorted (value, count) runs, closing a bucket whenever the
    # accumulated sample count crosses the next i * n/buckets boundary.
    # A value heavier than n/buckets keeps its whole run in one bucket,
    # so the result may have fewer than `buckets` buckets (standard for
    # equi-depth over discrete data).
    per_bucket = n / buckets
    out: List[Bucket] = []
    low = pairs[0][0]
    accumulated = 0
    in_bucket = 0
    boundary = per_bucket
    for i, (value, count) in enumerate(pairs):
        accumulated += count
        in_bucket += count
        is_last = i == len(pairs) - 1
        if accumulated >= boundary - 1e-9 or is_last:
            high = value if is_last else pairs[i + 1][0]
            out.append(Bucket(low=float(low), high=float(high),
                              estimated_count=in_bucket * scale))
            low = high
            in_bucket = 0
            while boundary <= accumulated:
                boundary += per_bucket
    return HistogramSynopsis(buckets=tuple(out),
                             population_size=sample.population_size,
                             kind="equi-depth")


def equi_width(sample: WarehouseSample, buckets: int, *,
               value_fn: Callable[[object], float] = float
               ) -> HistogramSynopsis:
    """Equi-width histogram: fixed-width buckets, estimated counts."""
    if buckets <= 0:
        raise ConfigurationError(f"buckets must be positive, got {buckets}")
    pairs = _numeric_pairs(sample, value_fn)
    lo = pairs[0][0]
    hi = pairs[-1][0]
    scale = sample.scale_factor
    if hi == lo:
        return HistogramSynopsis(
            buckets=(Bucket(float(lo), float(hi),
                            sample.size * scale),),
            population_size=sample.population_size,
            kind="equi-width")
    width = (hi - lo) / buckets
    edges = [lo + i * width for i in range(buckets + 1)]
    counts = [0] * buckets
    for value, c in pairs:
        idx = min(buckets - 1,
                  bisect.bisect_right(edges, value) - 1)
        idx = max(0, idx)
        counts[idx] += c
    out = [Bucket(float(edges[i]), float(edges[i + 1]),
                  counts[i] * scale)
           for i in range(buckets)]
    return HistogramSynopsis(buckets=tuple(out),
                             population_size=sample.population_size,
                             kind="equi-width")


def top_k(sample: WarehouseSample, k: int
          ) -> List[Tuple[object, float]]:
    """The ``k`` most frequent sampled values with population estimates.

    Reads straight off the compact (value, count) representation —
    scaled counts are unbiased estimates of population frequencies.
    """
    if k <= 0:
        raise ConfigurationError(f"k must be positive, got {k}")
    scale = sample.scale_factor
    ranked = sorted(sample.histogram.pairs(), key=lambda vc: -vc[1])
    return [(v, c * scale) for v, c in ranked[:k]]

"""Analytics over warehouse samples: the motivating applications —
approximate query answering, distinct-value estimation, and
sampling-based metadata discovery."""

from repro.analytics.accuracy import (expected_hb_sample_size, plan_bound,
                                      required_sample_size_for_mean,
                                      required_sample_size_for_proportion)
from repro.analytics.aqp import ApproximateQueryEngine, Estimate
from repro.analytics.estimators import (chao_distinct, estimate_avg,
                                        estimate_count, estimate_quantile,
                                        estimate_sum, gee_distinct)
from repro.analytics.histograms import (HistogramSynopsis, equi_depth,
                                        equi_width, top_k)
from repro.analytics.metadata import (column_profile, discover_candidates,
                                      jaccard_estimate)

__all__ = [
    "ApproximateQueryEngine",
    "Estimate",
    "HistogramSynopsis",
    "equi_depth",
    "equi_width",
    "top_k",
    "required_sample_size_for_mean",
    "required_sample_size_for_proportion",
    "expected_hb_sample_size",
    "plan_bound",
    "estimate_count",
    "estimate_sum",
    "estimate_avg",
    "estimate_quantile",
    "chao_distinct",
    "gee_distinct",
    "column_profile",
    "discover_candidates",
    "jaccard_estimate",
]

"""Sampling-based metadata discovery.

The paper's introduction motivates the sample warehouse with automated
metadata discovery [2, 3, 13, 15, 18]: systems like BHUNT and CORDS mine
relationships between columns (join candidates, correlations, fuzzy
constraints) from *samples* rather than full data.  This module provides
the sample-side primitives those systems need:

* :func:`column_profile` — per-dataset profile (distinct-value estimate,
  value-length stats, top values) computed from its warehouse sample;
* :func:`jaccard_estimate` — estimated Jaccard overlap of two datasets'
  value sets from their samples;
* :func:`containment_estimate` — estimated fraction of one dataset's
  values appearing in another (the BHUNT/CORDS join-direction signal);
* :func:`discover_candidates` — rank all dataset pairs of a warehouse by
  estimated overlap, returning join/correlation candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analytics.estimators import chao_distinct, gee_distinct
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

__all__ = ["ColumnProfile", "column_profile", "jaccard_estimate",
           "containment_estimate", "discover_candidates"]


@dataclass(frozen=True)
class ColumnProfile:
    """Sample-derived profile of one dataset (column)."""

    dataset: str
    population_size: int
    sample_size: int
    distinct_in_sample: int
    distinct_chao: float
    distinct_gee: float
    top_values: Tuple[Tuple[object, int], ...]
    uniqueness: float  # distinct estimate / population size, clamped

    def looks_like_key(self, threshold: float = 0.95) -> bool:
        """Heuristic: is this column (nearly) unique per row?"""
        return self.uniqueness >= threshold


def column_profile(dataset: str, sample: WarehouseSample, *,
                   top: int = 10) -> ColumnProfile:
    """Profile a dataset from its warehouse sample."""
    ranked = sorted(sample.histogram.pairs(), key=lambda kv: -kv[1])[:top]
    chao = chao_distinct(sample)
    gee = gee_distinct(sample)
    population = max(1, sample.population_size)
    uniqueness = min(1.0, max(chao, 1.0) / population)
    return ColumnProfile(
        dataset=dataset,
        population_size=sample.population_size,
        sample_size=sample.size,
        distinct_in_sample=sample.distinct,
        distinct_chao=chao,
        distinct_gee=gee,
        top_values=tuple(ranked),
        uniqueness=uniqueness,
    )


def _value_sets(a: WarehouseSample, b: WarehouseSample
                ) -> Tuple[Set[object], Set[object]]:
    return set(a.histogram.values()), set(b.histogram.values())


def jaccard_estimate(a: WarehouseSample, b: WarehouseSample) -> float:
    """Estimated Jaccard similarity of the two datasets' value sets.

    Computed on the samples' distinct values; for uniform samples this is
    a consistent (if biased-low for rare values) overlap signal — the
    standard sampling-based screen used before exact verification.
    """
    va, vb = _value_sets(a, b)
    union = len(va | vb)
    if union == 0:
        return 0.0
    return len(va & vb) / union


def containment_estimate(a: WarehouseSample, b: WarehouseSample, *,
                         corrected: bool = True) -> float:
    """Estimated fraction of ``a``'s values that also occur in ``b``.

    The raw sample-vs-sample overlap ``|V_a ∩ V_b| / |V_a|``
    systematically *underestimates* true containment: a value of ``a``
    that does occur in ``b``'s population only shows up in ``b``'s
    sample with probability roughly equal to ``b``'s distinct-value
    coverage.  With ``corrected=True`` (default) the raw ratio is
    divided by that coverage — ``b.distinct / chao(b)`` — and clamped to
    ``[0, 1]``, giving an approximately unbiased containment signal.

    ``containment(a in b) ~ 1`` with high uniqueness of ``b`` suggests a
    foreign-key -> key relationship from ``a`` to ``b``.
    """
    va, vb = _value_sets(a, b)
    if not va:
        return 0.0
    raw = len(va & vb) / len(va)
    if not corrected:
        return raw
    estimated_distinct_b = max(chao_distinct(b), 1.0)
    coverage_b = min(1.0, b.distinct / estimated_distinct_b)
    if coverage_b <= 0.0:
        return raw
    return min(1.0, raw / coverage_b)


@dataclass(frozen=True)
class Candidate:
    """A discovered relationship candidate between two datasets."""

    left: str
    right: str
    jaccard: float
    containment_lr: float
    containment_rl: float

    @property
    def score(self) -> float:
        """Ranking score: max directional containment."""
        return max(self.containment_lr, self.containment_rl)


def discover_candidates(warehouse, *,
                        datasets: Optional[Sequence[str]] = None,
                        min_jaccard: float = 0.0,
                        top: Optional[int] = None) -> List[Candidate]:
    """Rank dataset pairs of a warehouse by sample-estimated overlap.

    This is the metadata-discovery loop run entirely against the sample
    warehouse: one merged sample per dataset, then pairwise set overlap.
    """
    names = list(datasets) if datasets is not None \
        else warehouse.datasets()
    if len(names) < 2:
        raise ConfigurationError(
            "need at least two datasets to discover relationships")
    samples: Dict[str, WarehouseSample] = {
        name: warehouse.sample_of(name) for name in names}
    out: List[Candidate] = []
    for i, left in enumerate(names):
        for right in names[i + 1:]:
            a, b = samples[left], samples[right]
            jac = jaccard_estimate(a, b)
            if jac < min_jaccard:
                continue
            out.append(Candidate(
                left=left,
                right=right,
                jaccard=jac,
                containment_lr=containment_estimate(a, b),
                containment_rl=containment_estimate(b, a),
            ))
    out.sort(key=lambda c: (-c.score, -c.jaccard, c.left, c.right))
    return out[:top] if top is not None else out

"""Estimators over warehouse samples.

The warehouse exists so that analytical queries can be answered quickly
from samples [9, 10, 19].  Each estimator consumes a
:class:`~repro.core.sample.WarehouseSample` and exploits its kind:

* **exhaustive** samples answer exactly (zero-width intervals);
* **Bernoulli(q)** samples scale by Horvitz–Thompson ``1/q``;
* **reservoir** (simple random) samples scale by ``N/n`` with the
  finite-population correction in their variance.

All interval-producing estimators return an :class:`Estimate` with a
normal-approximation confidence interval.  Distinct-value estimation —
the metadata-discovery workhorse — gets the classical Chao and GEE
estimators, both computed directly from the compact histogram's
frequency-of-frequencies (a free by-product of the storage format).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Dict, Optional

from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError

__all__ = ["Estimate", "estimate_count", "estimate_sum", "estimate_avg",
           "estimate_quantile", "frequency_of_frequencies", "chao_distinct",
           "gee_distinct", "naive_distinct"]

_NORMAL = NormalDist()


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a symmetric normal-approximation interval."""

    value: float
    ci_low: float
    ci_high: float
    confidence: float
    exact: bool = False

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.ci_high - self.ci_low) / 2.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.exact:
            return f"Estimate({self.value:g}, exact)"
        return (f"Estimate({self.value:g} "
                f"[{self.ci_low:g}, {self.ci_high:g}] "
                f"@{self.confidence:.0%})")


def _z(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    return _NORMAL.inv_cdf(0.5 + confidence / 2.0)


def _interval(value: float, std_err: float, confidence: float,
              exact: bool = False) -> Estimate:
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    if exact or std_err == 0.0:
        return Estimate(value, value, value, confidence, exact=exact)
    half = _z(confidence) * std_err
    return Estimate(value, value - half, value + half, confidence)


Predicate = Callable[[object], bool]


def estimate_count(sample: WarehouseSample, *,
                   where: Optional[Predicate] = None,
                   confidence: float = 0.95) -> Estimate:
    """Estimated number of population elements satisfying ``where``.

    With no predicate the count of an exhaustive/reservoir sample is the
    (known) population size; a Bernoulli sample yields the
    Horvitz–Thompson estimate ``|S| / q``.
    """
    n = sample.size
    hits = n if where is None else sum(
        cnt for v, cnt in sample.histogram.pairs() if where(v))
    if sample.kind is SampleKind.EXHAUSTIVE:
        return _interval(float(hits), 0.0, confidence, exact=True)
    if sample.kind is SampleKind.BERNOULLI:
        assert sample.rate is not None
        q = sample.rate
        value = hits / q
        std_err = math.sqrt(hits * (1.0 - q)) / q
        return _interval(value, std_err, confidence)
    # Reservoir: proportion estimator with finite-population correction.
    big_n = sample.population_size
    if where is None:
        return _interval(float(big_n), 0.0, confidence, exact=True)
    if n == 0:
        return _interval(0.0, 0.0, confidence)
    p_hat = hits / n
    fpc = max(0.0, 1.0 - n / big_n)
    std_err = big_n * math.sqrt(p_hat * (1.0 - p_hat) / n * fpc)
    return _interval(big_n * p_hat, std_err, confidence)


def estimate_sum(sample: WarehouseSample, *,
                 value_fn: Callable[[object], float] = float,
                 confidence: float = 0.95) -> Estimate:
    """Estimated population total of ``value_fn(v)``."""
    pairs = list(sample.histogram.pairs())
    n = sample.size
    total = sum(value_fn(v) * cnt for v, cnt in pairs)
    if sample.kind is SampleKind.EXHAUSTIVE:
        return _interval(total, 0.0, confidence, exact=True)
    if sample.kind is SampleKind.BERNOULLI:
        assert sample.rate is not None
        q = sample.rate
        sum_sq = sum(value_fn(v) ** 2 * cnt for v, cnt in pairs)
        value = total / q
        std_err = math.sqrt(max(0.0, sum_sq * (1.0 - q))) / q
        return _interval(value, std_err, confidence)
    big_n = sample.population_size
    if n == 0:
        return _interval(0.0, 0.0, confidence)
    mean = total / n
    var = (sum(value_fn(v) ** 2 * cnt for v, cnt in pairs) / n
           - mean * mean)
    var = max(0.0, var) * (n / (n - 1) if n > 1 else 1.0)
    fpc = max(0.0, 1.0 - n / big_n)
    std_err = big_n * math.sqrt(var / n * fpc)
    return _interval(big_n * mean, std_err, confidence)


def estimate_avg(sample: WarehouseSample, *,
                 value_fn: Callable[[object], float] = float,
                 confidence: float = 0.95) -> Estimate:
    """Estimated population mean of ``value_fn(v)``.

    For all three kinds the sample mean is (conditionally) unbiased; the
    interval uses the sample variance with a finite-population correction
    for reservoir samples.
    """
    pairs = list(sample.histogram.pairs())
    n = sample.size
    if n == 0:
        raise ConfigurationError("cannot average an empty sample")
    total = sum(value_fn(v) * cnt for v, cnt in pairs)
    mean = total / n
    if sample.kind is SampleKind.EXHAUSTIVE:
        return _interval(mean, 0.0, confidence, exact=True)
    var = (sum(value_fn(v) ** 2 * cnt for v, cnt in pairs) / n
           - mean * mean)
    var = max(0.0, var) * (n / (n - 1) if n > 1 else 1.0)
    fpc = 1.0
    if sample.kind is SampleKind.RESERVOIR and sample.population_size:
        fpc = max(0.0, 1.0 - n / sample.population_size)
    std_err = math.sqrt(var / n * fpc)
    return _interval(mean, std_err, confidence)


def estimate_quantile(sample: WarehouseSample, fraction: float, *,
                      value_fn: Callable[[object], float] = float) -> float:
    """The sample ``fraction``-quantile (a consistent estimator of the
    population quantile for every uniform sample kind)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(
            f"fraction must be in [0, 1], got {fraction}")
    if sample.size == 0:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    ordered = sorted(
        ((value_fn(v), cnt) for v, cnt in sample.histogram.pairs()),
        key=lambda item: item[0])
    target = fraction * (sample.size - 1)
    acc = 0
    for value, cnt in ordered:
        acc += cnt
        if acc - 1 >= target:
            return value
    return ordered[-1][0]


# ----------------------------------------------------------------------
# Distinct-value estimation
# ----------------------------------------------------------------------
def frequency_of_frequencies(sample: WarehouseSample) -> Dict[int, int]:
    """``f_i``: how many values occur exactly ``i`` times in the sample."""
    freq: Dict[int, int] = {}
    for _v, cnt in sample.histogram.pairs():
        freq[cnt] = freq.get(cnt, 0) + 1
    return freq


def naive_distinct(sample: WarehouseSample) -> float:
    """Scale-up estimator ``d * N / n`` — biased, shown for contrast."""
    if sample.size == 0:
        return 0.0
    if sample.kind is SampleKind.EXHAUSTIVE:
        return float(sample.distinct)
    return sample.distinct * sample.population_size / sample.size


def chao_distinct(sample: WarehouseSample) -> float:
    """Chao (1984) lower-bound estimator ``d + f1^2 / (2 f2)``.

    The estimate is clamped to the (known) population size: no
    population can have more distinct values than elements, and the
    ``f2 = 0`` bias-corrected fallback otherwise explodes on
    all-singleton samples (e.g. a reservoir sample of a key column).
    """
    if sample.kind is SampleKind.EXHAUSTIVE:
        return float(sample.distinct)
    freq = frequency_of_frequencies(sample)
    f1 = freq.get(1, 0)
    f2 = freq.get(2, 0)
    if f2 == 0:
        # Standard bias-corrected fallback.
        estimate = sample.distinct + f1 * (f1 - 1) / 2.0
    else:
        estimate = sample.distinct + (f1 * f1) / (2.0 * f2)
    return min(estimate, float(sample.population_size))


def gee_distinct(sample: WarehouseSample) -> float:
    """Guaranteed-Error Estimator (Charikar et al. 2000):
    ``sqrt(N/n) * f1 + sum_{i>=2} f_i``, clamped to the population size."""
    if sample.kind is SampleKind.EXHAUSTIVE:
        return float(sample.distinct)
    n = sample.size
    if n == 0:
        return 0.0
    freq = frequency_of_frequencies(sample)
    f1 = freq.get(1, 0)
    rest = sum(c for i, c in freq.items() if i >= 2)
    estimate = math.sqrt(sample.population_size / n) * f1 + rest
    return min(estimate, float(sample.population_size))

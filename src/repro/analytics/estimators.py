"""Estimators over warehouse samples.

The warehouse exists so that analytical queries can be answered quickly
from samples [9, 10, 19].  Each estimator consumes a
:class:`~repro.core.sample.WarehouseSample` and exploits its kind:

* **exhaustive** samples answer exactly (zero-width intervals);
* **Bernoulli(q)** samples scale by Horvitz–Thompson ``1/q``;
* **reservoir** (simple random) samples scale by ``N/n`` with the
  finite-population correction in their variance.

All interval-producing estimators return an :class:`Estimate` with a
normal-approximation confidence interval.  Distinct-value estimation —
the metadata-discovery workhorse — gets the classical Chao and GEE
estimators, both computed directly from the compact histogram's
frequency-of-frequencies (a free by-product of the storage format).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError
from repro.warehouse.synopsis import PartitionSynopsis

__all__ = ["Estimate", "estimate_count", "estimate_sum", "estimate_avg",
           "estimate_quantile", "stratified_partition_estimate",
           "frequency_of_frequencies", "chao_distinct",
           "gee_distinct", "naive_distinct"]

_NORMAL = NormalDist()


@dataclass(frozen=True)
class Estimate:
    """A point estimate with a symmetric normal-approximation interval.

    ``sample_size`` / ``population_size`` are carried when the
    producing estimator knows them (the stratified planner path always
    does); ``None`` keeps older call sites unchanged.
    """

    value: float
    ci_low: float
    ci_high: float
    confidence: float
    exact: bool = False
    sample_size: Optional[int] = None
    population_size: Optional[int] = None

    @property
    def half_width(self) -> float:
        """Half the interval width."""
        return (self.ci_high - self.ci_low) / 2.0

    def to_dict(self) -> dict:
        """JSON-serializable form (the served ``/estimate`` payload)."""
        data = {
            "value": self.value,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "exact": self.exact,
        }
        if self.sample_size is not None:
            data["sample_size"] = self.sample_size
        if self.population_size is not None:
            data["population_size"] = self.population_size
        return data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.exact:
            return f"Estimate({self.value:g}, exact)"
        return (f"Estimate({self.value:g} "
                f"[{self.ci_low:g}, {self.ci_high:g}] "
                f"@{self.confidence:.0%})")


def _z(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    return _NORMAL.inv_cdf(0.5 + confidence / 2.0)


def _interval(value: float, std_err: float, confidence: float,
              exact: bool = False) -> Estimate:
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    if exact or std_err == 0.0:
        return Estimate(value, value, value, confidence, exact=exact)
    half = _z(confidence) * std_err
    return Estimate(value, value - half, value + half, confidence)


Predicate = Callable[[object], bool]


def estimate_count(sample: WarehouseSample, *,
                   where: Optional[Predicate] = None,
                   confidence: float = 0.95) -> Estimate:
    """Estimated number of population elements satisfying ``where``.

    With no predicate the count of an exhaustive/reservoir sample is the
    (known) population size; a Bernoulli sample yields the
    Horvitz–Thompson estimate ``|S| / q``.
    """
    n = sample.size
    hits = n if where is None else sum(
        cnt for v, cnt in sample.histogram.pairs() if where(v))
    if sample.kind is SampleKind.EXHAUSTIVE:
        return _interval(float(hits), 0.0, confidence, exact=True)
    if sample.kind is SampleKind.BERNOULLI:
        assert sample.rate is not None
        q = sample.rate
        value = hits / q
        std_err = math.sqrt(hits * (1.0 - q)) / q
        return _interval(value, std_err, confidence)
    # Reservoir: proportion estimator with finite-population correction.
    big_n = sample.population_size
    if where is None:
        return _interval(float(big_n), 0.0, confidence, exact=True)
    if n == 0:
        return _interval(0.0, 0.0, confidence)
    p_hat = hits / n
    fpc = max(0.0, 1.0 - n / big_n)
    std_err = big_n * math.sqrt(p_hat * (1.0 - p_hat) / n * fpc)
    return _interval(big_n * p_hat, std_err, confidence)


def estimate_sum(sample: WarehouseSample, *,
                 value_fn: Callable[[object], float] = float,
                 confidence: float = 0.95) -> Estimate:
    """Estimated population total of ``value_fn(v)``."""
    pairs = list(sample.histogram.pairs())
    n = sample.size
    total = sum(value_fn(v) * cnt for v, cnt in pairs)
    if sample.kind is SampleKind.EXHAUSTIVE:
        return _interval(total, 0.0, confidence, exact=True)
    if sample.kind is SampleKind.BERNOULLI:
        assert sample.rate is not None
        q = sample.rate
        sum_sq = sum(value_fn(v) ** 2 * cnt for v, cnt in pairs)
        value = total / q
        std_err = math.sqrt(max(0.0, sum_sq * (1.0 - q))) / q
        return _interval(value, std_err, confidence)
    big_n = sample.population_size
    if n == 0:
        return _interval(0.0, 0.0, confidence)
    mean = total / n
    var = (sum(value_fn(v) ** 2 * cnt for v, cnt in pairs) / n
           - mean * mean)
    var = max(0.0, var) * (n / (n - 1) if n > 1 else 1.0)
    fpc = max(0.0, 1.0 - n / big_n)
    std_err = big_n * math.sqrt(var / n * fpc)
    return _interval(big_n * mean, std_err, confidence)


def estimate_avg(sample: WarehouseSample, *,
                 value_fn: Callable[[object], float] = float,
                 confidence: float = 0.95) -> Estimate:
    """Estimated population mean of ``value_fn(v)``.

    For all three kinds the sample mean is (conditionally) unbiased; the
    interval uses the sample variance with a finite-population correction
    for reservoir samples.
    """
    pairs = list(sample.histogram.pairs())
    n = sample.size
    if n == 0:
        raise ConfigurationError("cannot average an empty sample")
    total = sum(value_fn(v) * cnt for v, cnt in pairs)
    mean = total / n
    if sample.kind is SampleKind.EXHAUSTIVE:
        return _interval(mean, 0.0, confidence, exact=True)
    var = (sum(value_fn(v) ** 2 * cnt for v, cnt in pairs) / n
           - mean * mean)
    var = max(0.0, var) * (n / (n - 1) if n > 1 else 1.0)
    fpc = 1.0
    if sample.kind is SampleKind.RESERVOIR and sample.population_size:
        fpc = max(0.0, 1.0 - n / sample.population_size)
    std_err = math.sqrt(var / n * fpc)
    return _interval(mean, std_err, confidence)


def estimate_quantile(sample: WarehouseSample, fraction: float, *,
                      value_fn: Callable[[object], float] = float) -> float:
    """The sample ``fraction``-quantile (a consistent estimator of the
    population quantile for every uniform sample kind)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(
            f"fraction must be in [0, 1], got {fraction}")
    if sample.size == 0:
        raise ConfigurationError("cannot take a quantile of an empty sample")
    ordered = sorted(
        ((value_fn(v), cnt) for v, cnt in sample.histogram.pairs()),
        key=lambda item: item[0])
    target = fraction * (sample.size - 1)
    acc = 0
    for value, cnt in ordered:
        acc += cnt
        if acc - 1 >= target:
            return value
    return ordered[-1][0]


# ----------------------------------------------------------------------
# Stratified partition estimation (the planner's estimator)
# ----------------------------------------------------------------------
def _sample_moments(sample: WarehouseSample) -> Tuple[float, float]:
    """Sample mean and (n-1) variance of the numeric values."""
    n = sample.size
    total = 0.0
    total_sq = 0.0
    for value, cnt in sample.histogram.pairs():
        x = float(value)
        total += x * cnt
        total_sq += x * x * cnt
    mean = total / n
    variance = 0.0
    if n > 1:
        variance = max(0.0, total_sq / n - mean * mean) * n / (n - 1)
    return mean, variance


def stratified_partition_estimate(
        agg: str, *,
        sampled: Sequence[Tuple[int, WarehouseSample]] = (),
        synopses: Sequence[PartitionSynopsis] = (),
        confidence: float = 0.95,
        variance_scale: float = 1.0) -> Estimate:
    """Full-population estimate combining samples and synopses.

    Each partition is one stratum (``docs/aqp.md``).  The strata the
    plan *selected* arrive in ``sampled`` as ``(N_h, sample)`` pairs
    and contribute the classical stratified expansion ``N_h · mean_h``
    with variance ``N_h² s_h² / n_h`` (finite-population corrected);
    the *unselected* strata arrive as their catalog synopses and
    contribute their summary totals — with zero variance when exact,
    or with the scale-up variance ``N_h² σ̂_h² / m_h`` (fpc over the
    ``m_h``-value basis) when sample-estimated.  The point estimate
    therefore always covers the full population, whatever subset the
    planner chose to read.

    ``agg`` is ``"count"``, ``"sum"``, or ``"avg"``.  Counts need no
    samples at all: per-partition parent sizes are catalog facts.
    ``variance_scale`` multiplies the combined variance before the
    interval is formed — the hook the testkit's negative coverage
    control uses to inject a deliberately overconfident CI.
    """
    if agg not in ("count", "sum", "avg"):
        raise ConfigurationError(
            f"unknown aggregate {agg!r}; expected count, sum, or avg")
    if variance_scale <= 0.0:
        raise ConfigurationError(
            f"variance_scale must be positive, got {variance_scale}")
    big_n = sum(n for n, _ in sampled) + sum(s.count for s in synopses)
    observed = (sum(s.size for _, s in sampled)
                + sum(s.basis for s in synopses if not s.exact))
    if agg == "count":
        return Estimate(float(big_n), float(big_n), float(big_n),
                        confidence, exact=True,
                        sample_size=observed, population_size=big_n)
    if not sampled and not synopses:
        raise ConfigurationError("no strata to estimate from")

    total = 0.0
    variance = 0.0
    for population, sample in sampled:
        if sample.size == 0:
            if population > 0:
                raise ConfigurationError(
                    "cannot estimate from an empty stratum sample "
                    "with a non-empty parent")
            continue
        mean, var = _sample_moments(sample)
        total += population * mean
        if sample.kind is not SampleKind.EXHAUSTIVE:
            fpc = max(0.0, 1.0 - sample.size / max(1, population))
            variance += population ** 2 * var / sample.size * fpc
    for synopsis in synopses:
        if synopsis.count == 0:
            continue
        if not synopsis.numeric:
            raise ConfigurationError(
                "a non-numeric synopsis cannot answer a numeric "
                "aggregate; the planner should have fallen back")
        total += synopsis.total
        if not synopsis.exact:
            if synopsis.basis <= 0:
                raise ConfigurationError(
                    "an estimated synopsis with no observed basis "
                    "cannot contribute; the planner should have "
                    "fallen back")
            fpc = max(0.0, 1.0 - synopsis.basis / synopsis.count)
            variance += (synopsis.count ** 2 * synopsis.variance
                         / synopsis.basis * fpc)
    variance *= variance_scale

    if agg == "avg":
        if big_n == 0:
            raise ConfigurationError("cannot average an empty population")
        total /= big_n
        variance /= float(big_n) ** 2
    std_err = math.sqrt(variance)
    est = _interval(total, std_err, confidence, exact=variance == 0.0)
    return Estimate(est.value, est.ci_low, est.ci_high, confidence,
                    exact=est.exact, sample_size=observed,
                    population_size=big_n)


# ----------------------------------------------------------------------
# Distinct-value estimation
# ----------------------------------------------------------------------
def frequency_of_frequencies(sample: WarehouseSample) -> Dict[int, int]:
    """``f_i``: how many values occur exactly ``i`` times in the sample."""
    freq: Dict[int, int] = {}
    for _v, cnt in sample.histogram.pairs():
        freq[cnt] = freq.get(cnt, 0) + 1
    return freq


def naive_distinct(sample: WarehouseSample) -> float:
    """Scale-up estimator ``d * N / n`` — biased, shown for contrast."""
    if sample.size == 0:
        return 0.0
    if sample.kind is SampleKind.EXHAUSTIVE:
        return float(sample.distinct)
    return sample.distinct * sample.population_size / sample.size


def chao_distinct(sample: WarehouseSample) -> float:
    """Chao (1984) lower-bound estimator ``d + f1^2 / (2 f2)``.

    The estimate is clamped to the (known) population size: no
    population can have more distinct values than elements, and the
    ``f2 = 0`` bias-corrected fallback otherwise explodes on
    all-singleton samples (e.g. a reservoir sample of a key column).
    """
    if sample.kind is SampleKind.EXHAUSTIVE:
        return float(sample.distinct)
    freq = frequency_of_frequencies(sample)
    f1 = freq.get(1, 0)
    f2 = freq.get(2, 0)
    if f2 == 0:
        # Standard bias-corrected fallback.
        estimate = sample.distinct + f1 * (f1 - 1) / 2.0
    else:
        estimate = sample.distinct + (f1 * f1) / (2.0 * f2)
    return min(estimate, float(sample.population_size))


def gee_distinct(sample: WarehouseSample) -> float:
    """Guaranteed-Error Estimator (Charikar et al. 2000):
    ``sqrt(N/n) * f1 + sum_{i>=2} f_i``, clamped to the population size."""
    if sample.kind is SampleKind.EXHAUSTIVE:
        return float(sample.distinct)
    n = sample.size
    if n == 0:
        return 0.0
    freq = frequency_of_frequencies(sample)
    f1 = freq.get(1, 0)
    rest = sum(c for i, c in freq.items() if i >= 2)
    estimate = math.sqrt(sample.population_size / n) * f1 + rest
    return min(estimate, float(sample.population_size))

"""Sample-size planning: how big must ``n_F`` be for a target accuracy?

The warehouse's one knob is the per-partition footprint bound.  These
planners invert the estimators of :mod:`repro.analytics.estimators` so an
operator can choose the bound from accuracy requirements instead of
guessing:

* :func:`required_sample_size_for_mean` — sample size so that the AVG
  estimate's half-width is at most ``target`` (given a variance guess);
* :func:`required_sample_size_for_proportion` — same for a COUNT/share
  estimate (worst case p = 1/2 by default);
* :func:`plan_bound` — turn a required *merged* sample size into the
  per-partition ``n_F`` for a given scheme and merge plan, accounting
  for HB's expected shortfall below the bound (its safety margin).

All use the standard normal-approximation inversions with finite-
population correction; they are planning tools, not guarantees — the
usual caveat that variance guesses come from pilot samples applies.
"""

from __future__ import annotations

import math
from statistics import NormalDist

from repro.errors import ConfigurationError
from repro.sampling.exceedance import rate_for_bound

__all__ = ["required_sample_size_for_mean",
           "required_sample_size_for_proportion",
           "expected_hb_sample_size", "plan_bound"]

_NORMAL = NormalDist()


def _z(confidence: float) -> float:
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}")
    return _NORMAL.inv_cdf(0.5 + confidence / 2.0)


def _apply_fpc(n0: float, population: int) -> int:
    """Finite-population correction: n = n0 / (1 + (n0 - 1)/N)."""
    n = n0 / (1.0 + (n0 - 1.0) / population)
    return max(1, min(population, math.ceil(n)))


def required_sample_size_for_mean(*, std_dev: float, target_half_width: float,
                                  population: int,
                                  confidence: float = 0.95) -> int:
    """Sample size for an AVG half-width of at most ``target_half_width``.

    ``std_dev`` is the (estimated) population standard deviation — take
    it from a pilot sample or a previous period's exhaustive partition.
    """
    if std_dev < 0.0:
        raise ConfigurationError(f"std_dev must be >= 0, got {std_dev}")
    if target_half_width <= 0.0:
        raise ConfigurationError(
            f"target_half_width must be positive, got {target_half_width}")
    if population <= 0:
        raise ConfigurationError(
            f"population must be positive, got {population}")
    if std_dev == 0.0:
        return 1
    n0 = (_z(confidence) * std_dev / target_half_width) ** 2
    return _apply_fpc(n0, population)


def required_sample_size_for_proportion(*, target_half_width: float,
                                        population: int,
                                        proportion: float = 0.5,
                                        confidence: float = 0.95) -> int:
    """Sample size so a share estimate is within ``target_half_width``.

    ``proportion`` is the anticipated share; the default 0.5 is the
    worst case (maximum variance), so the returned size is safe for any
    predicate.
    """
    if not 0.0 <= proportion <= 1.0:
        raise ConfigurationError(
            f"proportion must be in [0, 1], got {proportion}")
    if target_half_width <= 0.0:
        raise ConfigurationError(
            f"target_half_width must be positive, got {target_half_width}")
    if population <= 0:
        raise ConfigurationError(
            f"population must be positive, got {population}")
    variance = proportion * (1.0 - proportion)
    if variance == 0.0:
        return 1
    n0 = (_z(confidence) ** 2) * variance / (target_half_width ** 2)
    return _apply_fpc(n0, population)


def expected_hb_sample_size(population: int, bound_values: int, *,
                            exceedance_p: float = 0.001) -> float:
    """E[|S|] for an HB phase-2 sample: ``N * q(N, p, n_F)``.

    HB sits *below* its bound by the eq. (1) safety margin (roughly
    ``z_p * sqrt(n_F)``); planners must budget for the expectation, not
    the bound.  Exhaustive outcomes (everything fits) return N.
    """
    if bound_values >= population:
        return float(population)
    q = rate_for_bound(population, exceedance_p, bound_values)
    return population * q


def plan_bound(*, required_merged_size: int, population: int,
               scheme: str = "hr",
               exceedance_p: float = 0.001) -> int:
    """The per-partition ``n_F`` achieving a merged sample size target.

    * ``"hr"`` — HRMerge pins the merged size at ``n_F`` (as long as
      every partition holds at least ``n_F`` elements), so the bound is
      the target itself.
    * ``"hb"`` — the merged sample is (essentially) Bern(q(N_total)),
      whose expectation sits below ``n_F``; the bound is inflated until
      the expectation clears the target.

    Raises if no bound can reach the target (target > population).
    """
    if required_merged_size <= 0:
        raise ConfigurationError(
            f"required_merged_size must be positive, "
            f"got {required_merged_size}")
    if required_merged_size > population:
        raise ConfigurationError(
            f"cannot sample {required_merged_size} from a population of "
            f"{population}")
    if scheme == "hr":
        return required_merged_size
    if scheme != "hb":
        raise ConfigurationError(
            f"plan_bound supports 'hr' and 'hb', got {scheme!r}")
    bound = required_merged_size
    while bound <= population:
        if expected_hb_sample_size(population, bound,
                                   exceedance_p=exceedance_p) \
                >= required_merged_size:
            return bound
        # The shortfall is ~z*sqrt(bound); grow by at least that.
        bound += max(1, int(3 * math.sqrt(bound)))
    return population

"""The error-bounded AQP planner (summary-statistics partition selection).

Merge-on-demand answers every aggregate by merging **all** selected
partitions, so query latency grows linearly with partition count.  The
planner replaces that with the partition-selection design of
"Approximate Partition Selection for Big-Data Workloads using Summary
Statistics" (PAPERS.md), adapted to this warehouse: every partition is
one *stratum*, the catalog's :class:`~repro.warehouse.synopsis.
PartitionSynopsis` records its summary statistics, and a query with a
target half-width reads only the partition samples the error bound
actually needs.

**The error model.**  For a predicate-free COUNT / SUM / AVG each
stratum can contribute one of three ways:

* an **exact synopsis** (ingest saw the raw values) answers its
  stratum with zero variance and zero store reads;
* an **estimated synopsis** (scale-up from a stored sample, basis
  ``m_h``) answers with variance ``N_h² σ̂_h² / m_h`` — priced
  *without* a finite-population correction, because the plan has not
  read the partition and conservatively treats the frozen scale-up as
  an external estimate;
* a **selected** stratum's sample is read and re-estimated live,
  which earns the per-stratum fpc: predicted variance
  ``N_h² σ̂_h² / n_h · (1 − n_h/N_h)``.

The planner ranks the estimated strata by the variance each would shed
if selected (population- and variance-weighted: the gain is
``≈ N_h σ̂_h²`` plus any live-sample advantage) and greedily selects
until the predicted half-width ``z · sqrt(Σ variances)`` certifies the
target.  When certification is impossible — a stratum with no usable
synopsis, a non-numeric column, a custom value function, a predicate,
or a bound tighter than even full selection reaches — the plan
**falls back to merge-all**, the legacy estimator whose answer is
never wrong, just slower.  Execution combines the chosen strata with
:func:`repro.analytics.estimators.stratified_partition_estimate`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist
from typing import Iterable, List, Optional, Tuple

from repro.analytics.estimators import (Estimate,
                                        stratified_partition_estimate)
from repro.errors import ConfigurationError
from repro.obs.clock import monotonic
from repro.obs.runtime import OBS
from repro.warehouse.dataset import PartitionKey

__all__ = ["QueryPlan", "QueryPlanner", "PLAN_AGGREGATES"]

_NORMAL = NormalDist()

#: Aggregates the planner can certify from synopses.
PLAN_AGGREGATES = ("count", "sum", "avg")


@dataclass(frozen=True)
class QueryPlan:
    """One planned aggregate query: what to read, what it promises.

    ``selected`` are the partitions whose samples execution reads;
    ``synopsis_keys`` are answered from catalog synopses alone.
    ``predicted_half_width`` is the conservative pre-read bound (in the
    aggregate's units); ``certified`` says it met the target.  A
    ``fallback`` plan could not be certified — the engine then runs
    the merge-all path and ``reason`` says why.
    """

    dataset: str
    agg: str
    confidence: float
    target_half_width: Optional[float]
    labels: Optional[Tuple[str, ...]]
    selected: Tuple[PartitionKey, ...]
    synopsis_keys: Tuple[PartitionKey, ...]
    total_partitions: int
    predicted_half_width: float
    certified: bool
    fallback: bool
    reason: str
    ranked: Tuple[Tuple[str, float], ...]
    seconds: float

    @property
    def signature(self) -> Tuple[object, ...]:
        """Cache-key component identifying what this plan reads."""
        return (self.agg, tuple(map(str, self.selected)),
                tuple(map(str, self.synopsis_keys)), self.fallback)

    def to_dict(self) -> dict:
        """JSON-serializable diagnostics (the served ``plan`` block)."""
        return {
            "dataset": self.dataset,
            "agg": self.agg,
            "confidence": self.confidence,
            "target_half_width": self.target_half_width,
            "labels": list(self.labels) if self.labels is not None
            else None,
            "selected": [str(k) for k in self.selected],
            "synopsis_partitions": len(self.synopsis_keys),
            "total_partitions": self.total_partitions,
            "predicted_half_width": self.predicted_half_width,
            "certified": self.certified,
            "fallback": self.fallback,
            "reason": self.reason,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class _Stratum:
    """Planner-internal view of one partition's error contribution."""

    key: PartitionKey
    population: int
    unselected_variance: float   # contribution if answered by synopsis
    selected_variance: float     # predicted contribution if sampled
    selectable: bool             # has a live sample worth reading

    @property
    def gain(self) -> float:
        return self.unselected_variance - self.selected_variance


class QueryPlanner:
    """Plans error-bounded aggregates over a sample warehouse.

    Examples
    --------
    >>> from repro import SampleWarehouse, SplittableRng
    >>> wh = SampleWarehouse(bound_values=64, rng=SplittableRng(7))
    >>> _ = wh.ingest_batch("t.v", list(range(4000)), partitions=8)
    >>> plan = QueryPlanner(wh).plan("t.v", "sum",
    ...                              target_half_width=0.02,
    ...                              relative=True)
    >>> plan.certified and not plan.selected  # exact synopses suffice
    True
    """

    def __init__(self, warehouse) -> None:
        self._warehouse = warehouse

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, dataset: str, agg: str, *,
             target_half_width: float,
             confidence: float = 0.95,
             labels: Optional[Iterable[str]] = None,
             relative: bool = False) -> QueryPlan:
        """Build a plan certifying ``target_half_width`` at ``confidence``.

        ``relative=True`` reads the target as a fraction of the
        synopsis-implied point estimate (``0.02`` = 2 %); otherwise it
        is absolute in the aggregate's units.
        """
        if agg not in PLAN_AGGREGATES:
            raise ConfigurationError(
                f"cannot plan aggregate {agg!r}; "
                f"expected one of {PLAN_AGGREGATES}")
        if target_half_width < 0.0:
            raise ConfigurationError(
                f"target_half_width must be >= 0, got {target_half_width}")
        if not 0.0 < confidence < 1.0:
            raise ConfigurationError(
                f"confidence must be in (0, 1), got {confidence}")
        t0 = monotonic()
        label_sig = tuple(sorted(labels)) if labels is not None else None
        catalog = self._warehouse.catalog
        if label_sig is not None:
            metas = catalog.merge_labels(dataset, label_sig)
        else:
            metas = catalog.partitions(dataset)

        def finish(selected: Tuple[PartitionKey, ...],
                   synopsis_keys: Tuple[PartitionKey, ...],
                   predicted: float, target: Optional[float],
                   certified: bool, fallback: bool, reason: str,
                   ranked: Tuple[Tuple[str, float], ...] = ()
                   ) -> QueryPlan:
            seconds = monotonic() - t0
            if OBS.enabled:
                reg = OBS.registry
                reg.counter("aqp.planner.partitions.total").add(len(metas))
                reg.counter("aqp.planner.partitions.selected").add(
                    len(selected))
                if fallback:
                    reg.counter("aqp.planner.fallback").inc()
                reg.histogram("aqp.planner.seconds").observe(seconds)
            return QueryPlan(
                dataset=dataset, agg=agg, confidence=confidence,
                target_half_width=target, labels=label_sig,
                selected=selected, synopsis_keys=synopsis_keys,
                total_partitions=len(metas),
                predicted_half_width=predicted, certified=certified,
                fallback=fallback, reason=reason, ranked=ranked,
                seconds=seconds)

        if not metas:
            return finish((), (), math.inf, None, False, True,
                          "no partitions selected")

        if agg == "count":
            # Parent sizes are catalog facts: exact, zero reads.
            return finish((), tuple(m.key for m in metas), 0.0,
                          target_half_width, True, False, "")

        strata: List[_Stratum] = []
        population_total = 0
        point_total = 0.0
        for meta in metas:
            synopsis = meta.synopsis
            if synopsis is None or not synopsis.numeric:
                return finish(
                    (), (), math.inf, None, False, True,
                    f"partition {meta.key} has no usable synopsis")
            if not synopsis.exact and synopsis.basis <= 0:
                return finish(
                    (), (), math.inf, None, False, True,
                    f"partition {meta.key} synopsis has an empty basis")
            population_total += synopsis.count
            point_total += synopsis.total
            if synopsis.exact:
                v_u = 0.0
                v_s = 0.0
                selectable = False
            else:
                big_n = synopsis.count
                sigma_sq = synopsis.variance
                v_u = big_n ** 2 * sigma_sq / synopsis.basis
                n_live = meta.sample_size
                if n_live > 0:
                    fpc = max(0.0, 1.0 - n_live / max(1, big_n))
                    v_s = big_n ** 2 * sigma_sq / n_live * fpc
                    selectable = True
                else:
                    v_s = v_u
                    selectable = False
            strata.append(_Stratum(meta.key, synopsis.count, v_u, v_s,
                                   selectable))

        # Resolve the target into sum-space (avg scales by 1/N).
        target = target_half_width
        if relative:
            point = point_total if agg == "sum" \
                else (point_total / population_total
                      if population_total else 0.0)
            target = target_half_width * abs(point)
        sum_target = target
        if agg == "avg":
            if population_total == 0:
                return finish((), (), math.inf, None, False, True,
                              "empty population")
            sum_target = target * population_total

        z = _NORMAL.inv_cdf(0.5 + confidence / 2.0)
        ranked = tuple(
            (str(s.key), s.unselected_variance)
            for s in sorted(strata, key=lambda s: (-s.unselected_variance,
                                                   s.key)))
        variance = sum(s.unselected_variance for s in strata)
        selected: List[PartitionKey] = []
        candidates = sorted((s for s in strata if s.selectable
                             and s.gain > 0.0),
                            key=lambda s: (-s.gain, s.key))
        for stratum in candidates:
            if z * math.sqrt(variance) <= sum_target:
                break
            variance -= stratum.gain
            selected.append(stratum.key)
        predicted_sum_hw = z * math.sqrt(variance)
        certified = predicted_sum_hw <= sum_target
        predicted = predicted_sum_hw if agg == "sum" \
            else predicted_sum_hw / population_total
        if not certified:
            return finish(
                tuple(selected), (), predicted, target, False, True,
                f"bound not certifiable: predicted half-width "
                f"{predicted:.6g} > target {target:.6g}", ranked)
        chosen = set(selected)
        synopsis_keys = tuple(s.key for s in strata
                              if s.key not in chosen)
        return finish(tuple(selected), synopsis_keys, predicted, target,
                      True, False, "", ranked)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, plan: QueryPlan, *,
                variance_scale: float = 1.0) -> Estimate:
        """Run a certified plan: read the selected samples, combine.

        The caller (the query engine, the serve layer) handles
        ``fallback`` plans itself — executing one here would silently
        produce the uncertified answer the plan refused to promise.
        """
        if plan.fallback:
            raise ConfigurationError(
                f"cannot execute a fallback plan ({plan.reason}); "
                "run the merge-all path instead")
        catalog = self._warehouse.catalog
        sampled = [(catalog.get(key).population_size,
                    self._warehouse.sample_for(key))
                   for key in plan.selected]
        synopses = []
        for key in plan.synopsis_keys:
            synopsis = catalog.get(key).synopsis
            if synopsis is None:
                raise ConfigurationError(
                    f"partition {key} lost its synopsis since planning; "
                    "re-plan the query")
            synopses.append(synopsis)
        return stratified_partition_estimate(
            plan.agg, sampled=sampled, synopses=synopses,
            confidence=plan.confidence, variance_scale=variance_scale)

"""Approximate query answering over the sample warehouse.

:class:`ApproximateQueryEngine` binds the estimators of
:mod:`repro.analytics.estimators` to a :class:`~repro.warehouse.warehouse.
SampleWarehouse`: each query selects a set of partitions (all active ones
by default, or a temporal label set), merges their samples into one
uniform sample via the warehouse, and evaluates the estimator on it.

This is the "quick approximate analytics" use case of the paper's
abstract: COUNT / SUM / AVG with confidence intervals, GROUP BY counts,
and quantiles — all without touching the full-scale warehouse.

Two answer paths exist for COUNT / SUM / AVG:

* **merge-all** (the default): merge every selected partition sample and
  run the classical estimator — always available, cost linear in the
  partition count;
* **planned** (pass ``target_half_width=``): the
  :class:`~repro.analytics.planner.QueryPlanner` certifies the error
  bound from catalog synopses and reads only the partition samples the
  bound needs.  Queries the planner cannot certify (predicates, custom
  value functions, missing synopses, unreachable bounds) silently take
  the merge-all path, so answers never degrade — see docs/aqp.md.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional

from repro.analytics.estimators import (Estimate, estimate_avg,
                                        estimate_count, estimate_quantile,
                                        estimate_sum)
from repro.analytics.planner import QueryPlan, QueryPlanner
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.warehouse.dataset import PartitionKey

__all__ = ["ApproximateQueryEngine", "Estimate"]

Predicate = Callable[[object], bool]


class ApproximateQueryEngine:
    """SQL-ish aggregate estimates from a sample warehouse.

    Examples
    --------
    >>> from repro import SampleWarehouse, SplittableRng
    >>> wh = SampleWarehouse(bound_values=512, rng=SplittableRng(5))
    >>> _ = wh.ingest_batch("sales.amount", list(range(100_000)),
    ...                     partitions=4)
    >>> engine = ApproximateQueryEngine(wh)
    >>> est = engine.count("sales.amount")
    >>> est.value
    100000.0
    """

    def __init__(self, warehouse) -> None:
        self._warehouse = warehouse
        self._planner = QueryPlanner(warehouse)
        # Merged-sample cache keyed by (dataset, selection signature):
        # queries against the same selection reuse one merge.  Planned
        # estimates cache separately, keyed by the plan's read-set
        # signature, so the two paths never collide.
        self._cache: Dict[tuple, WarehouseSample] = {}
        self._plan_cache: Dict[tuple, Estimate] = {}
        # Warehouse mutations (ingest / roll-in / roll-out / delete)
        # invalidate only the touched dataset's cached answers.
        register = getattr(warehouse, "add_mutation_listener", None)
        if register is not None:
            register(self.invalidate)

    def _sample(self, dataset: str,
                keys: Optional[Iterable[PartitionKey]] = None,
                labels: Optional[Iterable[str]] = None) -> WarehouseSample:
        key_sig = tuple(sorted(map(str, keys))) if keys is not None else None
        label_sig = tuple(sorted(labels)) if labels is not None else None
        cache_key = (dataset, key_sig, label_sig)
        sample = self._cache.get(cache_key)
        if sample is None:
            sample = self._warehouse.sample_of(dataset, keys=keys,
                                               labels=labels)
            self._cache[cache_key] = sample
        return sample

    def invalidate(self, dataset: Optional[str] = None) -> None:
        """Drop cached answers — all of them, or one dataset's.

        Called automatically (per dataset) when the warehouse mutates;
        an unrelated dataset's cached merges survive its neighbours'
        ingests.
        """
        if dataset is None:
            self._cache.clear()
            self._plan_cache.clear()
            return
        for cache in (self._cache, self._plan_cache):
            stale = [k for k in cache if k[0] == dataset]
            for k in stale:
                del cache[k]

    # ------------------------------------------------------------------
    # Planner integration
    # ------------------------------------------------------------------
    def _planned(self, dataset: str, agg: str, *,
                 plan: Optional[QueryPlan],
                 target_half_width: Optional[float],
                 relative: bool,
                 labels: Optional[Iterable[str]],
                 confidence: float) -> Optional[Estimate]:
        """Try the planner path; ``None`` means take merge-all instead."""
        if plan is None:
            plan = self._planner.plan(
                dataset, agg, target_half_width=target_half_width,
                confidence=confidence, labels=labels, relative=relative)
        if plan.fallback:
            return None
        cache_key = (dataset,) + plan.signature + (confidence,)
        estimate = self._plan_cache.get(cache_key)
        if estimate is None:
            estimate = self._planner.execute(plan)
            self._plan_cache[cache_key] = estimate
        return estimate

    def plan_summary(self, dataset: str, agg: str = "sum", *,
                     target_half_width: float,
                     relative_target: bool = False,
                     labels: Optional[Iterable[str]] = None,
                     confidence: float = 0.95) -> dict:
        """Diagnostics: what a planned query would read, and why.

        Includes the planner's contribution ranking (largest unread
        variance first) so operators can see which partitions dominate
        the error budget.
        """
        plan = self._planner.plan(
            dataset, agg, target_half_width=target_half_width,
            confidence=confidence, labels=labels, relative=relative_target)
        summary = plan.to_dict()
        summary["ranked"] = [list(pair) for pair in plan.ranked[:8]]
        return summary

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def count(self, dataset: str, *, where: Optional[Predicate] = None,
              labels: Optional[Iterable[str]] = None,
              confidence: float = 0.95,
              target_half_width: Optional[float] = None,
              relative_target: bool = False,
              plan: Optional[QueryPlan] = None) -> Estimate:
        """Estimated ``COUNT(*) [WHERE ...]`` over the selected partitions."""
        if (plan is not None or target_half_width is not None) \
                and where is None:
            estimate = self._planned(
                dataset, "count", plan=plan,
                target_half_width=target_half_width,
                relative=relative_target, labels=labels,
                confidence=confidence)
            if estimate is not None:
                return estimate
        sample = self._sample(dataset, labels=labels)
        return estimate_count(sample, where=where, confidence=confidence)

    def sum(self, dataset: str, *,
            value_fn: Callable[[object], float] = float,
            labels: Optional[Iterable[str]] = None,
            confidence: float = 0.95,
            target_half_width: Optional[float] = None,
            relative_target: bool = False,
            plan: Optional[QueryPlan] = None) -> Estimate:
        """Estimated ``SUM(value_fn(v))``."""
        if (plan is not None or target_half_width is not None) \
                and value_fn is float:
            estimate = self._planned(
                dataset, "sum", plan=plan,
                target_half_width=target_half_width,
                relative=relative_target, labels=labels,
                confidence=confidence)
            if estimate is not None:
                return estimate
        sample = self._sample(dataset, labels=labels)
        return estimate_sum(sample, value_fn=value_fn,
                            confidence=confidence)

    def avg(self, dataset: str, *,
            value_fn: Callable[[object], float] = float,
            labels: Optional[Iterable[str]] = None,
            confidence: float = 0.95,
            target_half_width: Optional[float] = None,
            relative_target: bool = False,
            plan: Optional[QueryPlan] = None) -> Estimate:
        """Estimated ``AVG(value_fn(v))``."""
        if (plan is not None or target_half_width is not None) \
                and value_fn is float:
            estimate = self._planned(
                dataset, "avg", plan=plan,
                target_half_width=target_half_width,
                relative=relative_target, labels=labels,
                confidence=confidence)
            if estimate is not None:
                return estimate
        sample = self._sample(dataset, labels=labels)
        return estimate_avg(sample, value_fn=value_fn,
                            confidence=confidence)

    def quantile(self, dataset: str, fraction: float, *,
                 labels: Optional[Iterable[str]] = None) -> float:
        """Estimated ``fraction``-quantile of the values."""
        sample = self._sample(dataset, labels=labels)
        return estimate_quantile(sample, fraction)

    def group_by_count(self, dataset: str,
                       key_fn: Callable[[object], object], *,
                       labels: Optional[Iterable[str]] = None,
                       top: Optional[int] = None
                       ) -> List[tuple]:
        """Estimated per-group counts for ``GROUP BY key_fn(v)``.

        Returns ``[(group, estimated_count), ...]`` sorted by estimate,
        largest first, truncated to ``top`` groups if given.
        """
        sample = self._sample(dataset, labels=labels)
        scale = sample.scale_factor
        groups: Dict[object, float] = {}
        for value, cnt in sample.histogram.pairs():
            g = key_fn(value)
            groups[g] = groups.get(g, 0.0) + cnt * scale
        ranked = sorted(groups.items(), key=lambda kv: -kv[1])
        return ranked[:top] if top is not None else ranked

    def sampling_summary(self, dataset: str, *,
                         labels: Optional[Iterable[str]] = None) -> dict:
        """Diagnostics: what the query sample actually is."""
        sample = self._sample(dataset, labels=labels)
        return {
            "kind": sample.kind.name,
            "exact": sample.kind is SampleKind.EXHAUSTIVE,
            "sample_size": sample.size,
            "population_size": sample.population_size,
            "sampling_fraction": sample.sampling_fraction,
            "distinct_in_sample": sample.distinct,
        }

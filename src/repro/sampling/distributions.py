"""Discrete distributions used by the sampling and merge algorithms.

* **Hypergeometric** — ``HRMerge`` (Figure 8) draws the number ``L`` of
  values taken from the first sample from the hypergeometric distribution
  of eq. (2); :func:`hypergeometric_pmf` evaluates it with the recursion of
  eq. (3) (``computeProb`` in the paper), and :func:`sample_hypergeometric`
  draws from it by inversion (``genProb``) or via a Walker alias table when
  the same distribution is sampled repeatedly (Section 4.2's optimization
  for symmetric pairwise merge trees).
* **Alias method** — :class:`AliasTable` implements Walker/Vose O(1)
  sampling from an arbitrary finite pmf.
* **Zipf** — the skewed workload of Section 5 (integers 1..4000, Zipf
  distributed); :func:`zipf_pmf` plus :class:`ZipfSampler`.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.runtime import OBS
from repro.rng import SplittableRng

__all__ = [
    "hypergeometric_pmf",
    "hypergeometric_logpmf_term",
    "sample_hypergeometric",
    "AliasTable",
    "CachedHypergeometric",
    "zipf_pmf",
    "ZipfSampler",
]


def _validate_hypergeom(n1: int, n2: int, k: int) -> None:
    if n1 < 0 or n2 < 0:
        raise ConfigurationError(
            f"population sizes must be >= 0, got {n1}, {n2}")
    if not 0 <= k <= n1 + n2:
        raise ConfigurationError(
            f"draw size k={k} must be in [0, {n1 + n2}]")


def hypergeometric_logpmf_term(n1: int, n2: int, k: int, l: int) -> float:
    """``log P(L = l)`` for eq. (2), via lgamma (used to seed the recursion).

    Returns ``-inf`` outside the support ``max(0, k-n2) <= l <= min(k, n1)``.
    """

    def log_comb(n: int, r: int) -> float:
        return (math.lgamma(n + 1) - math.lgamma(r + 1)
                - math.lgamma(n - r + 1))

    if l < max(0, k - n2) or l > min(k, n1):
        return float("-inf")
    return (log_comb(n1, l) + log_comb(n2, k - l)
            - log_comb(n1 + n2, k))


def hypergeometric_pmf(n1: int, n2: int, k: int) -> List[float]:
    """The probability vector ``P(0..k)`` of eq. (2).

    ``P(l)`` is the probability that a simple random sample of size ``k``
    from the disjoint union of populations of sizes ``n1`` and ``n2``
    contains exactly ``l`` elements of the first population.

    Values are computed with the multiplicative recursion of eq. (3),
    seeded at the distribution *mode* with an lgamma evaluation (the
    paper seeds at ``l = 0``, which both fails when ``k > n2`` makes
    ``P(0) = 0`` and underflows to zero for large populations; the pmf at
    the mode is at least ``1/(k+1)`` and never underflows).  The
    recursion then walks outward in both directions; far-tail values that
    underflow to zero are genuinely negligible.
    """
    _validate_hypergeom(n1, n2, k)
    pmf = [0.0] * (k + 1)
    lo = max(0, k - n2)
    hi = min(k, n1)
    if lo > hi:  # impossible draw; caller validated, so this cannot happen
        raise ConfigurationError(
            f"empty hypergeometric support for n1={n1}, n2={n2}, k={k}")
    mode = (k + 1) * (n1 + 1) // (n1 + n2 + 2)
    mode = min(hi, max(lo, mode))
    pmf[mode] = math.exp(hypergeometric_logpmf_term(n1, n2, k, mode))
    # eq. (3): P(l+1) = (k-l)(n1-l) / ((l+1)(n2-k+l+1)) * P(l)
    for l in range(mode, hi):
        pmf[l + 1] = pmf[l] * ((k - l) * (n1 - l)
                               / ((l + 1) * (n2 - k + l + 1)))
    for l in range(mode, lo, -1):
        # inverse of eq. (3): step downward from the mode
        pmf[l - 1] = pmf[l] * (l * (n2 - k + l)
                               / ((k - l + 1) * (n1 - l + 1)))
    total = math.fsum(pmf)
    if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
        # Renormalize tiny floating-point drift from long recursions.
        pmf = [p / total for p in pmf]
    return pmf


def _sample_by_inversion(pmf: Sequence[float], rng: SplittableRng) -> int:
    """Straightforward CDF inversion (the paper's 'inversion' generator)."""
    u = rng.random()
    acc = 0.0
    for value, p in enumerate(pmf):
        acc += p
        if u <= acc:
            return value
    return len(pmf) - 1  # floating-point slack: return the last value


def sample_hypergeometric(n1: int, n2: int, k: int, rng: SplittableRng, *,
                          method: str = "inversion") -> int:
    """Draw ``L`` with the distribution of eq. (2).

    ``method`` is ``"inversion"`` (default; builds the pmf and inverts the
    CDF) or ``"alias"`` (builds a Walker alias table first — only worthwhile
    if the caller cannot cache, see :class:`CachedHypergeometric`).
    """
    pmf = hypergeometric_pmf(n1, n2, k)
    if method == "inversion":
        return _sample_by_inversion(pmf, rng)
    if method == "alias":
        return AliasTable(pmf).sample(rng)
    raise ConfigurationError(f"unknown method {method!r}")


class AliasTable:
    """Walker/Vose alias method: O(n) setup, O(1) per sample.

    Section 4.2 recommends the alias method when many merges share the same
    partition and sample sizes (symmetric pairwise merge trees): compute
    probabilities ``r_l`` and aliases ``a_l`` once, then each draw needs one
    uniform integer and one uniform real.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> t = AliasTable([0.2, 0.5, 0.3])
    >>> t.sample(SplittableRng(3)) in (0, 1, 2)
    True
    """

    def __init__(self, pmf: Sequence[float]) -> None:
        n = len(pmf)
        if n == 0:
            raise ConfigurationError("alias table needs a non-empty pmf")
        total = math.fsum(pmf)
        if total <= 0.0:
            raise ConfigurationError("pmf must have positive total mass")
        if any(p < 0.0 for p in pmf):
            raise ConfigurationError("pmf entries must be non-negative")
        scaled = [p * n / total for p in pmf]
        self._prob = [0.0] * n
        self._alias = [0] * n
        small = [i for i, p in enumerate(scaled) if p < 1.0]
        large = [i for i, p in enumerate(scaled) if p >= 1.0]
        while small and large:
            s = small.pop()
            g = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = g
            scaled[g] = (scaled[g] + scaled[s]) - 1.0
            if scaled[g] < 1.0:
                small.append(g)
            else:
                large.append(g)
        for i in large:
            self._prob[i] = 1.0
        for i in small:  # only reachable through floating-point round-off
            self._prob[i] = 1.0

    def __len__(self) -> int:
        return len(self._prob)

    def sample(self, rng: SplittableRng) -> int:
        """Draw one index distributed according to the stored pmf."""
        i = rng.randrange(len(self._prob))
        if rng.random() <= self._prob[i]:
            return i
        return self._alias[i]


class CachedHypergeometric:
    """Alias-table cache keyed by ``(n1, n2, k)``.

    In a symmetric pairwise merge tree the same hypergeometric distribution
    recurs at every level, so caching the alias tables makes repeated
    ``HRMerge`` calls O(1) in distribution setup after the first merge at
    each level (the paper's Section 4.2 optimization).

    The cache is safe to share across ``ThreadExecutor`` workers: the
    table dict is mutated only under an internal lock, and a stored
    :class:`AliasTable` is immutable after construction.  Worker
    *processes* cannot share it — each process keeps its own instance
    (see ``repro.core.merge._NODE_CACHE``) and warms it independently.
    Cache state never influences draw *values*: an alias table is a pure
    function of ``(n1, n2, k)``, so a hit and a rebuilt miss consume the
    rng identically.  Hits and misses are counted through ``repro.obs``
    (``merge.hyper_cache.hit`` / ``merge.hyper_cache.miss``) so the
    Section 4.2 reuse is observable per run.
    """

    def __init__(self) -> None:
        self._tables: Dict[Tuple[int, int, int], AliasTable] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._tables)

    def sample(self, n1: int, n2: int, k: int, rng: SplittableRng) -> int:
        """Draw ``L`` per eq. (2), building/reusing an alias table."""
        key = (n1, n2, k)
        # Double-checked fast path: dict reads are safe without the
        # lock, and a racing rebuild produces an identical table.
        table = self._tables.get(key)
        if table is None:
            if OBS.enabled:
                OBS.registry.counter("merge.hyper_cache.miss").inc()
            built = AliasTable(hypergeometric_pmf(n1, n2, k))
            with self._lock:
                table = self._tables.setdefault(key, built)
        elif OBS.enabled:
            OBS.registry.counter("merge.hyper_cache.hit").inc()
        # Alias tables cover indices 0..k, matching the pmf vector.
        return table.sample(rng)


def zipf_pmf(v_max: int, exponent: float = 1.0) -> List[float]:
    """Zipf pmf over values ``1..v_max`` with the given exponent.

    ``P(v) ∝ v**-exponent``.  The Section 5 skewed workload uses values in
    1..4000; exponent 1 is the classical choice and our default.
    """
    if v_max <= 0:
        raise ConfigurationError(f"v_max must be positive, got {v_max}")
    if exponent < 0.0:
        raise ConfigurationError(
            f"exponent must be non-negative, got {exponent}")
    weights = [v ** (-exponent) for v in range(1, v_max + 1)]
    total = math.fsum(weights)
    return [w / total for w in weights]


class ZipfSampler:
    """Draws integers 1..v_max from a Zipf(exponent) law via an alias table.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> z = ZipfSampler(4000)
    >>> 1 <= z.sample(SplittableRng(5)) <= 4000
    True
    """

    def __init__(self, v_max: int, exponent: float = 1.0) -> None:
        self._v_max = v_max
        self._exponent = exponent
        self._table = AliasTable(zipf_pmf(v_max, exponent))

    @property
    def v_max(self) -> int:
        """Largest value the sampler can produce."""
        return self._v_max

    @property
    def exponent(self) -> float:
        """The Zipf skew parameter."""
        return self._exponent

    def sample(self, rng: SplittableRng) -> int:
        """Draw one value in ``1..v_max``."""
        return self._table.sample(rng) + 1

    def sample_many(self, count: int, rng: SplittableRng) -> List[int]:
        """Draw ``count`` i.i.d. values."""
        table = self._table
        return [table.sample(rng) + 1 for _ in range(count)]

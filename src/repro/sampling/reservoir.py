"""Reservoir sampling (Section 3.2 of the paper).

Maintains the invariant that the reservoir is a simple random sample
(without replacement) of all elements seen so far: the first ``k`` arrivals
fill the reservoir, and arrival ``n > k`` replaces a uniformly chosen victim
with probability ``k/n``.  Skip generation (:mod:`repro.sampling.skip`)
avoids a coin flip per element.

A reservoir sample of fixed size has an a-priori bounded footprint — the
property Algorithm HB falls back on in phase 3 and Algorithm HR relies on
in phase 2 — but historically lacked a merge procedure; the paper's
``HRMerge`` (see :mod:`repro.core.merge`) closes that gap.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng
from repro.sampling.skip import SkipGenerator

__all__ = ["ReservoirSampler", "reservoir_subsample"]

T = TypeVar("T")


def reservoir_subsample(values: Sequence[T], k: int,
                        rng: SplittableRng) -> List[T]:
    """Return a simple random sample of ``min(k, len(values))`` values.

    One-shot convenience; equivalent to feeding ``values`` through a
    :class:`ReservoirSampler` of capacity ``k``.
    """
    sampler = ReservoirSampler(k, rng)
    sampler.feed_many(values)
    return sampler.finalize()


class ReservoirSampler:
    """Streaming simple-random-sample-without-replacement of size ``k``.

    Parameters
    ----------
    capacity:
        Maximum (and, once the stream is long enough, exact) sample size.
    rng:
        Source of randomness.
    start_index:
        Stream position to resume from.  Used when continuing reservoir
        sampling over a concatenated stream — e.g. HBMerge/HRMerge feed a
        second partition into a reservoir that already summarizes the
        first, passing ``start_index=len(first_partition)``.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> r = ReservoirSampler(10, SplittableRng(7))
    >>> inserted = r.feed_many(range(1000))
    >>> len(r.sample)
    10
    """

    def __init__(self, capacity: int, rng: SplittableRng, *,
                 start_index: int = 0,
                 initial: Optional[Sequence[T]] = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"reservoir capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._rng = rng
        self._skips = SkipGenerator(capacity, rng)
        self._sample: List[object] = list(initial) if initial else []
        if len(self._sample) > capacity:
            raise ConfigurationError(
                f"initial sample of {len(self._sample)} exceeds capacity "
                f"{capacity}")
        self._seen = start_index
        if start_index < len(self._sample):
            raise ConfigurationError(
                "start_index must be >= size of the initial sample")
        self._finalized = False
        self._next_insert = self._compute_next_insert()

    def _compute_next_insert(self) -> int:
        """Stream position (1-based) of the next element to insert."""
        if len(self._sample) < self._capacity:
            # Still filling: every arrival is inserted.
            return self._seen + 1
        return self._seen + self._skips.next_skip(self._seen)

    @property
    def capacity(self) -> int:
        """Maximum sample size ``k``."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of stream elements observed (including skipped ones)."""
        return self._seen

    @property
    def sample(self) -> List[object]:
        """The current reservoir contents."""
        return self._sample

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def feed(self, value: T) -> bool:
        """Observe one value; return ``True`` if it entered the reservoir."""
        self._check_open()
        self._seen += 1
        if self._seen != self._next_insert:
            return False
        if len(self._sample) < self._capacity:
            self._sample.append(value)
        else:
            victim = self._rng.randrange(self._capacity)
            self._sample[victim] = value
        self._next_insert = self._compute_next_insert()
        return True

    def feed_many(self, values: Iterable[T]) -> int:
        """Observe a sequence of values; return how many were inserted.

        Indexable sequences are consumed by jumping straight to insertion
        positions; general iterables fall back to per-element feeding.
        """
        self._check_open()
        if isinstance(values, (list, tuple, range)):
            return self._feed_sequence(values)
        count = 0
        for v in values:
            if self.feed(v):
                count += 1
        return count

    def _feed_sequence(self, values: Sequence[T]) -> int:
        base = self._seen  # stream position just before this batch
        end = base + len(values)
        count = 0
        while self._next_insert <= end:
            value = values[self._next_insert - base - 1]
            if len(self._sample) < self._capacity:
                self._sample.append(value)
            else:
                victim = self._rng.randrange(self._capacity)
                self._sample[victim] = value
            count += 1
            self._seen = self._next_insert
            self._next_insert = self._compute_next_insert()
        self._seen = end
        return count

    def finalize(self) -> List[object]:
        """Close the sampler and return the reservoir."""
        self._finalized = True
        return self._sample

    def __len__(self) -> int:
        return len(self._sample)

    def __iter__(self) -> Iterator[object]:
        return iter(self._sample)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReservoirSampler(capacity={self._capacity}, "
                f"seen={self._seen}, size={len(self._sample)})")

"""Choosing the Bernoulli rate for a bounded-footprint sample (eq. (1)).

Algorithm HB's phase 2 samples at a rate ``q`` chosen so that the sample
size exceeds the bound ``n_F`` with probability at most ``p``: ``q`` is the
root of ``f(q) = P(Binomial(N, q) > n_F) = p`` for a known population size
``N``.  The paper solves this approximately with the central limit theorem
(their eq. (1)); Figure 5 charts the approximation's relative error against
the exact root (< 3% for N = 1e5).

This module provides both:

* :func:`normal_approx_rate` — the closed-form eq. (1);
* :func:`exact_bernoulli_rate` — bisection on the exact binomial survival
  function, evaluated through a pure-Python regularized incomplete beta
  (continued-fraction, Numerical-Recipes style), so no SciPy dependency is
  needed in the core library;
* :func:`rate_for_bound` — the dispatch used by Algorithm HB (exact for
  tiny populations where the CLT is unreliable, eq. (1) otherwise).
"""

from __future__ import annotations

import math
from statistics import NormalDist

from repro.errors import ConfigurationError

__all__ = [
    "normal_approx_rate",
    "exact_bernoulli_rate",
    "rate_for_bound",
    "binomial_sf",
    "regularized_incomplete_beta",
]

_NORMAL = NormalDist()

# Below this population size the CLT approximation degrades and the exact
# bisection is cheap anyway.
_EXACT_POPULATION_CUTOFF = 1_000


def _validate(population: int, p: float, bound: int) -> None:
    if population <= 0:
        raise ConfigurationError(
            f"population size must be positive, got {population}")
    if not 0.0 < p < 1.0:
        raise ConfigurationError(
            f"exceedance probability must be in (0, 1), got {p}")
    if bound <= 0:
        raise ConfigurationError(
            f"sample-size bound must be positive, got {bound}")


def normal_approx_rate(population: int, p: float, bound: int) -> float:
    """Eq. (1): CLT approximation of the rate ``q(N, p, n_F)``.

    ``q ≈ (N(2n_F + z²) − z·sqrt(N(Nz² + 4Nn_F − 4n_F²))) / (2N(N + z²))``
    with ``z = z_p`` the ``(1-p)``-quantile of the standard normal.

    Valid in the paper's regime: ``N`` large, ``n_F/N`` not vanishingly
    small, ``p <= 0.5``.  Returns a rate clamped to ``[0, 1]``.
    """
    _validate(population, p, bound)
    if bound >= population:
        return 1.0
    n = float(population)
    nf = float(bound)
    z = _NORMAL.inv_cdf(1.0 - p)
    z2 = z * z
    discriminant = n * (n * z2 + 4.0 * n * nf - 4.0 * nf * nf)
    if discriminant < 0.0:  # only possible for tiny N with huge z
        discriminant = 0.0
    q = (n * (2.0 * nf + z2) - z * math.sqrt(discriminant)) \
        / (2.0 * n * (n + z2))
    return min(1.0, max(0.0, q))


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the regularized incomplete beta function.

    Continued-fraction evaluation (modified Lentz's method) with the
    standard symmetry transformation for convergence; accurate to ~1e-12
    over the parameter ranges used here.
    """
    if not 0.0 <= x <= 1.0:
        raise ConfigurationError(f"x must be in [0, 1], got {x}")
    if a <= 0.0 or b <= 0.0:
        raise ConfigurationError(
            f"shape parameters must be positive, got a={a}, b={b}")
    if x == 0.0:
        return 0.0
    if x == 1.0:
        return 1.0
    log_front = (math.lgamma(a + b) - math.lgamma(a) - math.lgamma(b)
                 + a * math.log(x) + b * math.log1p(-x))
    front = math.exp(log_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - (math.exp(log_front)
                  * _beta_continued_fraction(b, a, 1.0 - x) / b)


def _beta_continued_fraction(a: float, b: float, x: float,
                             max_iterations: int = 400,
                             epsilon: float = 1e-15) -> float:
    """Continued fraction for the incomplete beta (NR 'betacf')."""
    tiny = 1e-300
    qab = a + b
    qap = a + 1.0
    qam = a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iterations + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < epsilon:
            return h
    return h  # converged to working precision in practice


def binomial_sf(population: int, q: float, threshold: int) -> float:
    """``P(Binomial(population, q) > threshold)`` exactly.

    Uses the identity ``P(X > k) = I_q(k + 1, N - k)`` with the regularized
    incomplete beta function; O(1) regardless of ``N``.
    """
    if population < 0:
        raise ConfigurationError(
            f"population must be >= 0, got {population}")
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"rate must be in [0, 1], got {q}")
    if threshold >= population:
        return 0.0
    if threshold < 0:
        return 1.0
    return regularized_incomplete_beta(threshold + 1.0,
                                       float(population - threshold), q)


def exact_bernoulli_rate(population: int, p: float, bound: int, *,
                         tolerance: float = 1e-12) -> float:
    """Exact root of ``P(Binomial(N, q) > n_F) = p`` via bisection.

    ``f(q)`` is strictly increasing in ``q`` on the relevant range, so
    bisection on ``[0, 1]`` converges unconditionally.  This is the ground
    truth that Figure 5 compares eq. (1) against.
    """
    _validate(population, p, bound)
    if bound >= population:
        return 1.0
    lo, hi = 0.0, 1.0
    while hi - lo > tolerance:
        mid = 0.5 * (lo + hi)
        if binomial_sf(population, mid, bound) > p:
            hi = mid
        else:
            lo = mid
    return 0.5 * (lo + hi)


def rate_for_bound(population: int, p: float, bound: int, *,
                   method: str = "auto") -> float:
    """The sampling rate Algorithm HB uses in phase 2.

    ``method`` is ``"approx"`` (always eq. (1)), ``"exact"`` (always
    bisection), or ``"auto"`` (exact below a small-population cutoff where
    the CLT is unreliable, eq. (1) otherwise — the behaviour a production
    system wants by default).
    """
    _validate(population, p, bound)
    if method == "approx":
        return normal_approx_rate(population, p, bound)
    if method == "exact":
        return exact_bernoulli_rate(population, p, bound)
    if method == "auto":
        if population <= _EXACT_POPULATION_CUTOFF:
            return exact_bernoulli_rate(population, p, bound)
        return normal_approx_rate(population, p, bound)
    raise ConfigurationError(f"unknown method {method!r}")

"""Skip-length generation for reservoir sampling.

Vitter [20] observed that instead of flipping a ``k/n`` coin for every
arriving element, a reservoir sampler can directly generate the random
*skip* — the number of elements to pass over before the next inclusion —
bringing the per-element cost of sampling a stream of ``N`` elements down
from O(N) coin flips to O(k·(1 + log(N/k))) skip draws.

Two exact skip generators are provided:

* :func:`skip_inversion` — Vitter's Algorithm X: sequential inversion of the
  exact skip CDF.  Stateless; O(skip) time per call.  Used directly for
  moderate streams and as the ground truth in statistical tests.
* :class:`SkipGenerator` — an O(1)-per-call stateful generator in the style
  of Vitter's Algorithm Z.  We implement the order-statistics formulation
  (Li's Algorithm L), which produces *exactly* the same reservoir-sample
  distribution with the same expected complexity as Algorithm Z but without
  Algorithm Z's delicate rejection constants.  For small streams it defers
  to Algorithm X, mirroring Vitter's hybrid threshold.

The paper's pseudocode calls ``skip(n; k)``; :func:`skip` reproduces that
interface (returning the index distance to the *next included element*, so
the caller writes ``n_next = i + skip(i, k, rng)`` exactly as in Figure 2).
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.rng import SplittableRng

__all__ = ["skip", "skip_inversion", "SkipGenerator", "VitterZSkips",
           "ALGORITHM_X_THRESHOLD"]

# Vitter recommends switching from Algorithm X to the constant-time skip
# generator once the stream index exceeds ~22x the reservoir size; below
# that, Algorithm X's O(skip) loop is cheaper in practice.
ALGORITHM_X_THRESHOLD = 22


def skip_inversion(t: int, k: int, rng: SplittableRng) -> int:
    """Exact skip after ``t`` processed elements, reservoir size ``k``.

    Returns ``s >= 0``, the number of elements passed over; the next element
    included in the reservoir is element ``t + s + 1`` (1-based stream
    positions).  Requires ``t >= k`` (while the reservoir is filling, every
    element is included and no skip is needed).

    The skip CDF is ``P(S <= s) = 1 - prod_{j=1}^{s+1} (t+j-k)/(t+j)``
    (Algorithm X in [20]); we invert it by sequential search.
    """
    if k <= 0:
        raise ConfigurationError(f"reservoir size must be positive, got {k}")
    if t < k:
        return 0
    v = rng.random()
    s = 0
    # quot = P(S > s); shrink until it drops below v.
    quot = (t + 1 - k) / (t + 1)
    while quot > v:
        s += 1
        quot *= (t + s + 1 - k) / (t + s + 1)
    return s


def skip(t: int, k: int, rng: SplittableRng) -> int:
    """The paper's ``skip(n; k)`` convention: distance to the next inclusion.

    After element ``t`` has been processed, the next element to enter the
    reservoir is element ``t + skip(t, k, rng)``.  While the reservoir is
    still filling (``t < k``) the next element is always included, so the
    distance is 1.
    """
    if t < k:
        return 1
    return skip_inversion(t, k, rng) + 1


class SkipGenerator:
    """Stateful O(1)-expected-time skip generator (Algorithm Z class).

    Maintains the running maximum-order-statistic state ``W`` of Li's
    Algorithm L, which generates skips with exactly the reservoir-sampling
    distribution: after the reservoir is full, the gap to the next inclusion
    is ``floor(log U / log(1 - W)) + 1`` where ``W`` is the current k-th
    root of a uniform product.  Below ``ALGORITHM_X_THRESHOLD * k`` stream
    positions, exact inversion (Algorithm X) is used instead, matching the
    hybrid strategy Vitter recommends for Algorithm Z.

    Usage::

        gen = SkipGenerator(k, rng)
        next_index = t + gen.next_skip(t)   # t = elements processed so far
    """

    def __init__(self, capacity: int, rng: SplittableRng, *,
                 x_threshold: int = ALGORITHM_X_THRESHOLD) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"reservoir capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._rng = rng
        self._threshold = x_threshold * capacity
        self._w: float | None = None

    @property
    def capacity(self) -> int:
        """Reservoir size the skips are generated for."""
        return self._capacity

    def next_skip(self, t: int) -> int:
        """Distance from position ``t`` to the next included element.

        ``t`` is the number of elements processed so far.  Returns ``d >= 1``
        such that element ``t + d`` is the next inclusion.
        """
        k = self._capacity
        if t < k:
            return 1
        if t < self._threshold:
            return skip_inversion(t, k, self._rng) + 1
        if self._w is None:
            # Key-based view of reservoir sampling: keep the k items with
            # the largest i.i.d. U(0,1) keys; an arrival enters iff its key
            # beats the current k-th largest key X_t, which after t items
            # is Beta(t-k+1, k)-distributed.  W = 1 - X_t is the inclusion
            # probability.  Future skips are independent of past skips in
            # true reservoir sampling, so drawing W from this marginal at
            # the switch point keeps the overall sample exactly uniform.
            self._w = 1.0 - self._rng.betavariate(t - k + 1, k)
        gap = int(math.log(self._rng.random())
                  / math.log1p(-self._w)) + 1
        self._w *= math.exp(math.log(self._rng.random()) / k)
        return gap

    def reset(self) -> None:
        """Forget continuous state (e.g. after the reservoir is rebuilt)."""
        self._w = None


class VitterZSkips:
    """Algorithm-Z-style rejection skips (Vitter's method, modernized).

    Vitter's Algorithm Z [20] generates skips in O(1) expected time by
    rejection from a continuous envelope: propose ``X = t·(W - 1)`` with
    ``W = U^(-1/k)`` (density ``g(x) = (k/t)·(t/(t+x))^(k+1)``), then
    accept ``S = floor(X)`` with probability ``f(S) / (c·g(X))``, where

    * ``f(s) = k/(t+s+1) · Π_{i=1..s} (t+i-k)/(t+i)`` is the exact skip
      pmf, and
    * ``c = (t+1)/(t-k+1)`` is Vitter's envelope constant.

    Vitter's 1985 formulation evaluates the density ratio with an O(s)
    product plus a squeeze pre-test to avoid it; on modern hardware the
    ratio is O(1) via ``lgamma``, so this implementation applies the
    rejection test directly — same proposal, same envelope, same exact
    output distribution, simpler code.

    Below ``threshold * k`` processed records Algorithm X (exact
    inversion) is used, as Vitter recommends.  The test suite
    chi-squares this generator against the inversion ground truth.
    """

    def __init__(self, capacity: int, rng: SplittableRng, *,
                 x_threshold: int = ALGORITHM_X_THRESHOLD) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"reservoir capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._rng = rng
        self._threshold = x_threshold * capacity

    @property
    def capacity(self) -> int:
        """Reservoir size the skips are generated for."""
        return self._capacity

    def next_skip(self, t: int) -> int:
        """Distance from position ``t`` to the next included element."""
        k = self._capacity
        if t < k:
            return 1
        if t < self._threshold:
            return skip_inversion(t, k, self._rng) + 1
        return self._skip_z(t) + 1

    def _log_pmf(self, t: int, s: int) -> float:
        """``log f(s)`` for the exact skip pmf at time ``t``."""
        k = self._capacity
        # f(s) = k/(t+s+1) * [ (t+s-k)! / (t-k)! ] * [ t! / (t+s)! ]
        return (math.log(k) - math.log(t + s + 1)
                + math.lgamma(t + s - k + 1) - math.lgamma(t - k + 1)
                + math.lgamma(t + 1) - math.lgamma(t + s + 1))

    def _skip_z(self, t: int) -> int:
        """Rejection rounds; returns the exact skip S >= 0."""
        k = self._capacity
        log_c = math.log(t + 1) - math.log(t - k + 1)
        log_k_over_t = math.log(k) - math.log(t)
        log_t = math.log(t)
        while True:
            w = math.exp(-math.log(self._rng.random()) / k)  # U^(-1/k)
            x = t * (w - 1.0)
            s = int(x)
            # log g(x) = log(k/t) + (k+1)·log(t/(t+x))
            log_g = log_k_over_t + (k + 1) * (log_t - math.log(t + x))
            log_accept = self._log_pmf(t, s) - (log_c + log_g)
            if math.log(self._rng.random() + 1e-300) <= log_accept:
                return s

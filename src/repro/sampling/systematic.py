"""Systematic sampling — one of the Section 6 future-work designs.

A systematic sample with interval ``step`` picks a uniform random start
``r`` in ``0..step-1`` and takes elements ``r, r+step, r+2·step, ...`` of
the stream.  Each element has inclusion probability exactly ``1/step``
(first-order uniform), the sample size is within 1 of ``N/step`` (tightly
controlled, like a reservoir), and collection is the cheapest possible —
no randomness after the start draw.

What systematic sampling does **not** give is second-order uniformity:
joint inclusion depends on positions (elements ``step`` apart always
co-occur), so it is not "uniform" in the paper's all-subsets sense and
periodic data can bias it badly.  That is why the paper treats it as a
separate *design*, not a drop-in replacement; the warehouse supports it
for workloads (e.g. auditing every k-th record) that want it explicitly.

Merging: systematic samples of disjoint partitions taken with the *same*
step can be concatenated to form a systematic-by-partition design, or
down-merged through :func:`repro.core.merge.hr_merge` by treating each as
an (approximate) SRS — both exposed through :meth:`to_sample`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, TypeVar

from repro.core.footprint import DEFAULT_MODEL, FootprintModel
from repro.core.histogram import CompactHistogram
from repro.core.phases import SampleKind
from repro.core.sample import WarehouseSample
from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng

__all__ = ["SystematicSampler"]

T = TypeVar("T")


class SystematicSampler:
    """Every ``step``-th element from a uniform random start.

    Parameters
    ----------
    step:
        The sampling interval (inclusion probability is ``1/step``).
    rng:
        Used once, for the random start.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> s = SystematicSampler(10, SplittableRng(1))
    >>> taken = s.feed_many(range(100))
    >>> len(s.sample)
    10
    """

    def __init__(self, step: int, rng: SplittableRng) -> None:
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        self._step = step
        self._start = rng.randrange(step)
        self._sample: List[object] = []
        self._seen = 0
        self._finalized = False

    @property
    def step(self) -> int:
        """The sampling interval."""
        return self._step

    @property
    def start(self) -> int:
        """The randomly drawn phase in ``0..step-1``."""
        return self._start

    @property
    def seen(self) -> int:
        """Number of elements observed."""
        return self._seen

    @property
    def sample(self) -> List[object]:
        """The collected elements, in stream order."""
        return self._sample

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def feed(self, value: T) -> bool:
        """Observe one element; return True if it was taken."""
        self._check_open()
        take = (self._seen % self._step) == self._start
        self._seen += 1
        if take:
            self._sample.append(value)
        return take

    def feed_many(self, values: Iterable[T]) -> int:
        """Observe a batch; returns how many were taken.

        Indexable sequences are strided directly (no per-element work).
        """
        self._check_open()
        if isinstance(values, (list, tuple, range)):
            n = len(values)
            offset = (self._start - self._seen) % self._step
            taken = values[offset::self._step]
            self._sample.extend(taken)
            self._seen += n
            return len(taken)
        count = 0
        for v in values:
            if self.feed(v):
                count += 1
        return count

    def finalize(self) -> List[object]:
        """Close the sampler and return the sample list."""
        self._check_open()
        self._finalized = True
        return self._sample

    def to_sample(self, *, bound_values: Optional[int] = None,
                  model: FootprintModel = DEFAULT_MODEL) -> WarehouseSample:
        """Package the systematic sample for warehouse storage.

        The sample is tagged RESERVOIR (fixed-size, first-order-uniform)
        so it can flow through the storage and estimator machinery;
        callers must keep the second-order caveat in mind when merging
        (see the module docstring).
        """
        histogram = CompactHistogram.from_values(self._sample)
        bound = bound_values if bound_values is not None \
            else max(1, len(self._sample))
        return WarehouseSample(
            histogram=histogram,
            kind=SampleKind.RESERVOIR,
            population_size=self._seen,
            bound_values=bound,
            scheme="systematic",
            model=model,
        )

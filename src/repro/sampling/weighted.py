"""Biased (weighted) sampling — one of the Section 6 future-work designs.

Two classical weighted schemes, both streaming and both *mergeable*:

* :class:`WeightedReservoirSampler` — Efraimidis & Spirakis' A-Res:
  assign each element the key ``u^(1/w)`` (``u`` uniform, ``w`` its
  weight) and keep the ``k`` largest keys.  The result is a weighted
  sample *without replacement*: the probability that an element is
  selected first is proportional to its weight, and the scheme
  generalizes reservoir sampling (all weights 1 reduces to an SRS).

  Merging is free and exact: because selection depends only on the
  per-element keys, keeping the top ``k`` keys of the union of two
  reservoirs' (key, value) pairs yields exactly the weighted sample of
  the union of the two disjoint populations — the weighted analogue of
  the paper's HRMerge, implemented by :func:`merge_weighted`.

* :class:`WeightedBernoulliSampler` — include each element independently
  with probability ``min(1, w / threshold)``, the Horvitz–Thompson
  workhorse.  Disjoint unions merge by concatenation at equal
  thresholds; :meth:`thin_to` equalizes differing thresholds, mirroring
  ``purgeBernoulli`` rate equalization.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable, List, Optional, Tuple, TypeVar

from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng

__all__ = ["WeightedReservoirSampler", "WeightedBernoulliSampler",
           "merge_weighted"]

T = TypeVar("T")


class WeightedReservoirSampler:
    """A-Res weighted reservoir sampling (Efraimidis–Spirakis).

    Parameters
    ----------
    capacity:
        Sample size ``k``.
    rng:
        Randomness source.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> s = WeightedReservoirSampler(5, SplittableRng(1))
    >>> for v in range(100):
    ...     _ = s.feed(v, weight=1.0 + (v == 7) * 1000)
    >>> 7 in s.values()
    True
    """

    def __init__(self, capacity: int, rng: SplittableRng) -> None:
        if capacity <= 0:
            raise ConfigurationError(
                f"capacity must be positive, got {capacity}")
        self._capacity = capacity
        self._rng = rng
        # Min-heap of (key, tiebreak, value); smallest key is evicted.
        self._heap: List[Tuple[float, int, object]] = []
        self._counter = 0
        self._seen = 0
        self._total_weight = 0.0
        self._finalized = False

    @property
    def capacity(self) -> int:
        """Sample size ``k``."""
        return self._capacity

    @property
    def seen(self) -> int:
        """Number of elements observed."""
        return self._seen

    @property
    def total_weight(self) -> float:
        """Sum of weights observed."""
        return self._total_weight

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def feed(self, value: T, weight: float = 1.0) -> bool:
        """Observe one weighted element; return True if currently kept."""
        self._check_open()
        if weight <= 0.0:
            raise ConfigurationError(
                f"weights must be positive, got {weight}")
        self._seen += 1
        self._total_weight += weight
        # A-Res key: u^(1/w), computed in log space for stability.
        u = self._rng.random()
        key = math.log(u) / weight if u > 0.0 else float("-inf")
        self._counter += 1
        entry = (key, self._counter, value)
        if len(self._heap) < self._capacity:
            heapq.heappush(self._heap, entry)
            return True
        if key > self._heap[0][0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def feed_many(self, pairs: Iterable[Tuple[T, float]]) -> int:
        """Observe ``(value, weight)`` pairs; return how many were kept."""
        count = 0
        for value, weight in pairs:
            if self.feed(value, weight):
                count += 1
        return count

    def values(self) -> List[object]:
        """Currently kept values (unordered)."""
        return [v for _key, _tie, v in self._heap]

    def keyed_entries(self) -> List[Tuple[float, int, object]]:
        """The raw (key, tiebreak, value) entries — needed for merging."""
        return list(self._heap)

    def finalize(self) -> List[object]:
        """Close the sampler and return the kept values."""
        self._check_open()
        self._finalized = True
        return self.values()


def merge_weighted(a: WeightedReservoirSampler,
                   b: WeightedReservoirSampler, *,
                   capacity: Optional[int] = None) -> List[object]:
    """Exact merge of two A-Res samples over disjoint populations.

    Keeps the ``capacity`` (default ``min(k_a, k_b)``) largest keys among
    both samples' entries.  Because every element's key was drawn
    independently of all others, this is distributed exactly as an A-Res
    sample of the union — no re-randomization needed.
    """
    k = capacity if capacity is not None \
        else min(a.capacity, b.capacity)
    if k <= 0:
        raise ConfigurationError(f"capacity must be positive, got {k}")
    # Re-tiebreak across the two samplers (their private counters may
    # collide, and values themselves need not be comparable).
    entries = [(key, i, value) for i, (key, _tie, value)
               in enumerate(a.keyed_entries() + b.keyed_entries())]
    top = heapq.nlargest(k, entries)
    return [v for _key, _tie, v in top]


class WeightedBernoulliSampler:
    """Independent inclusion with probability ``min(1, w / threshold)``.

    Parameters
    ----------
    threshold:
        Elements with ``weight >= threshold`` are always included;
        lighter elements enter proportionally to their weight.
    rng:
        Randomness source.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> s = WeightedBernoulliSampler(100.0, SplittableRng(2))
    >>> s.feed("heavy", weight=150.0)
    True
    """

    def __init__(self, threshold: float, rng: SplittableRng) -> None:
        if threshold <= 0.0:
            raise ConfigurationError(
                f"threshold must be positive, got {threshold}")
        self._threshold = threshold
        self._rng = rng
        self._sample: List[Tuple[object, float]] = []
        self._seen = 0
        self._finalized = False

    @property
    def threshold(self) -> float:
        """Current inclusion threshold."""
        return self._threshold

    @property
    def seen(self) -> int:
        """Number of elements observed."""
        return self._seen

    @property
    def sample(self) -> List[Tuple[object, float]]:
        """Included ``(value, weight)`` pairs."""
        return self._sample

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def feed(self, value: T, weight: float = 1.0) -> bool:
        """Observe one weighted element; return True if included."""
        self._check_open()
        if weight <= 0.0:
            raise ConfigurationError(
                f"weights must be positive, got {weight}")
        self._seen += 1
        if self._rng.bernoulli(min(1.0, weight / self._threshold)):
            self._sample.append((value, weight))
            return True
        return False

    def feed_many(self, pairs: Iterable[Tuple[T, float]]) -> int:
        """Observe ``(value, weight)`` pairs; return how many entered."""
        count = 0
        for value, weight in pairs:
            if self.feed(value, weight):
                count += 1
        return count

    def thin_to(self, new_threshold: float) -> None:
        """Raise the threshold, re-flipping survivors' coins.

        Each kept element survives with probability equal to the ratio of
        its new and old inclusion probabilities, so the result is exactly
        a ``new_threshold`` weighted Bernoulli sample — the weighted
        analogue of rate equalization before an SB-style union.
        """
        self._check_open()
        if new_threshold < self._threshold:
            raise ConfigurationError(
                "threshold can only increase (samples only shrink)")
        survivors = []
        for value, weight in self._sample:
            old_p = min(1.0, weight / self._threshold)
            new_p = min(1.0, weight / new_threshold)
            if self._rng.bernoulli(new_p / old_p):
                survivors.append((value, weight))
        self._sample = survivors
        self._threshold = new_threshold

    def estimate_total_weight(self) -> float:
        """Horvitz–Thompson estimate of the population's total weight."""
        return sum(max(weight, self._threshold)
                   for _value, weight in self._sample)

    def finalize(self) -> List[Tuple[object, float]]:
        """Close the sampler and return the weighted sample."""
        self._check_open()
        self._finalized = True
        return self._sample

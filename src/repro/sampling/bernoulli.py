"""Bernoulli sampling (Section 3.1 of the paper).

A ``Bern(q)`` scheme includes each arriving element independently with
probability ``q``.  It is uniform (all same-size samples equally likely),
trivially parallel, and merges by plain union over disjoint populations —
but its sample size is binomial and therefore unbounded in variability.

Two classical facts used throughout the library are exposed as functions:

* ``Bern(p)`` of a ``Bern(q)`` sample is ``Bern(pq)`` of the population —
  :meth:`BernoulliSampler.thin` / :func:`thin_rate`.
* The union of ``Bern(q)`` samples of *disjoint* populations is a
  ``Bern(q)`` sample of the union.

The sampler supports per-element feeding and a geometric-skip fast path
(:meth:`feed_many`) that jumps directly between inclusions, which matters
when ``q`` is small (e.g. sampling 2^26 elements at rate 1e-4).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, TypeVar

from repro.errors import ConfigurationError, ProtocolError
from repro.rng import SplittableRng

__all__ = ["BernoulliSampler", "bernoulli_subsample", "thin_rate"]

T = TypeVar("T")


def thin_rate(outer: float, inner: float) -> float:
    """Effective rate of Bern(inner) applied to a Bern(outer) sample."""
    return outer * inner


def bernoulli_subsample(values: Sequence[T], q: float,
                        rng: SplittableRng) -> List[T]:
    """Return a Bern(q) subsample of ``values`` as a new list.

    Uses geometric skips so the cost is proportional to the *output* size
    for small ``q`` (plus O(1) bookkeeping per inclusion).
    """
    if not 0.0 <= q <= 1.0:
        raise ConfigurationError(f"Bernoulli rate must be in [0, 1], got {q}")
    if q == 0.0:
        return []
    if q == 1.0:
        return list(values)
    out: List[T] = []
    i = rng.geometric(q)
    n = len(values)
    while i < n:
        out.append(values[i])
        i += 1 + rng.geometric(q)
    return out


class BernoulliSampler:
    """Streaming ``Bern(q)`` sampler over an unbounded sequence of values.

    Parameters
    ----------
    rate:
        Inclusion probability ``q`` in ``[0, 1]``.
    rng:
        Source of randomness; pass a spawned child for parallel partitions.

    Examples
    --------
    >>> from repro.rng import SplittableRng
    >>> s = BernoulliSampler(0.5, SplittableRng(1))
    >>> included = s.feed_many(range(100))
    >>> 20 < len(s.sample) < 80
    True
    """

    def __init__(self, rate: float, rng: SplittableRng) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(
                f"Bernoulli rate must be in [0, 1], got {rate}")
        self._rate = rate
        self._rng = rng
        self._sample: List[object] = []
        self._seen = 0
        self._finalized = False
        # Precomputed distance (in elements) to the next inclusion; lets
        # feed_many skip runs of excluded elements without drawing a
        # uniform for each.
        self._until_next = self._draw_gap()

    def _draw_gap(self) -> int:
        if self._rate == 0.0:
            return -1  # sentinel: never include
        if self._rate == 1.0:
            return 0
        return self._rng.geometric(self._rate)

    @property
    def rate(self) -> float:
        """The Bernoulli inclusion probability ``q``."""
        return self._rate

    @property
    def seen(self) -> int:
        """Number of elements observed so far."""
        return self._seen

    @property
    def sample(self) -> List[object]:
        """The current sample (a list of included values)."""
        return self._sample

    def _check_open(self) -> None:
        if self._finalized:
            raise ProtocolError("sampler already finalized")

    def feed(self, value: T) -> bool:
        """Observe one value; return ``True`` if it entered the sample."""
        self._check_open()
        self._seen += 1
        if self._until_next < 0:
            return False
        if self._until_next == 0:
            self._sample.append(value)
            self._until_next = self._draw_gap()
            return True
        self._until_next -= 1
        return False

    def feed_many(self, values: Iterable[T]) -> int:
        """Observe a sequence of values; return how many were included.

        For indexable sequences this jumps between inclusions; for general
        iterables it falls back to per-element feeding.
        """
        self._check_open()
        if isinstance(values, (list, tuple, range)):
            return self._feed_sequence(values)
        count = 0
        for v in values:
            if self.feed(v):
                count += 1
        return count

    def _feed_sequence(self, values: Sequence[T]) -> int:
        n = len(values)
        if self._until_next < 0:
            self._seen += n
            return 0
        count = 0
        pos = self._until_next
        while pos < n:
            self._sample.append(values[pos])
            count += 1
            pos += 1 + self._rng.geometric(self._rate) \
                if self._rate < 1.0 else 1
        self._until_next = pos - n
        self._seen += n
        return count

    def thin(self, inner_rate: float) -> None:
        """Subsample the current sample at ``inner_rate`` in place.

        By the composition property the result is a ``Bern(q * inner_rate)``
        sample of everything seen so far; :attr:`rate` is updated to match
        so subsequent arrivals are sampled consistently.
        """
        self._check_open()
        self._sample = bernoulli_subsample(self._sample, inner_rate,
                                           self._rng)
        self._rate = thin_rate(self._rate, inner_rate)
        self._until_next = self._draw_gap()

    def finalize(self) -> List[object]:
        """Close the sampler and return the sample."""
        self._finalized = True
        return self._sample

    def __len__(self) -> int:
        return len(self._sample)

    def __iter__(self) -> Iterator[object]:
        return iter(self._sample)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"BernoulliSampler(rate={self._rate!r}, seen={self._seen}, "
                f"size={len(self._sample)})")

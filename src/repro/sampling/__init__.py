"""Sampling primitives: skip generation, Bernoulli/reservoir schemes,
discrete distributions, and the exceedance-rate solver of eq. (1)."""

from repro.sampling.bernoulli import BernoulliSampler
from repro.sampling.distributions import (
    AliasTable,
    hypergeometric_pmf,
    sample_hypergeometric,
    zipf_pmf,
)
from repro.sampling.exceedance import (
    exact_bernoulli_rate,
    normal_approx_rate,
    rate_for_bound,
)
from repro.sampling.reservoir import ReservoirSampler
from repro.sampling.skip import SkipGenerator, VitterZSkips, skip
from repro.sampling.systematic import SystematicSampler
from repro.sampling.weighted import (WeightedBernoulliSampler,
                                     WeightedReservoirSampler,
                                     merge_weighted)

__all__ = [
    "BernoulliSampler",
    "ReservoirSampler",
    "SystematicSampler",
    "WeightedReservoirSampler",
    "WeightedBernoulliSampler",
    "merge_weighted",
    "SkipGenerator",
    "VitterZSkips",
    "skip",
    "AliasTable",
    "hypergeometric_pmf",
    "sample_hypergeometric",
    "zipf_pmf",
    "exact_bernoulli_rate",
    "normal_approx_rate",
    "rate_for_bound",
]

"""Random-number utilities with a deterministic seed-splitting discipline.

The warehouse samples many partitions independently and (optionally) in
parallel.  Reproducible experiments therefore need a way to derive an
independent, stable substream for every (dataset, partition) pair from a
single master seed — regardless of the order in which partitions are
processed or which worker processes them.

:func:`derive_seed` hashes a master seed together with an arbitrary sequence
of labels (strings or integers) into a 64-bit child seed using SHA-256, so
child streams are statistically independent for all practical purposes and
identical across runs, platforms, and process boundaries.

:class:`SplittableRng` wraps :class:`random.Random` and adds ``spawn`` for
labelled substreams plus the handful of discrete variate generators the
sampling algorithms need beyond the standard library.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence

from repro.errors import ConfigurationError

__all__ = ["derive_seed", "stable_hash", "SplittableRng", "DEFAULT_SEED"]

DEFAULT_SEED = 0x5A17_0B5E  # stable default master seed

_MASK64 = (1 << 64) - 1


def derive_seed(master: int, *labels: object) -> int:
    """Derive a stable 64-bit child seed from ``master`` and ``labels``.

    The derivation is order-sensitive and collision-resistant (SHA-256), so
    ``derive_seed(s, "ds", 3)`` and ``derive_seed(s, "ds", 4)`` give
    independent streams while remaining identical across runs.

    Parameters
    ----------
    master:
        The experiment-level seed.
    labels:
        Any sequence of objects whose ``repr`` identifies the substream,
        e.g. a dataset name and partition index.
    """
    h = hashlib.sha256()
    h.update(repr(int(master)).encode("utf-8"))
    for label in labels:
        h.update(b"\x1f")
        h.update(repr(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") & _MASK64


def stable_hash(value: object) -> int:
    """A process-stable 64-bit hash of ``repr(value)``.

    Unlike builtin ``hash`` — salted per process for ``str``/``bytes``
    and therefore different across runs and across ``ProcessExecutor``
    workers — this SHA-256-based hash is identical everywhere, so it
    is safe for anything that feeds sample content or routing (e.g.
    :func:`repro.stream.splitter.hash_split`).

    Examples
    --------
    >>> stable_hash("orders") == stable_hash("orders")
    True
    >>> 0 <= stable_hash(("ds", 3)) < 2 ** 64
    True
    """
    h = hashlib.sha256(repr(value).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big")


class SplittableRng(random.Random):
    """A :class:`random.Random` that can spawn labelled substreams.

    In addition to the full standard-library interface, this class provides
    :meth:`spawn` for deriving independent child generators and the discrete
    variates used throughout the library (:meth:`bernoulli`,
    :meth:`binomial`, :meth:`geometric`).

    Examples
    --------
    >>> rng = SplittableRng(42)
    >>> child = rng.spawn("orders", 7)
    >>> 0 <= child.random() < 1
    True
    """

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self._seed_value = int(seed)
        super().__init__(self._seed_value)

    @property
    def seed_value(self) -> int:
        """The seed this generator was last seeded with."""
        return self._seed_value

    def seed(self, a: object = None, version: int = 2) -> None:
        """Reseed in place, keeping :attr:`seed_value` consistent.

        The inherited ``random.Random.seed`` would reset the stream
        but leave ``seed_value`` — and therefore every subsequent
        :meth:`spawn` derivation — pointing at the stale constructor
        seed.  This override keeps them in lockstep and rejects the
        stdlib's ``seed(None)`` (reseed from system entropy), which
        would silently break same-seed reproducibility.
        """
        if a is None:
            raise ConfigurationError(
                "SplittableRng cannot reseed from system entropy; "
                "pass an explicit integer seed or derive a child "
                "stream with spawn()/derive_seed")
        try:
            value = int(a)  # type: ignore[call-overload]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"SplittableRng seeds must be integers, got {a!r}"
            ) from None
        self._seed_value = value
        super().seed(value)

    def spawn(self, *labels: object) -> "SplittableRng":
        """Return an independent child generator for the given labels."""
        return SplittableRng(derive_seed(self._seed_value, *labels))

    def spawn_many(self, count: int, *labels: object) -> list["SplittableRng"]:
        """Return ``count`` independent children labelled ``(*labels, i)``."""
        return [self.spawn(*labels, i) for i in range(count)]

    # ------------------------------------------------------------------
    # Discrete variates
    # ------------------------------------------------------------------
    def bernoulli(self, p: float) -> bool:
        """Return ``True`` with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.random() < p

    def geometric(self, p: float) -> int:
        """Number of failures before the first success, ``P(success) = p``.

        Returns a variate in ``{0, 1, 2, ...}``.  Used to skip directly to
        the next inclusion in a Bernoulli(q) stream.
        """
        import math

        if not 0.0 < p <= 1.0:
            raise ConfigurationError(
                f"geometric probability must be in (0, 1], got {p}")
        if p == 1.0:
            return 0
        u = 1.0 - self.random()  # in (0, 1]
        # log1p keeps precision for tiny p (log(1-p) underflows to 0);
        # for denormal p the ratio can still overflow a float, in which
        # case any astronomically large gap is statistically faithful.
        gap = math.log(u) / math.log1p(-p)
        if gap >= 2.0 ** 63:
            return 2 ** 63
        return int(gap)

    def binomial(self, n: int, p: float) -> int:
        """A Binomial(n, p) variate.

        Uses direct inversion for small means and the normal-based
        acceptance procedure (a simplified BTPE in the spirit of
        Devroye [5]) for large means, so purging a compact sample of
        millions of duplicated values stays O(#distinct values).
        """
        if n < 0:
            raise ConfigurationError(f"binomial n must be >= 0, got {n}")
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(
                f"binomial p must be in [0, 1], got {p}")
        if n == 0 or p == 0.0:
            return 0
        if p == 1.0:
            return n
        if p > 0.5:
            return n - self.binomial(n, 1.0 - p)
        if n * p < 30.0:
            return self._binomial_inversion(n, p)
        return self._binomial_mode_inversion(n, p)

    def _binomial_inversion(self, n: int, p: float) -> int:
        """Sequential-search inversion; efficient when ``n * p`` is small."""
        q = 1.0 - p
        s = p / q
        f = q**n
        if f <= 0.0:
            # Underflow guard: fall back to summing geometric gaps.
            return self._binomial_geometric(n, p)
        u = self.random()
        x = 0
        cumulative = f
        while u > cumulative:
            x += 1
            if x > n:
                return n
            f *= s * (n - x + 1) / x
            cumulative += f
        return x

    def _binomial_geometric(self, n: int, p: float) -> int:
        """Count successes by jumping over failures with geometric gaps."""
        count = 0
        i = self.geometric(p)
        while i < n:
            count += 1
            i += 1 + self.geometric(p)
        return count

    def _binomial_mode_inversion(self, n: int, p: float) -> int:
        """Exact inversion starting from the distribution mode.

        Sequential-search inversion ordered by decreasing pmf: probe the
        mode, then mode±1, mode±2, ...  Expected number of probes is
        O(sqrt(n·p·(1-p))), which keeps large purge operations fast while
        remaining an *exact* sampler (unlike a normal approximation).
        """
        import math

        mode = int((n + 1) * p)
        if mode > n:
            mode = n
        pmf_mode = math.exp(_binomial_log_pmf(n, p, mode))
        u = self.random()
        # Walk outward from the mode, maintaining pmf values incrementally.
        lo, hi = mode, mode
        pmf_lo, pmf_hi = pmf_mode, pmf_mode
        acc = pmf_mode
        if u <= acc:
            return mode
        while True:
            advanced = False
            if hi < n:
                # pmf(k+1) = pmf(k) * (n-k)/(k+1) * p/(1-p)
                pmf_hi *= (n - hi) / (hi + 1) * (p / (1.0 - p))
                hi += 1
                acc += pmf_hi
                advanced = True
                if u <= acc:
                    return hi
            if lo > 0:
                # pmf(k-1) = pmf(k) * k/(n-k+1) * (1-p)/p
                pmf_lo *= lo / (n - lo + 1) * ((1.0 - p) / p)
                lo -= 1
                acc += pmf_lo
                advanced = True
                if u <= acc:
                    return lo
            if not advanced:
                # Accumulated probability fell short of u by floating-point
                # rounding; the mode is the safest return.
                return mode


def _binomial_log_pmf(n: int, p: float, k: int) -> float:
    """Log of the Binomial(n, p) pmf at ``k`` via lgamma."""
    import math

    if k < 0 or k > n:
        return float("-inf")
    return (
        math.lgamma(n + 1)
        - math.lgamma(k + 1)
        - math.lgamma(n - k + 1)
        + k * math.log(p)
        + (n - k) * math.log(1.0 - p)
    )


def interleave_seeds(rngs: Sequence[SplittableRng]) -> Iterable[int]:
    """Yield the seed of each generator; useful for experiment logging."""
    for rng in rngs:
        yield rng.seed_value

"""repro — a sample-data warehouse (Brown & Haas, ICDE 2006).

A library for maintaining a warehouse of sampled data that shadows a
full-scale data warehouse: per-partition uniform samples with a-priori
bounded footprints and compact ``(value, count)`` storage (Algorithms HB
and HR), mergeable into uniform samples of arbitrary partition unions
(HBMerge / HRMerge), plus the warehouse plumbing — catalog, storage,
parallel ingest, temporal rollup — and an analytics layer for approximate
query answering over the samples.

Quick start::

    from repro import SampleWarehouse, SplittableRng

    wh = SampleWarehouse(bound_values=1024, scheme="hr",
                         rng=SplittableRng(42))
    wh.ingest_batch("orders.amount", values, partitions=8)
    sample = wh.sample_of("orders.amount")     # uniform sample of it all
    print(sample.size, sample.kind.name)
"""

from repro.core import (
    AlgorithmHB,
    AlgorithmHR,
    AlgorithmSB,
    CompactHistogram,
    ConciseSampler,
    CountingSampler,
    FootprintModel,
    MultiPurgeBernoulli,
    SampleKind,
    WarehouseSample,
    hb_merge,
    hr_merge,
    merge_samples,
    merge_tree,
)
from repro.errors import (
    CatalogError,
    ConfigurationError,
    DatasetNotFoundError,
    IncompatibleSamplesError,
    MergeError,
    PartitionNotFoundError,
    ProtocolError,
    ReproError,
    StorageError,
)
from repro.obs import MetricsRegistry, capture, span
from repro.rng import SplittableRng, derive_seed
from repro.warehouse import SampleWarehouse

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core algorithms
    "AlgorithmHB",
    "AlgorithmHR",
    "AlgorithmSB",
    "MultiPurgeBernoulli",
    "ConciseSampler",
    "CountingSampler",
    # sample model
    "CompactHistogram",
    "FootprintModel",
    "SampleKind",
    "WarehouseSample",
    # merges
    "hb_merge",
    "hr_merge",
    "merge_samples",
    "merge_tree",
    # warehouse
    "SampleWarehouse",
    # observability
    "MetricsRegistry",
    "capture",
    "span",
    # rng
    "SplittableRng",
    "derive_seed",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "MergeError",
    "IncompatibleSamplesError",
    "CatalogError",
    "DatasetNotFoundError",
    "PartitionNotFoundError",
    "StorageError",
]

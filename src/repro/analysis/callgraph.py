"""Per-file call-graph summaries (the ``"callgraph"`` summarizer).

This module digests one parsed source file into a JSON-serializable
**module summary** — the only thing the interprocedural engines
(:mod:`repro.analysis.dataflow`, :mod:`repro.analysis.locksets`) ever
see.  Keeping the digest pure JSON is what lets the incremental cache
persist it: a warm ``repro lint`` run rebuilds the whole project call
graph from cached summaries without re-parsing a single unchanged file.

A summary looks like::

    {
      "module": "warehouse.parallel",      # dotted id under repro/
      "path": "src/repro/warehouse/parallel.py",
      "imports": {"SplittableRng": "rng.SplittableRng", ...},
      "module_state": ["SCHEMES", ...],    # module-level mutables
      "module_locks": {"_LOCK": ["lock", 12]},
      "functions": {
        "sample_partition": {
          "name": "sample_partition", "cls": null, "nested": false,
          "line": 95, "col": 0, "public": true,
          "calls":    [{"name": "make_sampler", "line": 98, "col": 14}],
          "effects":  [["filesystem", "open()", 12]],
          "rng_params": ["rng"],
          "rng_draws":  [{"param": "rng", "call": "rng.next_float",
                          "line": 31}],
          "fresh_rng":  [{"name": "SplittableRng", "line": 97,
                          "col": 10, "guarded": false}],
          "submits":    [{"fn": {"kind": "ref", "name":
                          "sample_partition"}, "line": 60, "col": 8,
                          "exec_kind": "process"}]
        },
        ...
      }
    }

Qualified names follow ``inspect``-style spelling: methods are
``Cls.method``, nested defs are ``outer.<locals>.inner``.  ``calls``
keeps the *raw* call-site spelling (``self.feed``, ``wh.register``);
resolution against imports and class context happens in
:class:`~repro.analysis.dataflow.CallGraph`, which has the whole
project in view.

Local **effects** are detected against the canonical call tables in
:mod:`repro.analysis.dataflow`, after rewriting call names through
the file's import aliases (``import time as t; t.time()`` is still a
wall-clock read).  ``rng.py`` is exempt from the ``global-rng``
effect — it implements the discipline the effect polices.

Lockset facts (consumed by :mod:`repro.analysis.locksets`) ride along
on the same records when present:

* ``lock_attrs`` / ``queue_attrs`` / ``exec_attrs`` — ``self._x``
  attributes a method binds to a lock / queue / executor constructor
  (normally in ``__init__``), with the lock *kind* (``lock`` |
  ``rlock``) or executor kind (``process`` | ``thread``).
* ``acquires`` — every ``with <lock>:`` entry or ``.acquire()`` call,
  with the locks already **held** at that point (the acquired-while-
  holding edges RPR102 cycles over).
* ``accesses`` — writes to (and iterations over) shared locations:
  ``self._x`` attributes and module-global names, each with the held
  lockset.  Plain point reads are deliberately *not* recorded — the
  double-checked ``get``-then-locked-``setdefault`` idiom is lawful.
* ``blocking`` — blocking waits (``time.sleep``, queue get/put,
  executor map/submit/shutdown, filesystem calls) made while at least
  one lock was held (RPR103's local evidence).

Locks are recognized structurally where possible (a binding to a
``Lock()``/``RLock()`` constructor, the module-level lock table) and
by spelling otherwise: a ``with``-context or ``.acquire()`` receiver
whose last segment contains ``lock``/``mutex`` counts.  The naming
convention is documented in docs/static_analysis.md and enforced by
the CI lock-coverage gate.

Async facts (consumed by :mod:`repro.analysis.asyncrules`) ride along
the same way:

* ``async_kind`` — ``"coroutine"`` | ``"asyncgen"`` on every
  ``async def``.
* ``awaits`` — every ``await`` expression, with the threading locks
  and asyncio locks held at the suspension point.
* ``aio_lock_attrs`` / ``aio_acquires`` / ``aio_blocking`` — the
  asyncio-lock analogues of the threading tables above.
  ``asyncio.Lock`` is *cooperative* (acquiring it never parks the
  thread), so it lives in separate tables: it guards await-point
  interleavings, not threads.
* Await-point **epochs**: accesses in an ``async def`` carry the
  number of suspension points (``await`` / ``async with`` /
  ``async for``) crossed before them, so the async rules can see a
  read-modify-write straddle a yield to the scheduler.
* Per-call flags: ``awaited`` (directly under ``await``),
  ``discarded`` (an expression statement whose value is dropped),
  ``creates_task`` (``asyncio.create_task`` / ``ensure_future`` /
  ``loop.create_task``), ``blocks`` (the call parks the thread or
  touches the filesystem), and ``arg_of`` (the call sits inside a
  lambda argument of the named enclosing call — it runs wherever
  *that* call runs it, which exempts executor-routed work).
* ``submits`` additionally records ``loop.run_in_executor`` /
  ``asyncio.to_thread`` hand-offs and ``self.<attr>.submit`` on a
  class-level pool (``exec_kind`` ``"attr"``) — the routing
  primitives the blocks-event-loop analysis treats as safe.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.astutil import call_name, dotted_name
from repro.analysis.dataflow import (BLOCKING, BLOCKING_CALLS, ENTROPY,
                                     ENTROPY_CALLS, FILESYSTEM,
                                     FILESYSTEM_CALLS, GLOBAL_RNG,
                                     MUTATING_METHODS, RANDOM_MODULE_FNS,
                                     SALTED_HASH, SHARED_MUTATION,
                                     WALL_CLOCK, WALL_CLOCK_CALLS,
                                     is_seeded_numpy_ctor)
from repro.analysis.framework import SourceFile, summarizer

__all__ = ["callgraph_summary", "module_id"]

#: Stdlib modules whose aliases/from-imports we track so effect
#: detection survives ``import time as t`` / ``from secrets import
#: token_hex`` spellings.
_EXTERN_MODULES = frozenset({
    "time", "datetime", "os", "secrets", "uuid", "random", "shutil",
    "tempfile", "gzip", "numpy", "threading", "queue", "select",
    "signal", "multiprocessing", "concurrent", "asyncio", "socket",
})

#: ``pathlib.Path`` methods that touch the filesystem (receiver-based,
#: so ``self._root.write_text(...)`` counts).
_PATH_FS_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
    "mkdir", "rmdir", "touch", "rename", "replace", "rglob", "glob",
    "iterdir",
})

#: Constructor names that create a process pool.
_PROCESS_CTORS = frozenset({"ProcessExecutor", "ProcessPoolExecutor"})

#: Constructor names that create a thread pool (same-process
#: concurrency: submitted callables share memory with the caller).
_THREAD_CTORS = frozenset({"ThreadExecutor", "ThreadPoolExecutor"})

#: Methods that hand a callable to an executor.
_SUBMIT_METHODS = frozenset({"map", "submit"})

#: Lock constructor terminal names -> lock kind.  ``rlock`` re-entry
#: is legal (RPR102 skips rlock self-edges); plain ``lock`` re-entry
#: self-deadlocks.
_LOCK_CTORS = {"Lock": "lock", "RLock": "rlock"}

#: Canonical spellings that construct a *cooperative* asyncio lock.
#: Kept apart from the threading constructors: acquiring one never
#: parks the thread, so it must not feed the RPR10x lockset tables —
#: it guards await-point interleavings (RPR113) instead.
_AIO_LOCK_CTORS = frozenset({"asyncio.Lock"})

#: Canonical spellings that spawn a task whose handle must be kept
#: (RPR112's fire-and-forget check).
_TASK_SPAWN_CALLS = frozenset({"asyncio.create_task",
                               "asyncio.ensure_future"})

#: Queue constructor terminal names (``queue`` and ``multiprocessing``
#: spellings).  ``get``/``put``/``join`` on a bound queue block.
_QUEUE_CTORS = frozenset({
    "Queue", "SimpleQueue", "LifoQueue", "PriorityQueue",
    "JoinableQueue",
})

#: Blocking methods on a bound queue / executor receiver.
_QUEUE_BLOCKING = frozenset({"get", "put", "join"})
_EXEC_BLOCKING = frozenset({"map", "submit", "shutdown"})

#: Builtins whose call iterates their first argument — ``sorted(d)``
#: walks the dict and races with a concurrent resize even though no
#: element is mutated.
_ITER_BUILTINS = frozenset({
    "sorted", "list", "tuple", "set", "frozenset", "dict", "iter",
    "min", "max", "sum", "any", "all", "enumerate", "zip", "map",
    "filter",
})

#: Mapping view methods: creating the view is cheap but the idiomatic
#: ``list(d.items())`` snapshot must happen under the same lock as the
#: writers, so the view call is recorded as an iteration access.
_VIEW_METHODS = frozenset({"items", "keys", "values"})


def module_id(sf: SourceFile) -> str:
    """The dotted module id under the package root.

    ``core/sample.py`` -> ``core.sample``; a package
    ``__init__.py`` takes the package's own id (``core/__init__.py``
    -> ``core``); a top-level file is just its stem.
    """
    parts = list(sf.package_parts)
    if not parts:
        return ""
    last = parts[-1]
    if last == "__init__.py":
        parts = parts[:-1]
    elif last.endswith(".py"):
        parts[-1] = last[:-3]
    return ".".join(parts)


def _is_public(qual: str) -> bool:
    """Public API: module-level (not nested), no private path part.
    Dunders (``__init__``) count as public — constructing a public
    class is public API."""
    if ".<locals>." in qual:
        return False
    for part in qual.split("."):
        if part.startswith("_") and not (part.startswith("__")
                                         and part.endswith("__")):
            return False
    return True


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _executor_kind(call: ast.Call) -> Optional[str]:
    """``"process"`` / ``"thread"`` when the call constructs a pool."""
    name = call_name(call)
    if name is None:
        return None
    terminal = _last(name)
    if terminal in _PROCESS_CTORS:
        return "process"
    if terminal in _THREAD_CTORS:
        return "thread"
    return None


def _lock_kind(call: ast.Call,
               imports: Optional["_ImportTable"] = None) -> Optional[str]:
    """``"lock"`` / ``"rlock"`` for a threading-lock construction,
    ``"aio"`` for ``asyncio.Lock()`` (canonicalized through the import
    table, so ``from asyncio import Lock`` is not mistaken for a
    threading lock)."""
    name = call_name(call)
    if name is None:
        return None
    canon = imports.canonical(name) if imports is not None else name
    if canon in _AIO_LOCK_CTORS:
        return "aio"
    return _LOCK_CTORS.get(_last(name))


def _spawns_task(raw: str, canon: str) -> bool:
    """``asyncio.create_task`` / ``ensure_future`` /
    ``loop.create_task`` — receivers named ``*loop*`` count, bare
    ``tg.create_task`` (a TaskGroup owns its tasks) does not."""
    if canon in _TASK_SPAWN_CALLS:
        return True
    parts = raw.split(".")
    return len(parts) >= 2 and parts[-1] == "create_task" \
        and "loop" in parts[-2].lower()


def _is_queue_ctor(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and _last(name) in _QUEUE_CTORS


def _lockish_name(name: str) -> bool:
    """Spelling heuristic for lock receivers (``self._lock``,
    ``_CDF_LOCK``, ``_ids_lock`` ...)."""
    terminal = _last(name).lower()
    return "lock" in terminal or "mutex" in terminal


class _ImportTable:
    """The file's import view: ``repro.*`` targets plus the stdlib
    aliases needed to canonicalize effect call names."""

    def __init__(self, tree: ast.Module, package: str) -> None:
        #: local name -> dotted target under the repro root
        self.internal: Dict[str, str] = {}
        #: ``import numpy as np`` -> {"np": "numpy"}
        self._alias: Dict[str, str] = {}
        #: ``from secrets import token_hex`` -> {"token_hex":
        #: "secrets.token_hex"}
        self._from: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self._add_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._add_import_from(node, package)

    def _add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            name, bound = alias.name, alias.asname
            if name.startswith("repro."):
                self.internal.setdefault(bound or name, name[6:])
            elif name.split(".", 1)[0] in _EXTERN_MODULES and bound:
                self._alias.setdefault(bound, name)

    def _add_import_from(self, node: ast.ImportFrom,
                         package: str) -> None:
        if node.level > 0:
            base_parts = package.split(".") if package else []
            drop = node.level - 1
            if drop > len(base_parts):
                return
            base_parts = base_parts[:len(base_parts) - drop]
            if node.module:
                base_parts = base_parts + node.module.split(".")
            base = ".".join(base_parts)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                self.internal.setdefault(alias.asname or alias.name,
                                         target)
            return
        mod = node.module or ""
        if mod == "repro" or mod.startswith("repro."):
            base = mod[6:]  # "" for bare ``from repro import rng``
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                self.internal.setdefault(alias.asname or alias.name,
                                         target)
        elif mod.split(".", 1)[0] in _EXTERN_MODULES:
            for alias in node.names:
                if alias.name == "*":
                    continue
                self._from.setdefault(alias.asname or alias.name,
                                      f"{mod}.{alias.name}")

    def canonical(self, name: str) -> str:
        """Rewrite a call name through the alias tables so it can be
        matched against the dataflow effect tables."""
        if name in self._from:
            return self._from[name]
        first, dot, rest = name.partition(".")
        if first in self._alias:
            return f"{self._alias[first]}{dot}{rest}"
        if rest and first in self._from:
            return f"{self._from[first]}.{rest}"
        return name


def _module_state(tree: ast.Module) -> Set[str]:
    """Module-level names bound to plausibly-mutable values."""
    mutable = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
               ast.SetComp, ast.Call)
    state: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not isinstance(value, mutable):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                state.add(target.id)
    return state


def _module_bindings(tree: ast.Module, imports: _ImportTable):
    """Module-level (executors, locks, queues, asyncio locks) bound
    by name.

    Returns ``(execs, locks, queues, aio_locks)`` where ``execs``
    maps name -> executor kind and ``locks`` maps name ->
    ``[kind, line]``.
    """
    execs: Dict[str, str] = {}
    locks: Dict[str, List[object]] = {}
    queues: Set[str] = set()
    aio_locks: Set[str] = set()
    for stmt in tree.body:
        if not (isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.Call)):
            continue
        ekind = _executor_kind(stmt.value)
        lkind = _lock_kind(stmt.value, imports)
        is_queue = _is_queue_ctor(stmt.value)
        for target in stmt.targets:
            if not isinstance(target, ast.Name):
                continue
            if ekind is not None:
                execs[target.id] = ekind
            elif lkind == "aio":
                aio_locks.add(target.id)
            elif lkind is not None:
                locks[target.id] = [lkind, stmt.lineno]
            elif is_queue:
                queues.add(target.id)
    return execs, locks, queues, aio_locks


def _rng_params(node: ast.AST) -> List[str]:
    """Parameters that carry an RNG handle: named ``rng``/``*_rng``
    or annotated with a ``*Rng`` type."""
    args = node.args
    params: List[str] = []
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "rng" or arg.arg.endswith("_rng"):
            params.append(arg.arg)
            continue
        ann = arg.annotation
        if ann is not None and any(
                isinstance(n, ast.Name) and n.id.endswith("Rng")
                for n in ast.walk(ann)):
            params.append(arg.arg)
    return params


def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every node in the function's own body, stopping at nested
    def/class boundaries (lambdas are part of the body)."""
    stack: List[ast.AST] = list(fn_node.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _flat_targets(targets: Sequence[ast.expr]) -> List[ast.expr]:
    """Assignment targets with tuple/list unpacking flattened, in
    syntactic order (``a, (b, c) = ...`` -> ``[a, b, c]``)."""
    flat: List[ast.expr] = []
    for target in targets:
        if isinstance(target, (ast.Tuple, ast.List)):
            flat.extend(_flat_targets(target.elts))
        elif isinstance(target, ast.Starred):
            flat.extend(_flat_targets([target.value]))
        else:
            flat.append(target)
    return flat


class _FunctionScan:
    """One function body -> its summary record."""

    def __init__(self, node: ast.AST, qual: str, cls: Optional[str],
                 nested: bool, imports: _ImportTable,
                 module_state: Set[str], module_execs: Dict[str, str],
                 module_locks: Dict[str, List[object]],
                 module_queues: Set[str], module_aio_locks: Set[str],
                 rng_exempt: bool) -> None:
        self._imports = imports
        self._module_state = module_state
        self._module_locks = module_locks
        self._rng_exempt = rng_exempt
        self._is_async = isinstance(node, ast.AsyncFunctionDef)
        self.record: Dict[str, object] = {
            "name": getattr(node, "name", "<lambda>"),
            "cls": cls,
            "nested": nested,
            "line": node.lineno,
            "col": node.col_offset,
            "public": _is_public(qual),
            "calls": [],
            "effects": [],
            "rng_params": _rng_params(node),
            "rng_draws": [],
            "fresh_rng": [],
            "submits": [],
        }
        self._rng_params = set(self.record["rng_params"])
        # Lockset facts — attached to the record only when non-empty
        # (finalized below) so unaffected summaries stay byte-stable.
        self._lock_attrs: Dict[str, List[object]] = {}
        self._queue_attrs: Dict[str, int] = {}
        self._exec_attrs: Dict[str, str] = {}
        self._acquires: List[dict] = []
        self._accesses: List[dict] = []
        self._blocking: List[dict] = []
        # Async facts (attached the same way).
        self._awaits: List[dict] = []
        self._aio_lock_attrs: Dict[str, int] = {}
        self._aio_acquires: List[dict] = []
        self._aio_blocking: List[dict] = []
        self._attr_binds: Dict[str, str] = {}
        self._aio_held: Set[str] = set()
        self._epoch = 0
        self._has_yield = False
        self._arg_of: Optional[str] = None
        self._lambda_ctx: Dict[int, str] = {}
        self._awaited_calls: Set[int] = set()
        self._discarded_calls: Set[int] = set()
        # Pass 1: scope facts the expression walk depends on.
        self._outer_names: Set[str] = set()
        self._global_names: Set[str] = set()
        self._local_execs: Dict[str, str] = dict(module_execs)
        self._local_queues: Set[str] = set(module_queues)
        self._local_locks: Set[str] = set()
        self._local_aio_locks: Set[str] = set(module_aio_locks)
        self._local_lambdas: Set[str] = set()
        self._alias_assigns: List[Tuple[List[ast.expr], str]] = []
        for own in _own_nodes(node):
            self._scan_scope(own)
        if self._is_async:
            self.record["async_kind"] = \
                "asyncgen" if self._has_yield else "coroutine"
        # Aliases like ``pool = ThreadPoolExecutor(); self._pool =
        # pool`` need a propagation sweep (scan order is arbitrary).
        for _ in range(2):
            for targets, src in self._alias_assigns:
                ekind = self._local_execs.get(src)
                in_queues = src in self._local_queues
                for target in targets:
                    name = dotted_name(target)
                    if name is None:
                        continue
                    if ekind is not None:
                        self._bind_executor([target], ekind)
                    if in_queues:
                        self._bind_queue([target])
        # Pass 2: calls, effects, draws, submissions, locksets.
        held: Set[str] = set()
        for stmt in node.body:
            self._visit(stmt, False, held)
        args = node.args
        params = [a.arg for a in [*args.posonlyargs, *args.args,
                                  *args.kwonlyargs]]
        for key, value in (("lock_attrs", self._lock_attrs),
                           ("queue_attrs", self._queue_attrs),
                           ("exec_attrs", self._exec_attrs),
                           ("acquires", self._acquires),
                           ("accesses", self._accesses),
                           ("blocking", self._blocking),
                           ("params", params),
                           ("attr_binds", self._attr_binds),
                           ("aio_lock_attrs", self._aio_lock_attrs),
                           ("aio_acquires", self._aio_acquires),
                           ("aio_blocking", self._aio_blocking),
                           ("awaits", self._awaits)):
            if value:
                self.record[key] = value

    # -- pass 1 ---------------------------------------------------------

    def _scan_scope(self, node: ast.AST) -> None:
        if isinstance(node, ast.Global):
            self._outer_names.update(node.names)
            self._global_names.update(node.names)
        elif isinstance(node, ast.Nonlocal):
            self._outer_names.update(node.names)
        elif isinstance(node, ast.Yield):
            self._has_yield = True
        elif isinstance(node, ast.Assign):
            value = node.value
            if isinstance(value, ast.Call):
                self._bind_attr_ctor(node.targets, value)
                ekind = _executor_kind(value)
                lkind = _lock_kind(value, self._imports)
                if ekind is not None:
                    self._bind_executor(node.targets, ekind)
                elif lkind == "aio":
                    self._bind_aio_lock(node.targets, node.lineno)
                elif lkind is not None:
                    self._bind_lock(node.targets, lkind, node.lineno)
                elif _is_queue_ctor(value):
                    self._bind_queue(node.targets)
            elif isinstance(value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._local_lambdas.add(target.id)
            else:
                src = dotted_name(value)
                if src is not None:
                    self._alias_assigns.append(
                        (list(node.targets), src))
        elif isinstance(node, ast.withitem):
            if isinstance(node.context_expr, ast.Call) and \
                    node.optional_vars is not None:
                ekind = _executor_kind(node.context_expr)
                if ekind is not None:
                    self._bind_executor([node.optional_vars], ekind)

    def _bind_executor(self, targets: Sequence[ast.expr],
                       kind: str) -> None:
        for target in targets:
            name = dotted_name(target)
            if name is None:
                continue
            self._local_execs.setdefault(name, kind)
            first, _, rest = name.partition(".")
            if first == "self" and rest and "." not in rest:
                self._exec_attrs.setdefault(rest, kind)

    def _bind_lock(self, targets: Sequence[ast.expr], kind: str,
                   line: int) -> None:
        for target in targets:
            name = dotted_name(target)
            if name is None:
                continue
            self._local_locks.add(name)
            first, _, rest = name.partition(".")
            if first == "self" and rest and "." not in rest:
                self._lock_attrs.setdefault(rest, [kind, line])

    def _bind_queue(self, targets: Sequence[ast.expr]) -> None:
        for target in targets:
            name = dotted_name(target)
            if name is None:
                continue
            self._local_queues.add(name)
            first, _, rest = name.partition(".")
            if first == "self" and rest and "." not in rest:
                self._queue_attrs.setdefault(rest, target.lineno)

    def _bind_aio_lock(self, targets: Sequence[ast.expr],
                       line: int) -> None:
        for target in targets:
            name = dotted_name(target)
            if name is None:
                continue
            self._local_aio_locks.add(name)
            first, _, rest = name.partition(".")
            if first == "self" and rest and "." not in rest:
                self._aio_lock_attrs.setdefault(rest, line)

    def _bind_attr_ctor(self, targets: Sequence[ast.expr],
                        value: ast.Call) -> None:
        """``self._x = Ctor(...)`` -> the raw constructor spelling.
        The async model resolves it project-wide so a later
        ``self._x.method()`` call can be colored."""
        ctor = call_name(value)
        if ctor is None:
            return
        for target in targets:
            name = dotted_name(target)
            if name is None:
                continue
            first, _, rest = name.partition(".")
            if first == "self" and rest and "." not in rest:
                self._attr_binds.setdefault(rest, ctor)

    # -- pass 2 ---------------------------------------------------------

    def _is_lock_name(self, name: str) -> bool:
        return (name in self._local_locks
                or name in self._module_locks
                or name in self._local_aio_locks
                or _lockish_name(name))

    def _is_aio_lock_name(self, name: str) -> bool:
        return name in self._local_aio_locks

    def _visit(self, node: ast.AST, guarded: bool,
               held: Set[str]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # summarized as its own record
        if isinstance(node, ast.Expr) and isinstance(node.value,
                                                     ast.Call):
            # The call's value is dropped on the floor — RPR112's
            # un-awaited-coroutine / fire-and-forget evidence.
            self._discarded_calls.add(id(node.value))
        if isinstance(node, ast.Await):
            if isinstance(node.value, ast.Call):
                self._awaited_calls.add(id(node.value))
            self._visit(node.value, guarded, held)
            self._record_await(node, held)
            self._epoch += 1
            return
        if isinstance(node, ast.Lambda):
            ctx = self._lambda_ctx.get(id(node))
            if ctx is not None:
                outer = self._arg_of
                self._arg_of = ctx
                for child in ast.iter_child_nodes(node):
                    self._visit(child, guarded, held)
                self._arg_of = outer
                return
        if isinstance(node, (ast.With, ast.AsyncWith)):
            self._handle_with(node, guarded, held)
            return
        if isinstance(node, ast.Call):
            self._handle_call(node, guarded, held)
        elif isinstance(node, (ast.Assign, ast.AugAssign,
                               ast.AnnAssign)) and self._is_async:
            # In a coroutine the value is evaluated (and may suspend)
            # *before* the store, so visit it first — the write must
            # land in the post-await epoch.
            value = getattr(node, "value", None)
            if value is not None:
                self._visit(value, guarded, held)
            self._handle_assignment(node, held)
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                self._visit(target, guarded, held)
            return
        elif isinstance(node, (ast.Assign, ast.AugAssign,
                               ast.AnnAssign)):
            self._handle_assignment(node, held)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                self._access_of_target(target, held)
        elif isinstance(node, ast.AsyncFor):
            self._iter_access(node.iter, held)
            self._visit(node.iter, guarded, held)
            self._epoch += 1  # every __anext__ is a suspension point
            for child in [node.target, *node.body, *node.orelse]:
                self._visit(child, guarded, held)
            return
        elif isinstance(node, ast.For):
            self._iter_access(node.iter, held)
        elif isinstance(node, ast.comprehension):
            self._iter_access(node.iter, held)
        if isinstance(node, (ast.If, ast.IfExp)):
            self._visit(node.test, guarded, held)
            body = node.body if isinstance(node.body, list) \
                else [node.body]
            orelse = node.orelse if isinstance(node.orelse, list) \
                else ([node.orelse] if node.orelse is not None else [])
            branch_guarded = guarded or self._mentions_rng(node.test)
            for child in [*body, *orelse]:
                self._visit(child, branch_guarded, held)
            return
        if isinstance(node, ast.BoolOp):
            op_guarded = guarded or any(self._mentions_rng(v)
                                        for v in node.values)
            for child in node.values:
                self._visit(child, op_guarded, held)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded, held)

    def _handle_with(self, node: ast.AST, guarded: bool,
                     held: Set[str]) -> None:
        is_async = isinstance(node, ast.AsyncWith)
        acquired: List[str] = []
        aio_acquired: List[str] = []
        for item in node.items:
            expr = item.context_expr
            token = None
            if not isinstance(expr, ast.Call):
                name = dotted_name(expr)
                if name is not None and self._is_lock_name(name):
                    token = name
            if token is None:
                self._visit(expr, guarded, held)
            elif self._is_aio_lock_name(token) or is_async:
                # ``async with lock:`` — a cooperative asyncio lock.
                # Entering it never parks the thread, so it feeds the
                # aio tables, not the threading lockset.
                self._record_aio_acquire(token, expr.lineno,
                                         expr.col_offset)
                if token not in self._aio_held:
                    self._aio_held.add(token)
                    aio_acquired.append(token)
            else:
                self._record_acquire(token, expr.lineno,
                                     expr.col_offset, held)
                if token not in held:
                    held.add(token)
                    acquired.append(token)
        if is_async:
            self._epoch += 1  # __aenter__ suspends
        for stmt in node.body:
            self._visit(stmt, guarded, held)
        for token in acquired:
            held.discard(token)
        for token in aio_acquired:
            self._aio_held.discard(token)
        if is_async:
            self._epoch += 1  # __aexit__ suspends

    def _record_acquire(self, token: str, line: int, col: int,
                        held: Set[str]) -> None:
        self._acquires.append({"lock": token, "line": line, "col": col,
                               "held": sorted(held)})

    def _record_aio_acquire(self, token: str, line: int,
                            col: int) -> None:
        self._aio_acquires.append({"lock": token, "line": line,
                                   "col": col,
                                   "aio_held": sorted(self._aio_held)})

    def _record_await(self, node: ast.Await, held: Set[str]) -> None:
        entry: Dict[str, object] = {"line": node.lineno,
                                    "col": node.col_offset}
        if isinstance(node.value, ast.Call):
            name = call_name(node.value)
            if name is not None:
                entry["call"] = name
        if held:
            entry["held"] = sorted(held)
        if self._aio_held:
            entry["aio_held"] = sorted(self._aio_held)
        self._awaits.append(entry)

    def _record_access(self, target: str, kind: str, line: int,
                       col: int, held: Set[str]) -> None:
        entry: Dict[str, object] = {"target": target, "kind": kind,
                                    "line": line, "col": col,
                                    "held": sorted(held)}
        if self._epoch:
            entry["epoch"] = self._epoch
        if self._aio_held:
            entry["aio_held"] = sorted(self._aio_held)
        self._accesses.append(entry)

    def _access_target(self, base: str) -> Optional[str]:
        """Canonicalize a dotted receiver to a tracked shared location
        (``self._x`` or a module-global name), else ``None``."""
        first, _, rest = base.partition(".")
        if first == "self":
            if not rest:
                return None
            attr = rest.split(".", 1)[0]
            if not attr.startswith("_"):
                return None
            if self._is_lock_name(f"self.{attr}"):
                return None  # the lock itself is not guarded data
            return f"self.{attr}"
        if first in self._module_state or first in self._global_names:
            if self._is_lock_name(first):
                return None
            if first in self._local_execs or first in self._local_queues:
                return None  # pools/queues synchronize internally
            return first
        return None

    def _mentions_rng(self, node: ast.AST) -> bool:
        return any(isinstance(n, ast.Name) and n.id in self._rng_params
                   for n in ast.walk(node))

    def _handle_call(self, call: ast.Call, guarded: bool,
                     held: Set[str]) -> None:
        # Submission detection must not depend on the call having a
        # dotted name: ``ProcessExecutor().map(...)`` has a Call
        # receiver, which ``call_name`` cannot render.
        self._submission_of_call(call)
        func = call.func
        if isinstance(func, ast.Attribute) and \
                func.attr in ("acquire", "release"):
            token = dotted_name(func.value)
            if token is not None and self._is_aio_lock_name(token):
                if func.attr == "acquire":
                    self._record_aio_acquire(token, call.lineno,
                                             call.col_offset)
                    self._aio_held.add(token)
                else:
                    self._aio_held.discard(token)
                return
            if token is not None and self._is_lock_name(token):
                if func.attr == "acquire":
                    self._record_acquire(token, call.lineno,
                                         call.col_offset, held)
                    held.add(token)
                else:
                    held.discard(token)
                return
        raw = call_name(call)
        if raw is None:
            return
        for arg in [*call.args, *[kw.value for kw in call.keywords]]:
            if isinstance(arg, ast.Lambda):
                self._lambda_ctx[id(arg)] = raw
        entry: Dict[str, object] = {"name": raw, "line": call.lineno,
                                    "col": call.col_offset}
        if held:
            entry["held"] = sorted(held)
        if self._aio_held:
            entry["aio_held"] = sorted(self._aio_held)
        if id(call) in self._awaited_calls:
            entry["awaited"] = True
        elif id(call) in self._discarded_calls:
            entry["discarded"] = True
        if self._arg_of is not None:
            entry["arg_of"] = self._arg_of
        if _spawns_task(raw, self._imports.canonical(raw)):
            entry["creates_task"] = True
        self.record["calls"].append(entry)
        if self._effects_of_call(call, raw, held):
            entry["blocks"] = True
        self._rng_of_call(call, raw, guarded)
        self._access_of_call(call, raw, held)

    def _effects_of_call(self, call: ast.Call, raw: str,
                         held: Set[str]) -> bool:
        """Record the call's local effects; returns True when the
        call parks the thread (blocking or filesystem) — the local
        blocks-event-loop evidence."""
        canon = self._imports.canonical(raw)
        filesystem = False
        if canon in WALL_CLOCK_CALLS:
            self._effect(WALL_CLOCK, f"{raw}()", call.lineno)
        elif canon in ENTROPY_CALLS or canon == "random.SystemRandom" \
                or ((canon.startswith("numpy.random.")
                     or raw.startswith("np.random."))
                    and not is_seeded_numpy_ctor(raw, call)):
            # Seeded numpy generator construction is deterministic
            # (RPR003 sanctions it the same way); everything else
            # under numpy.random taints as entropy.
            self._effect(ENTROPY, f"{raw}()", call.lineno)
        elif raw in ("hash", "id"):
            self._effect(SALTED_HASH, f"{raw}()", call.lineno)
        elif canon.startswith("random.") and not self._rng_exempt \
                and canon[len("random."):] in RANDOM_MODULE_FNS:
            self._effect(GLOBAL_RNG, f"{raw}()", call.lineno)
        elif canon in FILESYSTEM_CALLS or (
                "." in raw and _last(raw) in _PATH_FS_METHODS):
            self._effect(FILESYSTEM, f"{raw}()", call.lineno)
            filesystem = True
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in MUTATING_METHODS:
            base = dotted_name(call.func.value)
            if base is not None:
                first = base.split(".", 1)[0]
                if first in self._outer_names or \
                        first in self._module_state:
                    self._effect(
                        SHARED_MUTATION,
                        f"{raw}() mutates module state '{first}'",
                        call.lineno)
        blocking = canon in BLOCKING_CALLS
        if not blocking and isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            base = dotted_name(call.func.value)
            if attr in _QUEUE_BLOCKING and base is not None and \
                    base in self._local_queues:
                blocking = True
            elif attr in _EXEC_BLOCKING and (
                    (base is not None and base in self._local_execs)
                    or (isinstance(call.func.value, ast.Call)
                        and _executor_kind(call.func.value)
                        is not None)):
                blocking = True
        if blocking:
            self._effect(BLOCKING, f"{raw}()", call.lineno)
        if (blocking or filesystem) and held:
            self._blocking.append({"detail": f"{raw}()",
                                   "line": call.lineno,
                                   "held": sorted(held)})
        if (blocking or filesystem) and self._aio_held:
            self._aio_blocking.append(
                {"detail": f"{raw}()", "line": call.lineno,
                 "aio_held": sorted(self._aio_held)})
        return blocking or filesystem

    def _access_of_call(self, call: ast.Call, raw: str,
                        held: Set[str]) -> None:
        func = call.func
        if isinstance(func, ast.Name) and raw in _ITER_BUILTINS \
                and call.args:
            arg = call.args[0]
            if not isinstance(arg, ast.Call):
                self._iter_access(arg, held)
            return
        if not isinstance(func, ast.Attribute):
            return
        base = dotted_name(func.value)
        if base is None:
            return
        target = self._access_target(base)
        if target is None:
            return
        if func.attr in _VIEW_METHODS and not call.args:
            self._record_access(target, "iter", call.lineno,
                                call.col_offset, held)
        elif func.attr in MUTATING_METHODS:
            self._record_access(target, "write", call.lineno,
                                call.col_offset, held)

    def _iter_access(self, node: ast.AST, held: Set[str]) -> None:
        name = dotted_name(node)
        if name is None:
            return
        target = self._access_target(name)
        if target is not None:
            self._record_access(target, "iter", node.lineno,
                                node.col_offset, held)

    def _rng_of_call(self, call: ast.Call, raw: str,
                     guarded: bool) -> None:
        first = raw.split(".", 1)[0]
        if "." in raw and first in self._rng_params:
            self.record["rng_draws"].append(
                {"param": first, "call": raw, "line": call.lineno})
            return
        terminal = _last(raw)
        if terminal.endswith("Rng") and terminal[:1].isupper():
            self.record["fresh_rng"].append(
                {"name": raw, "line": call.lineno,
                 "col": call.col_offset, "guarded": guarded})

    def _submission_of_call(self, call: ast.Call) -> None:
        func = call.func
        name = call_name(call)
        if name is not None and _last(name) == "Thread":
            # ``threading.Thread(target=fn)`` is a thread-entry
            # submission: ``fn`` runs concurrently with the creator.
            for kw in call.keywords:
                if kw.arg == "target":
                    self._append_submit(kw.value, call, "thread")
                    return
            return
        if name is not None and call.args and \
                self._imports.canonical(name) == "asyncio.to_thread":
            # ``asyncio.to_thread(fn, ...)`` routes fn off the loop.
            self._append_submit(call.args[0], call, "thread")
            return
        if isinstance(func, ast.Attribute) and \
                func.attr == "run_in_executor" and len(call.args) >= 2:
            # ``loop.run_in_executor(exec_or_None, fn, ...)``.
            self._append_submit(call.args[1], call, "thread")
            return
        if not isinstance(func, ast.Attribute) or \
                func.attr not in _SUBMIT_METHODS or not call.args:
            return
        receiver = func.value
        kind: Optional[str] = None
        if isinstance(receiver, ast.Call):
            kind = _executor_kind(receiver)
        else:
            rname = dotted_name(receiver)
            if rname is not None:
                kind = self._local_execs.get(rname)
                if kind is None:
                    first, _, rest = rname.partition(".")
                    if first == "self" and rest and "." not in rest:
                        # ``self._executor.submit(fn)``: the pool was
                        # bound in another method, so its kind lives on
                        # that record — the async model resolves it
                        # against the class's executor attributes.
                        kind = "attr"
        if kind is None:
            return
        self._append_submit(call.args[0], call, kind)

    def _append_submit(self, fn_arg: ast.expr, call: ast.Call,
                       exec_kind: str) -> None:
        if isinstance(fn_arg, ast.Lambda):
            fn = {"kind": "lambda", "name": None}
        else:
            name = dotted_name(fn_arg)
            if name is not None and name in self._local_lambdas:
                fn = {"kind": "lambda", "name": name}
            elif name is not None:
                fn = {"kind": "ref", "name": name}
            else:
                fn = {"kind": "opaque", "name": None}
        self.record["submits"].append(
            {"fn": fn, "line": call.lineno, "col": call.col_offset,
             "exec_kind": exec_kind})

    def _handle_assignment(self, node: ast.AST,
                           held: Set[str]) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in _flat_targets(targets):
            if isinstance(target, ast.Name):
                if target.id in self._outer_names:
                    self._effect(
                        SHARED_MUTATION,
                        f"write to outer-scope name '{target.id}'",
                        node.lineno)
                if target.id in self._global_names:
                    tracked = self._access_target(target.id)
                    if tracked is not None:
                        self._record_access(tracked, "write",
                                            target.lineno,
                                            target.col_offset, held)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                base = dotted_name(
                    target.value if isinstance(target, ast.Subscript)
                    else target)
                if base is None:
                    continue
                first = base.split(".", 1)[0]
                if first != "self" and (first in self._outer_names
                                        or first in self._module_state):
                    self._effect(
                        SHARED_MUTATION,
                        f"write to module state '{first}'",
                        node.lineno)
                tracked = self._access_target(base)
                if tracked is not None:
                    self._record_access(tracked, "write",
                                        target.lineno,
                                        target.col_offset, held)

    def _access_of_target(self, target: ast.expr,
                          held: Set[str]) -> None:
        if not isinstance(target, (ast.Attribute, ast.Subscript,
                                   ast.Name)):
            return
        if isinstance(target, ast.Name):
            base = target.id if target.id in self._global_names \
                else None
        else:
            base = dotted_name(
                target.value if isinstance(target, ast.Subscript)
                else target)
        if base is None:
            return
        tracked = self._access_target(base)
        if tracked is not None:
            self._record_access(tracked, "write", target.lineno,
                                target.col_offset, held)

    def _effect(self, effect: str, detail: str, line: int) -> None:
        self.record["effects"].append([effect, detail, line])


@summarizer("callgraph")
def callgraph_summary(sf: SourceFile) -> dict:
    """Digest ``sf`` into the module summary described above."""
    mod = module_id(sf)
    parts = list(sf.package_parts)
    if parts and parts[-1] == "__init__.py":
        package = mod
    else:
        package = mod.rsplit(".", 1)[0] if "." in mod else ""
    imports = _ImportTable(sf.tree, package)
    module_state = _module_state(sf.tree)
    module_execs, module_locks, module_queues, module_aio_locks = \
        _module_bindings(sf.tree, imports)
    rng_exempt = sf.is_module("rng.py")
    functions: Dict[str, dict] = {}

    def walk_defs(stmts: Sequence[ast.stmt], prefix: str,
                  cls: Optional[str], nested: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + stmt.name
                scan = _FunctionScan(stmt, qual, cls, nested, imports,
                                     module_state, module_execs,
                                     module_locks, module_queues,
                                     module_aio_locks, rng_exempt)
                functions[qual] = scan.record
                walk_defs(stmt.body, qual + ".<locals>.", None, True)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = prefix + stmt.name
                walk_defs(stmt.body, cls_qual + ".", cls_qual, nested)

    walk_defs(sf.tree.body, "", None, False)
    return {
        "module": mod,
        "path": sf.display_path,
        "imports": dict(sorted(imports.internal.items())),
        "module_state": sorted(module_state),
        "module_locks": {name: module_locks[name]
                         for name in sorted(module_locks)},
        "module_aio_locks": sorted(module_aio_locks),
        "functions": functions,
    }

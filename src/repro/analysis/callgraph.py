"""Per-file call-graph summaries (the ``"callgraph"`` summarizer).

This module digests one parsed source file into a JSON-serializable
**module summary** — the only thing the interprocedural engine
(:mod:`repro.analysis.dataflow`) ever sees.  Keeping the digest pure
JSON is what lets the incremental cache persist it: a warm ``repro
lint`` run rebuilds the whole project call graph from cached
summaries without re-parsing a single unchanged file.

A summary looks like::

    {
      "module": "warehouse.parallel",      # dotted id under repro/
      "path": "src/repro/warehouse/parallel.py",
      "imports": {"SplittableRng": "rng.SplittableRng", ...},
      "module_state": ["SCHEMES", ...],    # module-level mutables
      "functions": {
        "sample_partition": {
          "name": "sample_partition", "cls": null, "nested": false,
          "line": 95, "col": 0, "public": true,
          "calls":    [{"name": "make_sampler", "line": 98, "col": 14}],
          "effects":  [["filesystem", "open()", 12]],
          "rng_params": ["rng"],
          "rng_draws":  [{"param": "rng", "call": "rng.next_float",
                          "line": 31}],
          "fresh_rng":  [{"name": "SplittableRng", "line": 97,
                          "col": 10, "guarded": false}],
          "submits":    [{"fn": {"kind": "ref", "name":
                          "sample_partition"}, "line": 60, "col": 8}]
        },
        ...
      }
    }

Qualified names follow ``inspect``-style spelling: methods are
``Cls.method``, nested defs are ``outer.<locals>.inner``.  ``calls``
keeps the *raw* call-site spelling (``self.feed``, ``wh.register``);
resolution against imports and class context happens in
:class:`~repro.analysis.dataflow.CallGraph`, which has the whole
project in view.

Local **effects** are detected against the canonical call tables in
:mod:`repro.analysis.dataflow`, after rewriting call names through
the file's import aliases (``import time as t; t.time()`` is still a
wall-clock read).  ``rng.py`` is exempt from the ``global-rng``
effect — it implements the discipline the effect polices.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.analysis.astutil import call_name, dotted_name
from repro.analysis.dataflow import (ENTROPY, ENTROPY_CALLS, FILESYSTEM,
                                     FILESYSTEM_CALLS, GLOBAL_RNG,
                                     MUTATING_METHODS, RANDOM_MODULE_FNS,
                                     SALTED_HASH, SHARED_MUTATION,
                                     WALL_CLOCK, WALL_CLOCK_CALLS,
                                     is_seeded_numpy_ctor)
from repro.analysis.framework import SourceFile, summarizer

__all__ = ["callgraph_summary", "module_id"]

#: Stdlib modules whose aliases/from-imports we track so effect
#: detection survives ``import time as t`` / ``from secrets import
#: token_hex`` spellings.
_EXTERN_MODULES = frozenset({
    "time", "datetime", "os", "secrets", "uuid", "random", "shutil",
    "tempfile", "gzip", "numpy",
})

#: ``pathlib.Path`` methods that touch the filesystem (receiver-based,
#: so ``self._root.write_text(...)`` counts).
_PATH_FS_METHODS = frozenset({
    "write_text", "write_bytes", "read_text", "read_bytes", "unlink",
    "mkdir", "rmdir", "touch", "rename", "replace", "rglob", "glob",
    "iterdir",
})

#: Constructor names that create a process pool.
_PROCESS_CTORS = frozenset({"ProcessExecutor", "ProcessPoolExecutor"})

#: Methods that hand a callable to an executor.
_SUBMIT_METHODS = frozenset({"map", "submit"})


def module_id(sf: SourceFile) -> str:
    """The dotted module id under the package root.

    ``core/sample.py`` -> ``core.sample``; a package
    ``__init__.py`` takes the package's own id (``core/__init__.py``
    -> ``core``); a top-level file is just its stem.
    """
    parts = list(sf.package_parts)
    if not parts:
        return ""
    last = parts[-1]
    if last == "__init__.py":
        parts = parts[:-1]
    elif last.endswith(".py"):
        parts[-1] = last[:-3]
    return ".".join(parts)


def _is_public(qual: str) -> bool:
    """Public API: module-level (not nested), no private path part.
    Dunders (``__init__``) count as public — constructing a public
    class is public API."""
    if ".<locals>." in qual:
        return False
    for part in qual.split("."):
        if part.startswith("_") and not (part.startswith("__")
                                         and part.endswith("__")):
            return False
    return True


def _last(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def _is_process_ctor(call: ast.Call) -> bool:
    name = call_name(call)
    return name is not None and _last(name) in _PROCESS_CTORS


class _ImportTable:
    """The file's import view: ``repro.*`` targets plus the stdlib
    aliases needed to canonicalize effect call names."""

    def __init__(self, tree: ast.Module, package: str) -> None:
        #: local name -> dotted target under the repro root
        self.internal: Dict[str, str] = {}
        #: ``import numpy as np`` -> {"np": "numpy"}
        self._alias: Dict[str, str] = {}
        #: ``from secrets import token_hex`` -> {"token_hex":
        #: "secrets.token_hex"}
        self._from: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                self._add_import(node)
            elif isinstance(node, ast.ImportFrom):
                self._add_import_from(node, package)

    def _add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            name, bound = alias.name, alias.asname
            if name.startswith("repro."):
                self.internal.setdefault(bound or name, name[6:])
            elif name.split(".", 1)[0] in _EXTERN_MODULES and bound:
                self._alias.setdefault(bound, name)

    def _add_import_from(self, node: ast.ImportFrom,
                         package: str) -> None:
        if node.level > 0:
            base_parts = package.split(".") if package else []
            drop = node.level - 1
            if drop > len(base_parts):
                return
            base_parts = base_parts[:len(base_parts) - drop]
            if node.module:
                base_parts = base_parts + node.module.split(".")
            base = ".".join(base_parts)
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                self.internal.setdefault(alias.asname or alias.name,
                                         target)
            return
        mod = node.module or ""
        if mod == "repro" or mod.startswith("repro."):
            base = mod[6:]  # "" for bare ``from repro import rng``
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                self.internal.setdefault(alias.asname or alias.name,
                                         target)
        elif mod.split(".", 1)[0] in _EXTERN_MODULES:
            for alias in node.names:
                if alias.name == "*":
                    continue
                self._from.setdefault(alias.asname or alias.name,
                                      f"{mod}.{alias.name}")

    def canonical(self, name: str) -> str:
        """Rewrite a call name through the alias tables so it can be
        matched against the dataflow effect tables."""
        if name in self._from:
            return self._from[name]
        first, dot, rest = name.partition(".")
        if first in self._alias:
            return f"{self._alias[first]}{dot}{rest}"
        if rest and first in self._from:
            return f"{self._from[first]}.{rest}"
        return name


def _module_state(tree: ast.Module) -> Set[str]:
    """Module-level names bound to plausibly-mutable values."""
    mutable = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
               ast.SetComp, ast.Call)
    state: Set[str] = set()
    for stmt in tree.body:
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        if not isinstance(value, mutable):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                state.add(target.id)
    return state


def _module_executors(tree: ast.Module) -> Set[str]:
    """Module-level names bound to a process-pool constructor."""
    bound: Set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.value, ast.Call) and \
                _is_process_ctor(stmt.value):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
    return bound


def _rng_params(node: ast.AST) -> List[str]:
    """Parameters that carry an RNG handle: named ``rng``/``*_rng``
    or annotated with a ``*Rng`` type."""
    args = node.args
    params: List[str] = []
    for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
        if arg.arg == "rng" or arg.arg.endswith("_rng"):
            params.append(arg.arg)
            continue
        ann = arg.annotation
        if ann is not None and any(
                isinstance(n, ast.Name) and n.id.endswith("Rng")
                for n in ast.walk(ann)):
            params.append(arg.arg)
    return params


def _own_nodes(fn_node: ast.AST) -> Iterator[ast.AST]:
    """Every node in the function's own body, stopping at nested
    def/class boundaries (lambdas are part of the body)."""
    stack: List[ast.AST] = list(fn_node.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


class _FunctionScan:
    """One function body -> its summary record."""

    def __init__(self, node: ast.AST, qual: str, cls: Optional[str],
                 nested: bool, imports: _ImportTable,
                 module_state: Set[str], module_execs: Set[str],
                 rng_exempt: bool) -> None:
        self._imports = imports
        self._module_state = module_state
        self._rng_exempt = rng_exempt
        self.record: Dict[str, object] = {
            "name": getattr(node, "name", "<lambda>"),
            "cls": cls,
            "nested": nested,
            "line": node.lineno,
            "col": node.col_offset,
            "public": _is_public(qual),
            "calls": [],
            "effects": [],
            "rng_params": _rng_params(node),
            "rng_draws": [],
            "fresh_rng": [],
            "submits": [],
        }
        self._rng_params = set(self.record["rng_params"])
        # Pass 1: scope facts the expression walk depends on.
        self._outer_names: Set[str] = set()
        self._local_execs: Set[str] = set(module_execs)
        self._local_lambdas: Set[str] = set()
        for own in _own_nodes(node):
            self._scan_scope(own)
        # Pass 2: calls, effects, draws, submissions (guard-aware).
        for stmt in node.body:
            self._visit(stmt, guarded=False)

    # -- pass 1 ---------------------------------------------------------

    def _scan_scope(self, node: ast.AST) -> None:
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            self._outer_names.update(node.names)
        elif isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Call) and \
                    _is_process_ctor(node.value):
                self._bind_executor(node.targets)
            elif isinstance(node.value, ast.Lambda):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self._local_lambdas.add(target.id)
        elif isinstance(node, ast.withitem):
            if isinstance(node.context_expr, ast.Call) and \
                    _is_process_ctor(node.context_expr) and \
                    node.optional_vars is not None:
                self._bind_executor([node.optional_vars])

    def _bind_executor(self, targets: Sequence[ast.expr]) -> None:
        for target in targets:
            name = dotted_name(target)
            if name is not None:
                self._local_execs.add(name)

    # -- pass 2 ---------------------------------------------------------

    def _visit(self, node: ast.AST, guarded: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # summarized as its own record
        if isinstance(node, ast.Call):
            self._handle_call(node, guarded)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            self._handle_assignment(node)
        if isinstance(node, (ast.If, ast.IfExp)):
            self._visit(node.test, guarded)
            body = node.body if isinstance(node.body, list) \
                else [node.body]
            orelse = node.orelse if isinstance(node.orelse, list) \
                else ([node.orelse] if node.orelse is not None else [])
            branch_guarded = guarded or self._mentions_rng(node.test)
            for child in [*body, *orelse]:
                self._visit(child, branch_guarded)
            return
        if isinstance(node, ast.BoolOp):
            op_guarded = guarded or any(self._mentions_rng(v)
                                        for v in node.values)
            for child in node.values:
                self._visit(child, op_guarded)
            return
        for child in ast.iter_child_nodes(node):
            self._visit(child, guarded)

    def _mentions_rng(self, node: ast.AST) -> bool:
        return any(isinstance(n, ast.Name) and n.id in self._rng_params
                   for n in ast.walk(node))

    def _handle_call(self, call: ast.Call, guarded: bool) -> None:
        # Submission detection must not depend on the call having a
        # dotted name: ``ProcessExecutor().map(...)`` has a Call
        # receiver, which ``call_name`` cannot render.
        self._submission_of_call(call)
        raw = call_name(call)
        if raw is None:
            return
        self.record["calls"].append(
            {"name": raw, "line": call.lineno, "col": call.col_offset})
        self._effects_of_call(call, raw)
        self._rng_of_call(call, raw, guarded)

    def _effects_of_call(self, call: ast.Call, raw: str) -> None:
        canon = self._imports.canonical(raw)
        if canon in WALL_CLOCK_CALLS:
            self._effect(WALL_CLOCK, f"{raw}()", call.lineno)
        elif canon in ENTROPY_CALLS or canon == "random.SystemRandom" \
                or ((canon.startswith("numpy.random.")
                     or raw.startswith("np.random."))
                    and not is_seeded_numpy_ctor(raw, call)):
            # Seeded numpy generator construction is deterministic
            # (RPR003 sanctions it the same way); everything else
            # under numpy.random taints as entropy.
            self._effect(ENTROPY, f"{raw}()", call.lineno)
        elif raw in ("hash", "id"):
            self._effect(SALTED_HASH, f"{raw}()", call.lineno)
        elif canon.startswith("random.") and not self._rng_exempt \
                and canon[len("random."):] in RANDOM_MODULE_FNS:
            self._effect(GLOBAL_RNG, f"{raw}()", call.lineno)
        elif canon in FILESYSTEM_CALLS or (
                "." in raw and _last(raw) in _PATH_FS_METHODS):
            self._effect(FILESYSTEM, f"{raw}()", call.lineno)
        if isinstance(call.func, ast.Attribute) and \
                call.func.attr in MUTATING_METHODS:
            base = dotted_name(call.func.value)
            if base is not None:
                first = base.split(".", 1)[0]
                if first in self._outer_names or \
                        first in self._module_state:
                    self._effect(
                        SHARED_MUTATION,
                        f"{raw}() mutates module state '{first}'",
                        call.lineno)

    def _rng_of_call(self, call: ast.Call, raw: str,
                     guarded: bool) -> None:
        first = raw.split(".", 1)[0]
        if "." in raw and first in self._rng_params:
            self.record["rng_draws"].append(
                {"param": first, "call": raw, "line": call.lineno})
            return
        terminal = _last(raw)
        if terminal.endswith("Rng") and terminal[:1].isupper():
            self.record["fresh_rng"].append(
                {"name": raw, "line": call.lineno,
                 "col": call.col_offset, "guarded": guarded})

    def _submission_of_call(self, call: ast.Call) -> None:
        func = call.func
        if not isinstance(func, ast.Attribute) or \
                func.attr not in _SUBMIT_METHODS or not call.args:
            return
        receiver = func.value
        is_process = (isinstance(receiver, ast.Call)
                      and _is_process_ctor(receiver))
        if not is_process:
            name = dotted_name(receiver)
            is_process = name is not None and name in self._local_execs
        if not is_process:
            return
        fn_arg = call.args[0]
        if isinstance(fn_arg, ast.Lambda):
            fn = {"kind": "lambda", "name": None}
        else:
            name = dotted_name(fn_arg)
            if name is not None and name in self._local_lambdas:
                fn = {"kind": "lambda", "name": name}
            elif name is not None:
                fn = {"kind": "ref", "name": name}
            else:
                fn = {"kind": "opaque", "name": None}
        self.record["submits"].append(
            {"fn": fn, "line": call.lineno, "col": call.col_offset})

    def _handle_assignment(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            targets = node.targets
        else:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name):
                if target.id in self._outer_names:
                    self._effect(
                        SHARED_MUTATION,
                        f"write to outer-scope name '{target.id}'",
                        node.lineno)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                base = dotted_name(
                    target.value if isinstance(target, ast.Subscript)
                    else target)
                if base is None:
                    continue
                first = base.split(".", 1)[0]
                if first != "self" and (first in self._outer_names
                                        or first in self._module_state):
                    self._effect(
                        SHARED_MUTATION,
                        f"write to module state '{first}'",
                        node.lineno)

    def _effect(self, effect: str, detail: str, line: int) -> None:
        self.record["effects"].append([effect, detail, line])


@summarizer("callgraph")
def callgraph_summary(sf: SourceFile) -> dict:
    """Digest ``sf`` into the module summary described above."""
    mod = module_id(sf)
    parts = list(sf.package_parts)
    if parts and parts[-1] == "__init__.py":
        package = mod
    else:
        package = mod.rsplit(".", 1)[0] if "." in mod else ""
    imports = _ImportTable(sf.tree, package)
    module_state = _module_state(sf.tree)
    module_execs = _module_executors(sf.tree)
    rng_exempt = sf.is_module("rng.py")
    functions: Dict[str, dict] = {}

    def walk_defs(stmts: Sequence[ast.stmt], prefix: str,
                  cls: Optional[str], nested: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = prefix + stmt.name
                scan = _FunctionScan(stmt, qual, cls, nested, imports,
                                     module_state, module_execs,
                                     rng_exempt)
                functions[qual] = scan.record
                walk_defs(stmt.body, qual + ".<locals>.", None, True)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = prefix + stmt.name
                walk_defs(stmt.body, cls_qual + ".", cls_qual, nested)

    walk_defs(sf.tree.body, "", None, False)
    return {
        "module": mod,
        "path": sf.display_path,
        "imports": dict(sorted(imports.internal.items())),
        "module_state": sorted(module_state),
        "functions": functions,
    }

"""The incremental lint cache (``.repro-lint-cache.json``).

``repro lint`` over the whole tree spends nearly all its time in
``ast.parse`` and the file-scoped rule walks, and nearly none of it
in the project-scoped passes (which consume pre-digested module
summaries).  The cache exploits that split:

* per file it stores the **content hash** (SHA-256 of the source),
  the file-scoped **findings** per rule code (post-suppression), the
  expanded **noqa table**, and every registered **module summary**;
* a warm run re-reads every file's bytes (cheap) but re-parses and
  re-analyzes only the files whose hash changed, representing the
  rest as :class:`~repro.analysis.framework.CachedFile` placeholders;
* project-scoped rules (obs contract, interprocedural determinism,
  executor safety) always rerun — over the *merged* summary view of
  cached and fresh files — so cross-module findings stay exact even
  when only one side of a call edge changed.

The whole cache is keyed by the **rule-catalog fingerprint**
(:func:`~repro.analysis.framework.catalog_fingerprint`, which folds
in the rules package's ``CATALOG_VERSION``): any rule addition,
removal, or behavior bump drops every entry at once.  Entries also
require the display path to match exactly, so ``repro lint src/repro``
and ``repro lint src`` never trade findings with different rendered
paths.

The cache is best-effort: a corrupt or unreadable file is treated as
empty, and an unwritable one is ignored — ``repro lint`` never fails
because of its cache.  Cold and warm runs are guaranteed to produce
byte-identical findings (property-tested in
``tests/test_lint_cache.py``); ``--no-cache`` opts out entirely.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.framework import (CachedFile, Finding, SourceFile,
                                      catalog_fingerprint)

__all__ = ["LintCache", "DEFAULT_CACHE_PATH"]

#: Where the CLI keeps the cache unless ``--cache`` says otherwise.
DEFAULT_CACHE_PATH = ".repro-lint-cache.json"

_FORMAT_VERSION = 1


class LintCache:
    """File-hash-keyed store of per-file lint results and summaries.

    Parameters
    ----------
    path:
        The JSON document backing the cache.  Missing or corrupt
        files start the cache empty; writes are atomic
        (temp file + rename) and silently skipped when the location
        is unwritable.
    """

    def __init__(self, path: object = DEFAULT_CACHE_PATH) -> None:
        self.path = Path(str(path))
        self.catalog = catalog_fingerprint()
        self._entries: Dict[str, dict] = {}
        self._live: Dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != _FORMAT_VERSION:
            return
        if payload.get("catalog") != self.catalog:
            return  # rule catalog changed: every entry is stale
        files = payload.get("files")
        if isinstance(files, dict):
            self._entries = files

    def save(self) -> None:
        """Persist the entries touched this run (plus carried-over
        ones for files outside this run's paths), atomically."""
        merged = dict(self._entries)
        merged.update(self._live)
        payload = {
            "version": _FORMAT_VERSION,
            "catalog": self.catalog,
            "files": merged,
        }
        text = json.dumps(payload, sort_keys=True,
                          separators=(",", ":"))
        try:
            directory = self.path.parent
            fd, tmp = tempfile.mkstemp(dir=str(directory),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(text)
                os.replace(tmp, self.path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # Best-effort: an unwritable cache never fails the lint.
            return

    # ------------------------------------------------------------------
    # Lookup / record
    # ------------------------------------------------------------------
    @staticmethod
    def _key(display_path: str) -> str:
        try:
            return str(Path(display_path).resolve())
        except OSError:
            return display_path

    def lookup(self, display_path: str, sha: str
               ) -> Optional[CachedFile]:
        """The cached view for ``display_path`` if its content (and
        spelled path) match; ``None`` forces a fresh parse."""
        key = self._key(display_path)
        entry = self._entries.get(key)
        if (entry is None or entry.get("sha") != sha
                or entry.get("display_path") != display_path):
            self.misses += 1
            return None
        self.hits += 1
        self._live[key] = entry
        return CachedFile(
            display_path=entry["display_path"],
            sha=entry["sha"],
            suppressions=entry.get("suppressions", {}),
            findings_by_rule=entry.get("findings", {}),
            summaries=entry.get("summaries", {}),
        )

    def record(self, sf: SourceFile,
               by_rule: Dict[str, List[Finding]]) -> None:
        """Store a freshly analyzed file's findings and summaries."""
        entry = {
            "display_path": sf.display_path,
            "sha": sf.sha,
            "suppressions": sf.suppression_table(),
            "findings": {code: [f.to_dict() for f in found]
                         for code, found in sorted(by_rule.items())},
            "summaries": sf.all_summaries(),
        }
        self._live[self._key(sf.display_path)] = entry

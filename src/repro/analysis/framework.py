"""The lint engine: findings, the rule registry, and the runner.

A **rule** is a function that inspects a parsed source file (or the
whole project) and yields :class:`Finding` objects.  Rules register
themselves under a stable code (``RPR0xx``) with the :func:`rule`
decorator; the registry is what the reporters, the CLI's
``--list-rules``, and the suppression syntax key off.

Two rule scopes exist:

* ``"file"`` — called once per :class:`SourceFile` with that file;
  most rules are file-scoped AST walks.
* ``"project"`` — called once with the whole :class:`Project`; used
  for cross-file invariants such as the observability contract, which
  compares every emitted instrument name against
  ``docs/observability.md``.

Suppressions are per line: ``# repro: noqa[RPR012]`` silences that
code on that line, ``# repro: noqa[RPR012,RPR031]`` several, and a
bare ``# repro: noqa`` every code.  Suppressions apply only to
findings in Python sources (doc-side findings of the contract rules
cannot be waved off from a comment).

The engine is deliberately dependency-free: :mod:`ast`, :mod:`re`,
and :mod:`pathlib` only, so ``repro lint`` runs anywhere the library
does.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple)

from repro.errors import ConfigurationError

__all__ = ["Finding", "Rule", "SourceFile", "Project", "rule",
           "all_rules", "rule_for", "load_project", "run_lint",
           "SYNTAX_ERROR_CODE"]

#: Reserved code for files the engine cannot parse at all.
SYNTAX_ERROR_CODE = "RPR000"

_CODE_RE = re.compile(r"^RPR\d{3}$")

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR002]``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]+)\])?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (the text-reporter line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} " \
               f"{self.message}"

    def to_dict(self) -> dict:
        """A JSON-ready record (round-trips via :func:`finding_from_dict`)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


def finding_from_dict(record: dict) -> Finding:
    """Rebuild a :class:`Finding` from :meth:`Finding.to_dict` output."""
    return Finding(path=record["path"], line=int(record["line"]),
                   col=int(record["col"]), code=record["code"],
                   message=record["message"])


@dataclass(frozen=True)
class Rule:
    """A registered lint rule (code, name, rationale, check function)."""

    code: str
    name: str
    summary: str
    scope: str  # "file" or "project"
    check: Callable


_REGISTRY: Dict[str, Rule] = {}


def rule(code: str, name: str, summary: str, *, scope: str = "file"
         ) -> Callable[[Callable], Callable]:
    """Register a check function under a stable ``RPR0xx`` code."""
    if not _CODE_RE.match(code):
        raise ConfigurationError(
            f"rule code must look like RPR0xx, got {code!r}")
    if scope not in ("file", "project"):
        raise ConfigurationError(
            f"rule scope must be 'file' or 'project', got {scope!r}")

    def register(fn: Callable) -> Callable:
        if code in _REGISTRY:
            raise ConfigurationError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code, name, summary, scope, fn)
        return fn

    return register


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    _load_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_for(code: str) -> Rule:
    """The rule registered under ``code``."""
    _load_builtin_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigurationError(f"unknown rule code {code!r}") from None


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule module.
    import repro.analysis.rules  # noqa: F401  (import for side effect)


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = every code)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            table[lineno] = None
        else:
            codes = {c.strip().upper() for c in match.group(1).split(",")}
            table[lineno] = {c for c in codes if c}
    return table


class SourceFile:
    """One parsed Python source plus the metadata rules key off.

    ``display_path`` is what findings report (the path as the caller
    spelled it); ``package_parts`` is the path relative to the package
    root with any leading ``src``/``repro`` segments stripped, so a
    rule can ask "is this ``rng.py``?" or "is this under ``core/``?"
    no matter whether the caller linted ``src/repro``, ``src`` or a
    test fixture tree that mimics the layout.
    """

    def __init__(self, path: Path, root: Path, text: str) -> None:
        self.path = path
        self.display_path = str(path)
        self.text = text
        self.lines = text.splitlines()
        rel = path.relative_to(root).parts
        while rel and rel[0] in ("src", "repro"):
            rel = rel[1:]
        self.package_parts: Tuple[str, ...] = rel
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Finding] = None
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = Finding(
                path=self.display_path, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, code=SYNTAX_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}")
        self._suppressions = _parse_suppressions(self.lines)

    @property
    def module_path(self) -> str:
        """The package-relative path, e.g. ``core/merge.py``."""
        return "/".join(self.package_parts)

    def in_package(self, *packages: str) -> bool:
        """True when the file sits under one of the given top packages."""
        return bool(self.package_parts) and self.package_parts[0] in packages

    def is_module(self, name: str) -> bool:
        """True when the file *is* the given package-relative module."""
        return self.module_path == name

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(path=self.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       code=code, message=message)

    def suppressed(self, finding: Finding) -> bool:
        """True when a ``# repro: noqa`` comment waves this finding off."""
        codes = self._suppressions.get(finding.line, ())
        return codes is None or finding.code in codes


class Project:
    """Every linted file plus the (optional) observability contract doc."""

    def __init__(self, files: Sequence[SourceFile],
                 contract_doc: Optional[Path]) -> None:
        self.files = list(files)
        self.contract_doc = contract_doc

    def file_for(self, finding: Finding) -> Optional[SourceFile]:
        """The source file a finding points into (None for doc findings)."""
        for sf in self.files:
            if sf.display_path == finding.path:
                return sf
        return None


def _iter_sources(paths: Sequence[str]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under ``paths``."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path, path.parent
        elif path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        else:
            raise ConfigurationError(
                f"no such file or directory: {raw}")


def _discover_contract_doc(paths: Sequence[str]) -> Optional[Path]:
    """Walk up from the linted paths looking for docs/observability.md."""
    for raw in paths:
        probe = Path(raw).resolve()
        for ancestor in [probe, *probe.parents][:6]:
            candidate = ancestor / "docs" / "observability.md"
            if candidate.is_file():
                return candidate
    return None


def load_project(paths: Sequence[str], *,
                 contract_doc: object = "auto") -> Project:
    """Parse every source under ``paths`` into a :class:`Project`.

    ``contract_doc`` is ``"auto"`` (walk up from the linted paths for
    ``docs/observability.md``), an explicit path, or ``None`` to
    disable the doc cross-check rules.
    """
    files = [SourceFile(file, root, file.read_text(encoding="utf-8"))
             for file, root in _iter_sources(paths)]
    if contract_doc == "auto":
        doc: Optional[Path] = _discover_contract_doc(paths)
    elif contract_doc is None:
        doc = None
    else:
        doc = Path(str(contract_doc))
        if not doc.is_file():
            raise ConfigurationError(
                f"contract doc not found: {contract_doc}")
    return Project(files, doc)


def run_lint(paths: Sequence[str], *, contract_doc: object = "auto",
             select: Optional[Iterable[str]] = None
             ) -> Tuple[List[Finding], Project]:
    """Run every registered rule over ``paths``.

    Returns ``(findings, project)`` with findings sorted by location.
    ``select`` restricts the run to the given rule codes.
    """
    project = load_project(paths, contract_doc=contract_doc)
    wanted = None if select is None else {c.upper() for c in select}
    findings: List[Finding] = []
    rules = all_rules()
    for sf in project.files:
        if sf.parse_error is not None:
            findings.append(sf.parse_error)
            continue
        for rl in rules:
            if rl.scope != "file":
                continue
            if wanted is not None and rl.code not in wanted:
                continue
            for finding in rl.check(sf):
                if not sf.suppressed(finding):
                    findings.append(finding)
    for rl in rules:
        if rl.scope != "project":
            continue
        if wanted is not None and rl.code not in wanted:
            continue
        for finding in rl.check(project):
            sf = project.file_for(finding)
            if sf is None or not sf.suppressed(finding):
                findings.append(finding)
    findings.sort()
    return findings, project

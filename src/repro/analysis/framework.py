"""The lint engine: findings, the rule registry, and the runner.

A **rule** is a function that inspects a parsed source file (or the
whole project) and yields :class:`Finding` objects.  Rules register
themselves under a stable code (``RPR0xx``) with the :func:`rule`
decorator; the registry is what the reporters, the CLI's
``--list-rules``, and the suppression syntax key off.

Two rule scopes exist:

* ``"file"`` — called once per :class:`SourceFile` with that file;
  most rules are file-scoped AST walks.
* ``"project"`` — called once with the whole :class:`Project`; used
  for cross-file invariants such as the observability contract and
  the interprocedural determinism/executor-safety rules.

Project-scoped rules do not walk ASTs directly.  They consume
**module summaries**: per-file, JSON-serializable digests produced by
registered :func:`summarizer` functions (emitted instrument names,
the call-graph module table, ...).  Summaries are what makes the
incremental cache sound — a warm run re-parses only changed files,
while project rules recompute over the merged summary view of the
whole tree (see :mod:`repro.analysis.cache`).

Suppressions: ``# repro: noqa[RPR012]`` silences that code,
``# repro: noqa[RPR012,RPR031]`` several, and a bare
``# repro: noqa`` every code.  A noqa on any physical line of a
multi-line statement suppresses findings reported anywhere on that
statement (the statement's span; for compound statements, its
header), so a comment on the last line of a wrapped call still
covers the finding anchored at the call's first line.

The engine is deliberately dependency-free: :mod:`ast`, :mod:`re`,
:mod:`hashlib`, and :mod:`pathlib` only, so ``repro lint`` runs
anywhere the library does.
"""

from __future__ import annotations

import ast
import hashlib
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Set, Tuple, Union)

from repro.errors import ConfigurationError

__all__ = ["Finding", "Rule", "SourceFile", "CachedFile", "Project",
           "rule", "summarizer", "all_rules", "rule_for", "expand_select",
           "severity_for", "SEVERITIES",
           "load_project", "run_lint", "SYNTAX_ERROR_CODE"]

#: Rule severity tiers, most severe first.  ``--fail-on warning`` (the
#: default) fails on any finding; ``--fail-on error`` lets
#: warning-severity findings through with exit code 0.
SEVERITIES = ("error", "warning")

#: Reserved code for files the engine cannot parse at all.  Not a
#: registered rule: parse errors are always reported, whatever
#: ``--select`` says.
SYNTAX_ERROR_CODE = "RPR000"

_CODE_RE = re.compile(r"^RPR\d{3}$")

#: ``RPR06x`` — a family prefix in ``--select`` lists.
_FAMILY_RE = re.compile(r"^RPR\d{2}X$")

#: ``# repro: noqa`` or ``# repro: noqa[RPR001,RPR002]``
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[([A-Z0-9,\s]+)\])?", re.IGNORECASE)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """``path:line:col: CODE message`` (the text-reporter line)."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} " \
               f"{self.message}"

    def to_dict(self) -> dict:
        """A JSON-ready record (round-trips via :func:`finding_from_dict`)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


def finding_from_dict(record: dict) -> Finding:
    """Rebuild a :class:`Finding` from :meth:`Finding.to_dict` output."""
    return Finding(path=record["path"], line=int(record["line"]),
                   col=int(record["col"]), code=record["code"],
                   message=record["message"])


@dataclass(frozen=True)
class Rule:
    """A registered lint rule (code, name, rationale, check function)."""

    code: str
    name: str
    summary: str
    scope: str  # "file" or "project"
    check: Callable
    severity: str = "error"  # "error" or "warning"


_REGISTRY: Dict[str, Rule] = {}

#: Per-file digest extractors feeding the project-scoped rules.
_SUMMARIZERS: Dict[str, Callable[["SourceFile"], object]] = {}


def rule(code: str, name: str, summary: str, *, scope: str = "file",
         severity: str = "error") -> Callable[[Callable], Callable]:
    """Register a check function under a stable ``RPR0xx`` code."""
    if not _CODE_RE.match(code):
        raise ConfigurationError(
            f"rule code must look like RPR0xx, got {code!r}")
    if scope not in ("file", "project"):
        raise ConfigurationError(
            f"rule scope must be 'file' or 'project', got {scope!r}")
    if severity not in SEVERITIES:
        raise ConfigurationError(
            f"rule severity must be one of {SEVERITIES}, got "
            f"{severity!r}")

    def register(fn: Callable) -> Callable:
        if code in _REGISTRY:
            raise ConfigurationError(f"duplicate rule code {code}")
        _REGISTRY[code] = Rule(code, name, summary, scope, fn, severity)
        return fn

    return register


def summarizer(key: str) -> Callable[[Callable], Callable]:
    """Register a per-file summary extractor under ``key``.

    The extractor receives a parsed :class:`SourceFile` and must
    return a JSON-serializable value; project-scoped rules read the
    merged view through :meth:`Project.summaries`, and the incremental
    cache persists the values so unchanged files need no re-parse.
    """
    def register(fn: Callable) -> Callable:
        if key in _SUMMARIZERS:
            raise ConfigurationError(f"duplicate summarizer key {key!r}")
        _SUMMARIZERS[key] = fn
        return fn

    return register


def summary_keys() -> List[str]:
    """Every registered summary key (cache bookkeeping)."""
    _load_builtin_rules()
    return sorted(_SUMMARIZERS)


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by code."""
    _load_builtin_rules()
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def rule_for(code: str) -> Rule:
    """The rule registered under ``code``."""
    _load_builtin_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        raise ConfigurationError(f"unknown rule code {code!r}") from None


def severity_for(code: str) -> str:
    """The severity tier of a finding code (parse errors are errors)."""
    if code == SYNTAX_ERROR_CODE:
        return "error"
    return rule_for(code).severity


def expand_select(select: Optional[Iterable[str]]) -> Optional[Set[str]]:
    """Expand a ``--select`` list into a set of registered codes.

    Accepts exact codes (``RPR061``) and family prefixes
    (``RPR06x``); every token may itself be a comma-separated list,
    so both ``["RPR061", "RPR07x"]`` and ``["RPR061,RPR07x"]`` work.
    Unknown codes and empty families raise
    :class:`~repro.errors.ConfigurationError` naming the valid codes.
    """
    if select is None:
        return None
    _load_builtin_rules()
    known = sorted(_REGISTRY)
    wanted: Set[str] = set()
    for raw in select:
        for token in str(raw).split(","):
            token = token.strip().upper()
            if not token:
                continue
            if _FAMILY_RE.match(token):
                members = {c for c in known
                           if c.startswith(token[:-1])}
                if not members:
                    raise ConfigurationError(
                        f"rule family {token!r} matches no registered "
                        f"rule; known codes: {', '.join(known)}")
                wanted |= members
            elif token in _REGISTRY:
                wanted.add(token)
            else:
                raise ConfigurationError(
                    f"unknown rule code {token!r}; known codes: "
                    f"{', '.join(known)} (families select as e.g. "
                    "RPR06x)")
    if not wanted:
        raise ConfigurationError("--select selected no rules")
    return wanted


def _load_builtin_rules() -> None:
    # Importing the package registers every built-in rule module.
    import repro.analysis.rules  # noqa: F401  (import for side effect)


def catalog_fingerprint() -> str:
    """A stable hash of the registered rule catalog.

    Cache entries are keyed by this fingerprint (plus the explicit
    ``CATALOG_VERSION`` the rules package bumps on behavior changes),
    so adding, removing, or re-scoping a rule invalidates every
    cached finding at once.
    """
    from repro.analysis.rules import CATALOG_VERSION

    h = hashlib.sha256()
    h.update(CATALOG_VERSION.encode("utf-8"))
    for rl in all_rules():
        h.update(f"|{rl.code}:{rl.name}:{rl.scope}:{rl.severity}"
                 .encode("utf-8"))
    for key in summary_keys():
        h.update(f"|summary:{key}".encode("utf-8"))
    return h.hexdigest()[:16]


def _parse_suppressions(lines: Sequence[str]) -> Dict[int, Optional[Set[str]]]:
    """Map line number -> suppressed codes (``None`` = every code)."""
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if not match:
            continue
        if match.group(1) is None:
            table[lineno] = None
        else:
            codes = {c.strip().upper() for c in match.group(1).split(",")}
            table[lineno] = {c for c in codes if c}
    return table


def _statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """``(first, last)`` physical-line span of every statement.

    Compound statements (``if``/``with``/``def``/...) span their
    *header* only — a noqa inside a function body must not wave off
    the whole function — while simple statements span all their
    physical lines, so a comment on any line of a wrapped call covers
    the full statement.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        end = getattr(node, "end_lineno", None) or start
        body = getattr(node, "body", None)
        if isinstance(body, list) and body \
                and isinstance(body[0], ast.stmt):
            end = max(start, min(child.lineno for child in body) - 1)
        spans.append((start, end))
    return spans


def _expand_suppressions(raw: Dict[int, Optional[Set[str]]],
                         spans: Sequence[Tuple[int, int]]
                         ) -> Dict[int, Optional[Set[str]]]:
    """Spread each noqa over its innermost enclosing statement span."""
    table: Dict[int, Optional[Set[str]]] = {}

    def merge(line: int, codes: Optional[Set[str]]) -> None:
        if codes is None:
            table[line] = None
            return
        current = table.get(line, set())
        if current is None:
            return  # a bare noqa already covers everything
        table[line] = set(current) | codes

    for line, codes in raw.items():
        containing = [s for s in spans if s[0] <= line <= s[1]]
        if containing:
            start, end = min(containing,
                             key=lambda s: (s[1] - s[0], -s[0]))
            for covered in range(start, end + 1):
                merge(covered, codes)
        else:
            merge(line, codes)
    return table


def _suppression_lookup(table: Dict[int, Optional[Set[str]]],
                        finding: Finding) -> bool:
    codes = table.get(finding.line, ())
    return codes is None or finding.code in codes


class SourceFile:
    """One parsed Python source plus the metadata rules key off.

    ``display_path`` is what findings report (the path as the caller
    spelled it); ``package_parts`` is the path relative to the package
    root with any leading ``src``/``repro`` segments stripped, so a
    rule can ask "is this ``rng.py``?" or "is this under ``core/``?"
    no matter whether the caller linted ``src/repro``, ``src`` or a
    test fixture tree that mimics the layout.
    """

    is_parsed = True

    def __init__(self, path: Path, root: Path, text: str) -> None:
        self.path = path
        self.display_path = str(path)
        self.text = text
        self.sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        self.lines = text.splitlines()
        rel = path.relative_to(root).parts
        while rel and rel[0] in ("src", "repro"):
            rel = rel[1:]
        self.package_parts: Tuple[str, ...] = rel
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[Finding] = None
        try:
            self.tree = ast.parse(text, filename=str(path))
        except SyntaxError as exc:
            self.parse_error = Finding(
                path=self.display_path, line=exc.lineno or 1,
                col=(exc.offset or 1) - 1, code=SYNTAX_ERROR_CODE,
                message=f"cannot parse file: {exc.msg}")
        raw = _parse_suppressions(self.lines)
        spans = _statement_spans(self.tree) if self.tree is not None else ()
        self._suppressions = _expand_suppressions(raw, spans)
        self._summaries: Dict[str, object] = {}

    @property
    def module_path(self) -> str:
        """The package-relative path, e.g. ``core/merge.py``."""
        return "/".join(self.package_parts)

    def in_package(self, *packages: str) -> bool:
        """True when the file sits under one of the given top packages."""
        return bool(self.package_parts) and self.package_parts[0] in packages

    def is_module(self, name: str) -> bool:
        """True when the file *is* the given package-relative module."""
        return self.module_path == name

    def is_test_module(self) -> bool:
        """True for ``test_*.py`` / ``*_test.py`` files and anything
        under a ``tests`` tree (fixtures, conftest, helpers)."""
        parts = self.package_parts
        if not parts:
            return False
        stem = parts[-1]
        return (stem.startswith("test_") or stem.endswith("_test.py")
                or "tests" in parts[:-1])

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A :class:`Finding` anchored at ``node``'s location."""
        return Finding(path=self.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       code=code, message=message)

    def suppressed(self, finding: Finding) -> bool:
        """True when a ``# repro: noqa`` comment waves this finding off."""
        return _suppression_lookup(self._suppressions, finding)

    def summary(self, key: str) -> object:
        """This file's summary under ``key`` (computed once, memoized)."""
        if key not in self._summaries:
            if key not in _SUMMARIZERS:
                _load_builtin_rules()
            extract = _SUMMARIZERS[key]
            self._summaries[key] = None if self.tree is None \
                else extract(self)
        return self._summaries[key]

    def all_summaries(self) -> Dict[str, object]:
        """Every registered summary for this file (cache persistence)."""
        return {key: self.summary(key) for key in summary_keys()}

    def suppression_table(self) -> Dict[str, Optional[List[str]]]:
        """The expanded noqa table, JSON-ready (cache persistence)."""
        return {str(line): (None if codes is None else sorted(codes))
                for line, codes in self._suppressions.items()}


class CachedFile:
    """A file the incremental cache let us skip re-parsing.

    Carries everything project-scoped rules and suppression filtering
    need — the stored summaries and noqa table — but no AST and no
    source text.  File-scoped findings for it come straight from the
    cache entry.
    """

    is_parsed = False

    def __init__(self, display_path: str, sha: str,
                 suppressions: Dict[str, Optional[List[str]]],
                 findings_by_rule: Dict[str, List[dict]],
                 summaries: Dict[str, object]) -> None:
        self.display_path = display_path
        self.sha = sha
        self._suppressions: Dict[int, Optional[Set[str]]] = {
            int(line): (None if codes is None else set(codes))
            for line, codes in suppressions.items()}
        self.findings_by_rule = findings_by_rule
        self._summaries = summaries

    def suppressed(self, finding: Finding) -> bool:
        """True when a stored ``# repro: noqa`` covers this finding."""
        return _suppression_lookup(self._suppressions, finding)

    def summary(self, key: str) -> object:
        """The stored summary under ``key`` (``None`` if absent)."""
        return self._summaries.get(key)

    def cached_findings(self, code: str) -> List[Finding]:
        """The stored (already suppression-filtered) findings."""
        return [finding_from_dict(f)
                for f in self.findings_by_rule.get(code, [])]


#: Either view satisfies what the runner and project rules need.
FileView = Union[SourceFile, CachedFile]


class Project:
    """Every linted file plus the (optional) observability contract doc.

    ``files`` mixes freshly parsed :class:`SourceFile` objects with
    :class:`CachedFile` placeholders on warm cache runs; file-scoped
    rules only ever see the parsed ones, project-scoped rules consume
    :meth:`summaries` which spans both.
    """

    def __init__(self, files: Sequence[FileView],
                 contract_doc: Optional[Path]) -> None:
        self.files = list(files)
        self.contract_doc = contract_doc
        self._by_path = {view.display_path: view for view in self.files}

    @property
    def parsed(self) -> List[SourceFile]:
        """The files parsed this run (cache misses, or everything)."""
        return [view for view in self.files if view.is_parsed]

    def summaries(self, key: str) -> List[Tuple[FileView, object]]:
        """``(file, summary)`` for every file, in path order.

        Files whose summary is unavailable (parse errors, stale cache
        entries from before the summarizer existed) are skipped.
        """
        pairs = []
        for view in self.files:
            value = view.summary(key)
            if value is not None:
                pairs.append((view, value))
        return pairs

    def file_for(self, finding: Finding) -> Optional[FileView]:
        """The source file a finding points into (None for doc findings)."""
        return self._by_path.get(finding.path)


def _iter_sources(paths: Sequence[str]) -> Iterator[Tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under ``paths``."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path, path.parent
        elif path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        else:
            raise ConfigurationError(
                f"no such file or directory: {raw}")


def _discover_contract_doc(paths: Sequence[str]) -> Optional[Path]:
    """Walk up from the linted paths looking for docs/observability.md."""
    for raw in paths:
        probe = Path(raw).resolve()
        for ancestor in [probe, *probe.parents][:6]:
            candidate = ancestor / "docs" / "observability.md"
            if candidate.is_file():
                return candidate
    return None


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs == 1:
        return 1
    if jobs == 0:
        import os

        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ConfigurationError(f"--jobs must be >= 0, got {jobs}")
    return jobs


def _load_one(file: Path, root: Path, cache) -> FileView:
    """Read one file; reuse the cache entry when content is unchanged."""
    text = file.read_text(encoding="utf-8")
    if cache is not None:
        sha = hashlib.sha256(text.encode("utf-8")).hexdigest()
        hit = cache.lookup(str(file), sha)
        if hit is not None:
            return hit
    return SourceFile(file, root, text)


def load_project(paths: Sequence[str], *,
                 contract_doc: object = "auto",
                 jobs: Optional[int] = None,
                 cache=None) -> Project:
    """Parse every source under ``paths`` into a :class:`Project`.

    ``contract_doc`` is ``"auto"`` (walk up from the linted paths for
    ``docs/observability.md``), an explicit path, or ``None`` to
    disable the doc cross-check rules.  ``jobs`` parses files on a
    thread pool (``0`` = one worker per CPU); results are ordered by
    path either way, so parallel runs report identically to serial
    ones.  ``cache`` is a :class:`repro.analysis.cache.LintCache`;
    files whose content hash matches a cache entry come back as
    :class:`CachedFile` placeholders without re-parsing.
    """
    sources = list(_iter_sources(paths))
    workers = _resolve_jobs(jobs)
    if workers == 1:
        files: List[FileView] = [_load_one(file, root, cache)
                                 for file, root in sources]
    else:
        import concurrent.futures

        with concurrent.futures.ThreadPoolExecutor(
                max_workers=workers) as pool:
            files = list(pool.map(
                lambda pair: _load_one(pair[0], pair[1], cache),
                sources))
    if contract_doc == "auto":
        doc: Optional[Path] = _discover_contract_doc(paths)
    elif contract_doc is None:
        doc = None
    else:
        doc = Path(str(contract_doc))
        if not doc.is_file():
            raise ConfigurationError(
                f"contract doc not found: {contract_doc}")
    return Project(files, doc)


def _lint_parsed_file(sf: SourceFile, rules: Sequence[Rule]
                      ) -> Dict[str, List[Finding]]:
    """Run the given file-scoped rules; returns unsuppressed findings
    keyed by rule code (parse errors under ``RPR000``)."""
    by_rule: Dict[str, List[Finding]] = {}
    if sf.parse_error is not None:
        by_rule[SYNTAX_ERROR_CODE] = [sf.parse_error]
        return by_rule
    for rl in rules:
        kept = [f for f in rl.check(sf) if not sf.suppressed(f)]
        if kept:
            by_rule[rl.code] = kept
    return by_rule


def run_lint(paths: Sequence[str], *, contract_doc: object = "auto",
             select: Optional[Iterable[str]] = None,
             jobs: Optional[int] = None,
             cache=None) -> Tuple[List[Finding], Project]:
    """Run every registered rule over ``paths``.

    Returns ``(findings, project)`` with findings sorted by location.
    ``select`` restricts the run to the given rule codes or
    ``RPR06x``-style families (unknown codes raise).  ``jobs``
    parallelizes parsing; ``cache`` enables the incremental cache —
    when given, *all* file-scoped rules are evaluated on parsed files
    (so the cache entry is complete for any future ``--select``) and
    the selection filters at reporting time.
    """
    wanted = expand_select(select)
    rules = all_rules()
    project = load_project(paths, contract_doc=contract_doc,
                           jobs=jobs, cache=cache)
    file_rules = [rl for rl in rules if rl.scope == "file"]
    findings: List[Finding] = []

    def selected(code: str) -> bool:
        return wanted is None or code in wanted

    for view in project.files:
        if view.is_parsed:
            # With a cache, evaluate every file rule so the stored
            # entry serves any later selection; without one, only the
            # selected rules run at all.
            run_rules = file_rules if cache is not None else \
                [rl for rl in file_rules if selected(rl.code)]
            by_rule = _lint_parsed_file(view, run_rules)
            if cache is not None:
                cache.record(view, by_rule)
            for code, found in by_rule.items():
                if code == SYNTAX_ERROR_CODE or selected(code):
                    findings.extend(found)
        else:
            for code in list(view.findings_by_rule):
                if code == SYNTAX_ERROR_CODE or selected(code):
                    findings.extend(view.cached_findings(code))

    for rl in rules:
        if rl.scope != "project" or not selected(rl.code):
            continue
        for finding in rl.check(project):
            sf = project.file_for(finding)
            if sf is None or not sf.suppressed(finding):
                findings.append(finding)

    if cache is not None:
        cache.save()
    findings.sort()
    return findings, project

"""Reporters: render lint findings for terminals and machines.

* :func:`render_text` — one ``path:line:col: CODE message`` line per
  finding plus a summary tail; what a human reads in CI logs.
* :func:`render_json` — a stable JSON document (``findings`` list,
  per-code ``counts``, ``checked_files``); what CI annotators and the
  self-lint test consume.  Round-trips through
  :func:`~repro.analysis.framework.finding_from_dict`.
* :func:`render_sarif` — a SARIF 2.1.0 log (one run, the full rule
  catalog in the driver, one result per finding); what code-hosting
  UIs ingest to surface findings as inline annotations.  Like the
  JSON reporter the output is a pure function of the findings, so
  cold- and warm-cache runs stay byte-identical.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from typing import List, Optional, Sequence

from repro.analysis.framework import (SYNTAX_ERROR_CODE, Finding,
                                      all_rules, severity_for)

__all__ = ["render_text", "render_json", "render_sarif", "parse_json"]


def render_text(findings: Sequence[Finding], *,
                checked_files: int) -> str:
    """The terminal report: one line per finding, then a summary."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        counts = _TallyCounter(f.code for f in findings)
        breakdown = ", ".join(f"{code} x{n}"
                              for code, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s) in "
                     f"{checked_files} file(s): {breakdown}")
    else:
        lines.append(f"ok: {checked_files} file(s) clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *,
                checked_files: int,
                indent: Optional[int] = None) -> str:
    """The machine report (stable key order)."""
    counts = _TallyCounter(f.code for f in findings)
    payload = {
        "checked_files": checked_files,
        "counts": dict(sorted(counts.items())),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


#: SARIF pins tool metadata; the version tracks the rule catalog.
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_sarif(findings: Sequence[Finding], *,
                 indent: Optional[int] = 2) -> str:
    """A SARIF 2.1.0 log for CI annotation UIs (stable key order)."""
    driver_rules = [{
        "id": SYNTAX_ERROR_CODE,
        "name": "syntax-error",
        "shortDescription": {"text": "the file cannot be parsed"},
        "defaultConfiguration": {"level": "error"},
    }]
    for rl in all_rules():
        driver_rules.append({
            "id": rl.code,
            "name": rl.name,
            "shortDescription": {"text": rl.summary},
            "defaultConfiguration": {"level": rl.severity},
        })
    driver_rules.sort(key=lambda entry: entry["id"])
    results = []
    for f in findings:
        results.append({
            "ruleId": f.code,
            "level": severity_for(f.code),
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line,
                               "startColumn": f.col + 1},
                },
            }],
        })
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "docs/static_analysis.md",
                "rules": driver_rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def parse_json(text: str) -> List[Finding]:
    """Findings back out of a :func:`render_json` document."""
    from repro.analysis.framework import finding_from_dict

    payload = json.loads(text)
    return [finding_from_dict(record) for record in payload["findings"]]

"""Reporters: render lint findings for terminals and machines.

* :func:`render_text` — one ``path:line:col: CODE message`` line per
  finding plus a summary tail; what a human reads in CI logs.
* :func:`render_json` — a stable JSON document (``findings`` list,
  per-code ``counts``, ``checked_files``); what CI annotators and the
  self-lint test consume.  Round-trips through
  :func:`~repro.analysis.framework.finding_from_dict`.
"""

from __future__ import annotations

import json
from collections import Counter as _TallyCounter
from typing import List, Optional, Sequence

from repro.analysis.framework import Finding

__all__ = ["render_text", "render_json", "parse_json"]


def render_text(findings: Sequence[Finding], *,
                checked_files: int) -> str:
    """The terminal report: one line per finding, then a summary."""
    lines: List[str] = [f.render() for f in findings]
    if findings:
        counts = _TallyCounter(f.code for f in findings)
        breakdown = ", ".join(f"{code} x{n}"
                              for code, n in sorted(counts.items()))
        lines.append(f"{len(findings)} finding(s) in "
                     f"{checked_files} file(s): {breakdown}")
    else:
        lines.append(f"ok: {checked_files} file(s) clean")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], *,
                checked_files: int,
                indent: Optional[int] = None) -> str:
    """The machine report (stable key order)."""
    counts = _TallyCounter(f.code for f in findings)
    payload = {
        "checked_files": checked_files,
        "counts": dict(sorted(counts.items())),
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def parse_json(text: str) -> List[Finding]:
    """Findings back out of a :func:`render_json` document."""
    from repro.analysis.framework import finding_from_dict

    payload = json.loads(text)
    return [finding_from_dict(record) for record in payload["findings"]]

"""Error discipline: library errors derive from ``ReproError``.

``repro/errors.py`` defines the exception hierarchy — every subclass
mixes in the matching stdlib type (``ConfigurationError`` *is a*
``ValueError``), so raising the repro type loses no caller
compatibility while keeping ``except ReproError`` a complete net for
the CLI and for embedding applications.  A bare ``raise ValueError``
punches a hole in that net.

A small allowlist covers exceptions that *are* the protocol:
``IndexError``/``KeyError``/``TypeError`` from ``__getitem__``-style
dunders, ``StopIteration`` from iterators, ``NotImplementedError``
from abstract stubs.
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.framework import Finding, SourceFile, rule
from repro.analysis.astutil import dotted_name

#: Builtin exceptions a library module may raise directly: these are
#: Python-protocol signals, not library failure reports.
ALLOWED_BUILTINS = frozenset({
    "IndexError", "KeyError", "TypeError", "AttributeError",
    "StopIteration", "StopAsyncIteration", "NotImplementedError",
})

_BUILTIN_EXCEPTIONS = frozenset(
    name for name, obj in vars(builtins).items()
    if isinstance(obj, type) and issubclass(obj, BaseException))


@rule("RPR031", "error-discipline",
      "a raise site uses a bare builtin instead of a ReproError type")
def check_raises(sf: SourceFile) -> Iterator[Finding]:
    """Every ``raise`` must use a ``repro.errors`` type or an
    allowlisted protocol builtin.

    Test modules are exempt: failure-injection tests raise stdlib
    exceptions *on purpose* to exercise error paths.
    """
    if sf.is_test_module():
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        name = dotted_name(exc)
        if name is None:
            continue  # computed expression; nothing to resolve
        terminal = name.rsplit(".", 1)[-1]
        if terminal in _BUILTIN_EXCEPTIONS and \
                terminal not in ALLOWED_BUILTINS:
            yield sf.finding(
                node, "RPR031",
                f"`raise {terminal}` bypasses the ReproError "
                "hierarchy; raise the matching repro.errors type "
                "(e.g. ConfigurationError is a ValueError) so "
                "`except ReproError` stays a complete net")


__all__ = ["check_raises", "ALLOWED_BUILTINS"]

"""Built-in lint rules, grouped by invariant family.

Importing this package registers every rule with the framework's
registry (each module applies the :func:`repro.analysis.framework.rule`
decorator at import time) plus the callgraph summarizer the
interprocedural families consume.  The catalog with rationale and
examples lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

#: Bumped whenever a rule's *behavior* changes without its code or
#: scope changing (the incremental cache folds this into its key, so
#: a bump drops every cached finding at once).
CATALOG_VERSION = "8"

from repro.analysis import callgraph as _callgraph  # noqa: F401,E402
from repro.analysis import asyncrules as _asyncrules  # noqa: F401,E402
from repro.analysis.rules import concurrency as _concurrency  # noqa: F401,E402
from repro.analysis.rules import determinism as _determinism  # noqa: F401,E402
from repro.analysis.rules import errors as _errors  # noqa: F401,E402
from repro.analysis.rules import executors as _executors  # noqa: F401,E402
from repro.analysis.rules import interprocedural as _interprocedural  # noqa: F401,E402
from repro.analysis.rules import kernels as _kernels  # noqa: F401,E402
from repro.analysis.rules import locks as _locks  # noqa: F401,E402
from repro.analysis.rules import obs as _obs  # noqa: F401,E402
from repro.analysis.rules import rng as _rng  # noqa: F401,E402
from repro.analysis.rules import stats as _stats  # noqa: F401,E402
from repro.analysis.rules import timing as _timing  # noqa: F401,E402

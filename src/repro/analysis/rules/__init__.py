"""Built-in lint rules, grouped by invariant family.

Importing this package registers every rule with the framework's
registry (each module applies the :func:`repro.analysis.framework.rule`
decorator at import time).  The catalog with rationale and examples
lives in ``docs/static_analysis.md``.
"""

from __future__ import annotations

from repro.analysis.rules import determinism as _determinism  # noqa: F401
from repro.analysis.rules import errors as _errors  # noqa: F401
from repro.analysis.rules import locks as _locks  # noqa: F401
from repro.analysis.rules import obs as _obs  # noqa: F401
from repro.analysis.rules import rng as _rng  # noqa: F401
from repro.analysis.rules import stats as _stats  # noqa: F401

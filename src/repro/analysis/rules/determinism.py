"""Determinism: sampling paths may not read clocks, salted hashes,
or unordered-collection iteration order.

``docs/determinism.md`` promises that every sampler, merge, rollup,
and query is a pure function of the master seed.  These rules guard
the three stdlib trapdoors that quietly break that promise:

* wall-clock reads (``time.time``, ``datetime.now``) feeding labels
  or values — different every run;
* builtin ``hash()`` (salted per process for ``str``/``bytes``) and
  ``id()`` (an address) — different every *process*;
* iterating a ``set`` — ordered by those same salted hashes.

The rules are scoped to the packages on the sampling path; the bench
harness and the observability layer legitimately read monotonic
clocks (they measure, they do not sample), and the CLI may print
whatever it likes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Finding, SourceFile, rule
from repro.analysis.astutil import walk_calls
# Canonical table shared with the interprocedural effect engine, so
# RPR011 and RPR061 can never disagree on what a clock read is.
from repro.analysis.dataflow import WALL_CLOCK_CALLS as _WALL_CLOCK_CALLS

#: Packages whose outputs must be a pure function of the seed.
SAMPLING_PACKAGES = ("core", "sampling", "warehouse", "stream",
                     "analytics", "stats", "workloads")


def _on_sampling_path(sf: SourceFile) -> bool:
    return sf.in_package(*SAMPLING_PACKAGES) or sf.is_module("rng.py")


@rule("RPR011", "wall-clock",
      "a sampling path reads the wall clock")
def check_wall_clock(sf: SourceFile) -> Iterator[Finding]:
    """Flag ``time.time()``/``datetime.now()`` on sampling paths."""
    if not _on_sampling_path(sf):
        return
    for call, name in walk_calls(sf.tree):
        if name in _WALL_CLOCK_CALLS:
            yield sf.finding(
                call, "RPR011",
                f"wall-clock read `{name}()` on a sampling path; "
                "results must be a pure function of the seed "
                "(docs/determinism.md)")


@rule("RPR012", "salted-hash",
      "builtin hash()/id() feeds a sampling path")
def check_salted_hash(sf: SourceFile) -> Iterator[Finding]:
    """Flag builtin ``hash()``/``id()`` calls on sampling paths.

    ``hash(str)`` is salted per process (PYTHONHASHSEED) and ``id()``
    is an object address; both differ across runs and across the
    worker processes of ``ProcessExecutor``.
    """
    if not _on_sampling_path(sf):
        return
    for call, name in walk_calls(sf.tree):
        if name == "hash":
            yield sf.finding(
                call, "RPR012",
                "builtin `hash()` is salted per process; use "
                "repro.rng.stable_hash for cross-process determinism")
        elif name == "id":
            yield sf.finding(
                call, "RPR012",
                "`id()` is an object address, different every run; "
                "key on an explicit label instead")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset")
    return False


@rule("RPR013", "set-iteration",
      "a sampling path iterates a set in hash order")
def check_set_iteration(sf: SourceFile) -> Iterator[Finding]:
    """Flag ``for x in set(...)`` (and comprehensions) on sampling
    paths; wrap the set in ``sorted(...)`` to fix the order."""
    if not _on_sampling_path(sf):
        return
    for node in ast.walk(sf.tree):
        iters = []
        if isinstance(node, ast.For):
            iters.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters.extend(gen.iter for gen in node.generators)
        for it in iters:
            if _is_set_expr(it):
                yield sf.finding(
                    it, "RPR013",
                    "iteration over a set visits elements in salted "
                    "hash order; wrap it in sorted(...) so downstream "
                    "samples are order-stable")


__all__ = ["check_wall_clock", "check_salted_hash",
           "check_set_iteration", "SAMPLING_PACKAGES"]

"""Statistical-test discipline: no bare p-value asserts in tests.

A test that asserts one raw p-value against a threshold
(``assert pval > ALPHA``) is wrong twice over: a single seed makes it
flake-prone, and every such assert silently inflates the suite-wide
false-alarm rate — with a hundred tests at ``1e-4`` the suite fails
spuriously about once per ten thousand runs *per test*, uncorrected.
``repro.testkit`` exists to fix both: :func:`repro.testkit.sweep`
evaluates the claim over several seeds and applies a Holm correction,
and the battery (``repro verify``) pools every check under one
suite-wide alpha.

RPR051 flags ``assert`` statements in test modules that compare a
p-value against a threshold.  A p-value is recognized as:

* a direct call to a known producer (``inclusion_frequency_test``,
  ``chi_square_pvalue``, ``scipy.stats.chisquare``, …) or to any
  function whose name contains ``pvalue``/``p_value`` or starts with
  ``chi_square`` (test-local wrappers included);
* a name previously bound from such a call — plain, annotated, or
  walrus assignment, tuple unpacking included;
* a name that *is* a p-value by spelling (``p_value``, ``pval``,
  ``pvals`` …).

Equality comparisons are deliberately not flagged: deterministic unit
tests of the chi-square machinery itself (exact expected p-values)
are legitimate.  Genuinely justified threshold asserts — e.g. a
deterministic input where the p-value is a known constant — carry a
``# repro: noqa[RPR051]`` with a comment saying why.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Set

from repro.analysis.astutil import dotted_name
from repro.analysis.framework import Finding, SourceFile, rule

#: Terminal callable names whose return value is (or contains) a p-value.
PVALUE_PRODUCERS = frozenset({
    "inclusion_frequency_test", "subset_frequency_test",
    "chi_square_pvalue", "chi_square_homogeneity",
    "binomial_sf", "chisquare", "kstest", "ks_2samp", "sf",
})

_PVALUE_NAME_RE = re.compile(r"^p_?val(ue)?s?$", re.IGNORECASE)

_THRESHOLD_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _is_producer_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1]
    return (terminal in PVALUE_PRODUCERS
            or "pvalue" in terminal or "p_value" in terminal
            or terminal.startswith("chi_square"))


def _tainted_names(tree: ast.Module) -> Set[str]:
    """Names bound (assignment, annotated assignment, walrus, or
    unpacking) from a producer call."""
    tainted: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            value, targets = node.value, node.targets
        elif isinstance(node, (ast.AnnAssign, ast.NamedExpr)):
            value, targets = node.value, [node.target]
        else:
            continue
        if value is None or not _is_producer_call(value):
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                tainted.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                tainted.update(elt.id for elt in target.elts
                               if isinstance(elt, ast.Name))
    return tainted


def _is_pvalue_expr(node: ast.AST, tainted: Set[str]) -> bool:
    if _is_producer_call(node):
        return True
    if isinstance(node, ast.Name):
        return (node.id in tainted
                or _PVALUE_NAME_RE.match(node.id) is not None)
    return False


@rule("RPR051", "pvalue-discipline",
      "a test asserts on a single uncorrected p-value")
def check_pvalue_asserts(sf: SourceFile) -> Iterator[Finding]:
    """Flag bare p-value threshold asserts in test modules."""
    if not sf.is_test_module():
        return
    assert sf.tree is not None
    tainted = _tainted_names(sf.tree)
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Assert):
            continue
        test = node.test
        if not isinstance(test, ast.Compare):
            continue
        if not all(isinstance(op, _THRESHOLD_OPS) for op in test.ops):
            continue
        if any(_is_pvalue_expr(side, tainted)
               for side in (test.left, *test.comparators)):
            yield sf.finding(
                node, "RPR051",
                "bare p-value threshold assert: one seed flakes and "
                "uncorrected asserts inflate the suite-wide error "
                "rate; run the claim through repro.testkit.sweep "
                "(seed sweep + Holm) and assert on .accepted / "
                ".all_rejected, or register it as a battery check "
                "(docs/testing.md)")


__all__ = ["check_pvalue_asserts", "PVALUE_PRODUCERS"]

"""Observability contract: instrument names are literal and documented.

``docs/observability.md`` is the contract page: every metric and span
name the library emits appears there with kind, unit, and emission
point.  These rules resolve instrument names from the AST (replacing
the old lexical regex scan in ``tests/test_obs_contract.py``) and
enforce three invariants:

* names are **string literals** — an f-string or concatenated name
  cannot be cross-checked against the contract and would create
  unbounded metric cardinality;
* every **emitted** name is documented (no silent drift code → doc);
* every **documented** name is emitted (no ghost rows doc → code).

The ``obs`` package itself is exempt: it takes caller-chosen names as
parameters and only ever *defines* the instruments.  Test modules are
exempt too: tests emit scratch names into throwaway registries, not
into the library's contract.

The cross-file directions (RPR022/RPR023) consume the ``obs_names``
**module summary** rather than walking ASTs, so they keep working on
warm cache runs where unchanged files are never re-parsed.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.analysis.framework import (Finding, Project, SourceFile,
                                      rule, summarizer)
from repro.analysis.astutil import dotted_name

#: Registry methods that bind a metric name at the call site.
_REGISTRY_METHODS = frozenset({"counter", "gauge", "histogram", "timer"})

#: Free functions that bind a span/metric name as their first argument.
_NAME_FUNCTIONS = frozenset({"span", "traced", "_record_tasks"})

#: Contract-table rows look like ``| `name` | ...`` (possibly indented).
_DOC_ROW_RE = re.compile(r"^\s*\|\s*`([^`]+)`", re.MULTILINE)


def _is_registry_receiver(node: ast.AST) -> bool:
    """Heuristic: does this expression denote a metrics registry?

    Matches the repo idiom — ``OBS.registry.counter(...)`` and local
    aliases ``reg = OBS.registry`` / ``registry.histogram(...)``.
    """
    name = dotted_name(node)
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1]
    return terminal in ("registry", "reg", "metrics")


def instrument_name_exprs(tree: ast.AST
                          ) -> Iterator[Tuple[ast.Call, ast.AST]]:
    """Yield ``(call, name_expr)`` for every instrument call site."""
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name) and func.id in _NAME_FUNCTIONS:
            if node.args:
                yield node, node.args[0]
            if func.id == "traced":
                for kw in node.keywords:
                    if kw.arg == "timer" and not (
                            isinstance(kw.value, ast.Constant)
                            and kw.value.value is None):
                        yield node, kw.value
        elif isinstance(func, ast.Attribute) and \
                func.attr in _REGISTRY_METHODS and \
                _is_registry_receiver(func.value) and node.args:
            yield node, node.args[0]


def _literal_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value
    return None


@summarizer("obs_names")
def obs_names_summary(sf: SourceFile) -> dict:
    """Per-file digest for the contract cross-check: the literal
    instrument names the file emits, plus whether it belongs to the
    obs package (the contract's implementation)."""
    names: List[List[object]] = []
    if not sf.in_package("obs") and not sf.is_test_module():
        for call, expr in instrument_name_exprs(sf.tree):
            name = _literal_name(expr)
            if name is not None:
                names.append([name, call.lineno])
    return {"is_obs": sf.in_package("obs"), "names": names}


def emitted_names(project: Project) -> List[Tuple[str, object, int]]:
    """Every literal instrument name emitted outside the obs package
    (and outside tests), as ``(name, file_view, line)``."""
    names: List[Tuple[str, object, int]] = []
    for view, summ in project.summaries("obs_names"):
        for name, line in summ["names"]:
            names.append((name, view, line))
    return names


def documented_names(text: str) -> List[Tuple[str, int]]:
    """``(name, line)`` for every contract-table row in the doc."""
    rows = []
    for match in _DOC_ROW_RE.finditer(text):
        line = text.count("\n", 0, match.start()) + 1
        rows.append((match.group(1), line))
    return rows


@rule("RPR021", "obs-literal-name",
      "an instrument name is not a string literal")
def check_literal_names(sf: SourceFile) -> Iterator[Finding]:
    """Names built at runtime defeat the contract check and create
    unbounded metric cardinality."""
    if sf.in_package("obs") or sf.is_test_module():
        return
    for call, expr in instrument_name_exprs(sf.tree):
        if _literal_name(expr) is None:
            yield sf.finding(
                expr, "RPR021",
                "instrument name must be a plain string literal so the "
                "contract (docs/observability.md) can resolve it; "
                "put variability in span attrs, not the name")


@rule("RPR022", "obs-undocumented-name",
      "an emitted instrument name is missing from the contract doc",
      scope="project")
def check_names_documented(project: Project) -> Iterator[Finding]:
    """Code → doc direction: every emitted name needs a contract row."""
    if project.contract_doc is None:
        return
    doc = project.contract_doc.read_text(encoding="utf-8")
    for name, sf, line in emitted_names(project):
        if f"`{name}`" not in doc:
            yield Finding(
                path=sf.display_path, line=line, col=0, code="RPR022",
                message=f"instrument name `{name}` is not documented "
                        f"in {project.contract_doc.name}; add a "
                        "contract row (kind, unit, emission point)")


@rule("RPR023", "obs-ghost-name",
      "the contract doc documents a name no code emits",
      scope="project")
def check_no_ghost_names(project: Project) -> Iterator[Finding]:
    """Doc → code direction: contract rows must not document ghosts.

    Only meaningful when the obs implementation itself is in view: a
    partial run (``repro lint tests``) sees none of the library's
    emission sites, and flagging every contract row as a ghost there
    would be pure noise.
    """
    if project.contract_doc is None:
        return
    if not any(summ["is_obs"]
               for _, summ in project.summaries("obs_names")):
        return
    doc = project.contract_doc.read_text(encoding="utf-8")
    emitted = {name for name, _, _ in emitted_names(project)}
    for name, line in documented_names(doc):
        if name not in emitted:
            yield Finding(
                path=str(project.contract_doc), line=line, col=0,
                code="RPR023",
                message=f"documented instrument name `{name}` is "
                        "emitted nowhere in the linted sources; "
                        "delete the row or restore the emission")


__all__ = ["instrument_name_exprs", "emitted_names", "documented_names",
           "obs_names_summary", "check_literal_names",
           "check_names_documented", "check_no_ghost_names"]

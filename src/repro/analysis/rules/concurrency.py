"""RPR10x — concurrency soundness (lockset race/deadlock analysis).

The lock-discipline rule (RPR041) checks that mutations of guarded
class state happen under *a* lock.  These rules go further, on top of
the interprocedural lockset model (:mod:`repro.analysis.locksets`):

* **RPR101 — inconsistent lockset.**  Eraser-style: every access to a
  shared location (a ``self._x`` attribute or module-global name)
  carries its effective lockset (locally held locks ∪ the locks every
  caller provably holds).  When some accesses hold a lock and others
  skip it, the intersection is empty and the location is a race
  candidate.  The rule reports the accesses that miss the location's
  *majority* lock, citing one consistently-locked site as the witness.
  Plain point reads are never recorded (the double-checked
  ``get``-then-locked-``setdefault`` idiom stays lawful); what gets
  flagged is **iteration** (``sorted(self._metrics)``,
  ``list(self._index)``, ``.items()`` views, ``for`` loops) racing a
  locked writer — exactly the access pattern that raises
  ``RuntimeError: dictionary changed size during iteration`` — plus
  writes under the *wrong* lock.  (Lock-free writes in a lock-owning
  class stay RPR041's finding; constructor-only code is exempt — the
  instance is not shared yet.)

* **RPR102 — lock-order inversion.**  Every acquire records the locks
  already held, giving the acquired-while-holding graph.  A cycle
  means two threads can each hold one lock and wait for the other;
  a self-edge on a non-reentrant ``threading.Lock`` is a guaranteed
  self-deadlock (``RLock`` re-entry is exempt).

* **RPR103 — blocking call under a lock** (severity ``warning``).
  ``time.sleep``, queue gets/puts, executor ``map``/``submit``/
  ``shutdown``, and file I/O made while holding a lock serialize
  every contending thread behind the wait.  Local waits and
  transitive ones (a held call into a callee whose effect set
  includes ``blocking-wait``/``filesystem``) are both reported, with
  the witness chain.  The same scan covers ``asyncio.Lock``: a
  blocking call inside an ``async with lock:`` section stalls not
  just contending tasks but the loop thread itself; the evidence
  comes from the shared blocks-event-loop effect in
  :mod:`repro.analysis.asyncrules` rather than a second ad-hoc
  call list.  Deliberate cases (e.g. an atomic write-rename under
  the store lock) carry a justified ``# repro: noqa[RPR103]``.

Test files are exempt from all three: fixtures and test scaffolding
are single-threaded by construction (and this package's own lint
fixtures would otherwise trip the gate over the full tree).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterator, Set, Tuple

from repro.analysis.asyncrules import async_model
from repro.analysis.framework import Finding, Project, rule
from repro.analysis.locksets import LockModel, is_test_path, lock_model


def _lockset_phrase(model: LockModel, locks) -> str:
    if not locks:
        return "with no lock held"
    names = ", ".join(f"`{model.display(lock)}`"
                      for lock in sorted(locks))
    return f"holding only {names}"


@rule("RPR101", "inconsistent-lockset",
      "a shared location is accessed under inconsistent locksets",
      scope="project")
def check_inconsistent_lockset(project: Project) -> Iterator[Finding]:
    """Intersect effective locksets per shared location; report the
    access sites that miss the location's majority lock."""
    model = lock_model(project)
    for location in sorted(model.access_table):
        records = [r for r in model.access_table[location]
                   if not r["exempt"] and not is_test_path(r["path"])]
        if len(records) < 2:
            continue
        counts: Counter = Counter()
        for record in records:
            counts.update(record["locks"])
        if not counts:
            continue  # never locked anywhere: not a claimed discipline
        majority = sorted(counts.items(),
                          key=lambda kv: (-kv[1], kv[0]))[0][0]
        witness = min((r for r in records if majority in r["locks"]),
                      key=lambda r: (r["path"], r["line"], r["col"]))
        is_class_loc = "." in model.display(location)
        for record in records:
            if majority in record["locks"]:
                continue
            if is_class_loc and record["kind"] == "write" \
                    and not record["locks"]:
                continue  # RPR041 already owns the lock-free write
            verb = "iterated" if record["kind"] == "iter" \
                else "written"
            yield Finding(
                path=record["path"], line=record["line"],
                col=record["col"], code="RPR101",
                message=(
                    f"`{model.display(location)}` is guarded by "
                    f"`{model.display(majority)}` at "
                    f"{counts[majority]} of {len(records)} access "
                    f"site(s) but {verb} here "
                    f"{_lockset_phrase(model, record['locks'])}; a "
                    "concurrent locked writer can resize it "
                    "mid-iteration — hold "
                    f"`{model.display(majority)}` (consistent site: "
                    f"{witness['path']}:{witness['line']})"))


@rule("RPR102", "lock-order-inversion",
      "a cycle in the acquired-while-holding graph (deadlock)",
      scope="project")
def check_lock_order(project: Project) -> Iterator[Finding]:
    """Self-edges on non-reentrant locks and cycles between distinct
    locks in the acquired-while-holding graph."""
    model = lock_model(project)
    graph = model.graph
    successors: Dict[str, Set[str]] = {}
    for held, acquired in model.order_edges:
        if held != acquired:
            successors.setdefault(held, set()).add(acquired)

    def reaches(src: str, dst: str) -> bool:
        seen: Set[str] = set()
        stack = [src]
        while stack:
            node = stack.pop()
            if node == dst:
                return True
            if node in seen:
                continue
            seen.add(node)
            stack.extend(successors.get(node, ()))
        return False

    def site(edge: Tuple[str, str]) -> Tuple[str, str, int, int]:
        key, line, col = sorted(model.order_edges[edge])[0]
        path = graph.modules[graph.defs[key][0]]["path"]
        return key, path, line, col

    reported_pairs: Set[Tuple[str, str]] = set()
    for held, acquired in sorted(model.order_edges):
        key, path, line, col = site((held, acquired))
        if is_test_path(path):
            continue
        if held == acquired:
            if model.lock_kinds.get(held) != "lock":
                continue  # RLock re-entry (or unknown kind) is lawful
            yield Finding(
                path=path, line=line, col=col, code="RPR102",
                message=(
                    f"`{model.display(held)}` is acquired in "
                    f"`{graph.display(key)}` while already held "
                    "(non-reentrant threading.Lock) — guaranteed "
                    "self-deadlock; use threading.RLock or drop the "
                    "inner acquire"))
            continue
        pair = (min(held, acquired), max(held, acquired))
        if pair in reported_pairs or not reaches(acquired, held):
            continue
        reported_pairs.add(pair)
        counter_edge = (acquired, held)
        if counter_edge in model.order_edges:
            ckey, cpath, cline, _ = site(counter_edge)
            other = (f"but `{graph.display(ckey)}` "
                     f"({cpath}:{cline}) acquires them in the "
                     "opposite order")
        else:
            other = (f"but `{model.display(acquired)}` also reaches "
                     f"`{model.display(held)}` through intermediate "
                     "acquisitions")
        yield Finding(
            path=path, line=line, col=col, code="RPR102",
            message=(
                f"lock-order inversion: `{graph.display(key)}` "
                f"acquires `{model.display(acquired)}` while holding "
                f"`{model.display(held)}`, {other} — two threads "
                "taking the two orders deadlock under contention; "
                "pick one global order"))


@rule("RPR103", "blocking-call-under-lock",
      "a blocking wait (sleep, queue, executor, file I/O) runs while "
      "a lock is held", scope="project", severity="warning")
def check_blocking_under_lock(project: Project) -> Iterator[Finding]:
    """One finding per function that parks the calling thread while
    holding a lock — ``threading`` or ``asyncio`` — anchored at the
    first blocking site."""
    model = lock_model(project)
    amodel = async_model(project)
    graph = model.graph
    for key in sorted(graph.defs):
        mod, _ = graph.defs[key]
        path = graph.modules[mod]["path"]
        if is_test_path(path):
            continue
        evidence = [dict(e, aio=False)
                    for e in model.blocking_evidence(key)]
        evidence += [dict(e, aio=True)
                     for e in amodel.aio_blocking_evidence(key)]
        evidence.sort(key=lambda e: e["line"])
        if not evidence:
            continue
        first = evidence[0]
        kind = "asyncio lock " if first["aio"] else ""
        locks = ", ".join(f"{kind}`{model.display(lock)}`"
                          for lock in sorted(first["locks"]))
        sites = sorted({e["line"] for e in evidence})
        chain = f" via {first['chain']}" if first["chain"] else ""
        extra = "" if len(sites) == 1 else \
            f" ({len(sites)} blocking sites in this function)"
        stall = ("every task contending for the lock — and the loop "
                 "thread itself — stalls behind the wait"
                 if first["aio"] else
                 "every thread contending for the lock stalls behind "
                 "the wait")
        yield Finding(
            path=path, line=first["line"], col=0, code="RPR103",
            message=(
                f"`{graph.display(key)}` performs a blocking wait "
                f"(`{first['detail']}`){chain} while holding {locks}"
                f"{extra}; {stall} — move it outside the "
                "critical section, or annotate why it must stay"))


__all__ = ["check_inconsistent_lockset", "check_lock_order",
           "check_blocking_under_lock"]

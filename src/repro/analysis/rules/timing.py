"""Timing discipline: raw clock reads belong to bench and obs only.

The library's timing contract (``docs/observability.md``) routes every
duration through :func:`repro.obs.clock.monotonic` (library and test
code) or the bench package's :func:`repro.bench.wall_timer`; only
``repro/bench`` and ``repro/obs`` may call ``time.perf_counter`` &
friends directly.  That makes "who reads clocks, and why" auditable by
construction: determinism review (wall clock feeding sampling decisions
is RPR011's job and the dataflow lattice's) only ever needs to look at
two packages.

RPR081 enforces the *monotonic* half of the discipline — it flags raw
``time.*`` clock reads (``perf_counter``, ``monotonic``,
``process_time``, ``time``, …, plus their ``_ns`` variants) anywhere
outside those two packages, however the name was imported.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.astutil import walk_calls
from repro.analysis.framework import Finding, SourceFile, rule

#: Every clock-reading callable of the stdlib ``time`` module.
TIMING_CALLS = frozenset({
    "time", "time_ns",
    "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns",
    "process_time", "process_time_ns",
    "thread_time", "thread_time_ns",
})

#: Packages allowed to read clocks directly: obs owns the clock front,
#: bench measures wall time for a living.
CLOCK_PACKAGES = ("bench", "obs")


def _time_bindings(tree: ast.AST) -> tuple[Set[str], Set[str]]:
    """Names bound to the ``time`` module and to its clock functions.

    Returns ``(module_aliases, function_aliases)``: the first holds
    every local name for the module itself (``import time``,
    ``import time as t``), the second every local name for one of its
    clock callables (``from time import perf_counter as pc``).
    """
    modules: Set[str] = set()
    functions: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time" and node.level == 0:
                for alias in node.names:
                    if alias.name in TIMING_CALLS:
                        functions.add(alias.asname or alias.name)
    return modules, functions


@rule("RPR081", "raw-clock-read",
      "a raw time.* clock read outside repro/bench and repro/obs")
def check_raw_clock_read(sf: SourceFile) -> Iterator[Finding]:
    """Flag direct ``time`` clock calls outside the clock-owning packages.

    Library and test code should call
    :func:`repro.obs.clock.monotonic`; benchmark scripts should use
    :func:`repro.bench.wall_timer`.  Catches dotted reads through the
    module (under any ``import time as ...`` alias) and bare reads of
    ``from time import ...`` bindings (under any rename).
    """
    if sf.in_package(*CLOCK_PACKAGES):
        return
    modules, functions = _time_bindings(sf.tree)
    for call, name in walk_calls(sf.tree):
        if name is None:
            continue
        head, _, attr = name.rpartition(".")
        hit = (attr in TIMING_CALLS and head in modules) if head \
            else (attr in functions)
        if hit:
            yield sf.finding(
                call, "RPR081",
                f"raw clock read `{name}()`; time through "
                "repro.obs.clock.monotonic (library/tests) or "
                "repro.bench.wall_timer (benchmarks) so timing "
                "stays auditable (docs/observability.md)")

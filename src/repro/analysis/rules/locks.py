"""Lock discipline: classes owning ``self._lock`` mutate under it.

One ``MetricsRegistry`` is shared by every thread of a
``ThreadExecutor`` run, warehouse stores are updated by concurrent
ingests, and span sinks receive spans from all threads.  Such classes
follow one convention: a class that owns shared mutable state creates
a lock attribute (``self._lock = threading.Lock()``) and takes it
around **every** mutation.  This rule makes the convention
machine-checked — *project-wide*: any class, wherever it lives, that
binds a lock attribute may only mutate its underscore attributes
while that lock is held.  (Classes that never create a lock opt out
by construction; the rule enforces the convention where it is
claimed, it does not demand locking everywhere.)

Since the lockset engine (:mod:`repro.analysis.locksets`) landed, the
check is interprocedural: "held" means the *effective* lockset —
locks taken locally **plus** locks every caller provably holds at the
call site.  A private helper invoked only from already-locked methods
no longer needs (and should not take) a redundant local lock; the old
file-scoped version of this rule forced exactly that false positive.
Constructor-only code (``__init__`` and helpers reachable only from
constructors) is exempt: the instance is not visible to other threads
yet.

Reads stay unflagged on purpose — the registry deliberately reads
``self._metrics`` outside the lock on the double-checked fast path,
and snapshot readers tolerate a stale value.  Iterations and
wrong-lock writes are RPR101's findings; this rule keeps its
historical meaning (lock-free mutation in a lock-owning class).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.framework import Finding, Project, rule
from repro.analysis.locksets import is_test_path, lock_model


@rule("RPR041", "lock-discipline",
      "shared state is mutated outside `with self._lock`",
      scope="project")
def check_lock_discipline(project: Project) -> Iterator[Finding]:
    """In any class owning a lock attribute, every write to a
    ``self._*`` attribute must happen with the lock held — locally or
    by every caller."""
    model = lock_model(project)
    for location in sorted(model.access_table):
        short = model.display(location)
        if "." not in short:
            continue  # module-global state: RPR101's territory
        owners = model.owner_locks(location)
        if not owners:
            continue  # lockless class: opted out of the convention
        cls = short.rsplit(".", 1)[0].rsplit(".", 1)[-1]
        for record in model.access_table[location]:
            if record["kind"] != "write" or record["exempt"]:
                continue
            if record["locks"]:
                continue  # held *some* lock; mismatches are RPR101
            if is_test_path(record["path"]):
                continue
            method = model.graph.defs[record["key"]][1]["name"]
            yield Finding(
                path=record["path"], line=record["line"],
                col=record["col"], code="RPR041",
                message=(
                    f"{cls}.{method} mutates shared state "
                    "outside `with self._lock:`; concurrent "
                    "ThreadExecutor updates would race"))


__all__ = ["check_lock_discipline"]

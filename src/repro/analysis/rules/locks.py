"""Lock discipline: classes owning ``self._lock`` mutate under it.

One ``MetricsRegistry`` is shared by every thread of a
``ThreadExecutor`` run, warehouse stores are updated by concurrent
ingests, and span sinks receive spans from all threads.  Such classes
follow one convention: a class that owns shared mutable state creates
``self._lock`` in ``__init__`` and takes it around **every**
mutation.  This rule makes the convention machine-checked —
*project-wide*: any class, wherever it lives, whose ``__init__``
creates ``self._lock`` may only mutate its underscore attributes
inside a ``with self._lock:`` block.  (Classes that never create a
``self._lock`` opt out by construction; the rule enforces the
convention where it is claimed, it does not demand locking
everywhere.)

Reads stay unflagged on purpose — the registry deliberately reads
``self._metrics`` outside the lock on the double-checked fast path,
and snapshot readers tolerate a stale value.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.framework import Finding, SourceFile, rule
# Canonical table shared with the interprocedural effect engine.
from repro.analysis.dataflow import MUTATING_METHODS as _MUTATING_METHODS


def _self_attr(node: ast.AST) -> Optional[str]:
    """``_name`` when the node is ``self._name``, else ``None``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and \
            node.value.id == "self" and node.attr.startswith("_"):
        return node.attr
    return None


def _is_lock_with(node: ast.With) -> bool:
    return any(_self_attr(item.context_expr) == "_lock"
               for item in node.items)


def _guarded_attr(node: ast.AST) -> Optional[str]:
    """The ``self._x`` attribute this statement mutates, if any."""
    targets = []
    if isinstance(node, (ast.Assign,)):
        targets = node.targets
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    elif isinstance(node, ast.Delete):
        targets = list(node.targets)
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and \
                func.attr in _MUTATING_METHODS:
            return _self_attr(func.value)
        return None
    for target in targets:
        if isinstance(target, (ast.Subscript, ast.Starred)):
            target = target.value
        attr = _self_attr(target)
        if attr is not None:
            return attr
    return None


def _unlocked_mutations(node: ast.AST, locked: bool
                        ) -> Iterator[ast.AST]:
    """Yield mutation nodes reachable outside a ``with self._lock``."""
    if isinstance(node, ast.With) and _is_lock_with(node):
        for child in node.body:
            yield from _unlocked_mutations(child, True)
        return
    if not locked:
        attr = _guarded_attr(node)
        if attr is not None and attr != "_lock":
            yield node
    for child in ast.iter_child_nodes(node):
        yield from _unlocked_mutations(child, locked)


@rule("RPR041", "lock-discipline",
      "shared state is mutated outside `with self._lock`")
def check_lock_discipline(sf: SourceFile) -> Iterator[Finding]:
    """In any class owning ``self._lock``, every write to a
    ``self._*`` attribute must happen under the lock."""
    if sf.is_test_module():
        return
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        methods = [n for n in node.body
                   if isinstance(n, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))]
        init = next((m for m in methods if m.name == "__init__"), None)
        if init is None:
            continue
        owns_lock = any(_guarded_attr(stmt) == "_lock"
                        for stmt in ast.walk(init))
        if not owns_lock:
            continue
        for method in methods:
            if method.name == "__init__":
                continue
            for mutation in _unlocked_mutations(method, False):
                yield sf.finding(
                    mutation, "RPR041",
                    f"{node.name}.{method.name} mutates shared state "
                    "outside `with self._lock:`; concurrent "
                    "ThreadExecutor updates would race")


__all__ = ["check_lock_discipline"]

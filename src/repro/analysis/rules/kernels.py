"""Kernel-backend discipline: vectorized backends stay vectorized.

The point of :mod:`repro.kernels` is that a kernel op is *one*
generator call, not a Python-level loop of scalar draws — that is
where the merge tree's speedup comes from, and a per-element draw
loop silently reintroduces the GIL-bound hot path the kernel layer
exists to remove.  ``kernels/python.py`` is the sanctioned exception:
it *is* the reference per-element implementation the vectorized
backends are checked against.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.astutil import walk_calls
from repro.analysis.dataflow import RANDOM_MODULE_FNS
from repro.analysis.framework import Finding, SourceFile, rule

#: Scalar draw methods of SplittableRng (stdlib surface plus the
#: discrete variates the samplers add).
_DRAW_METHODS = frozenset(RANDOM_MODULE_FNS) | {
    "bernoulli", "binomial", "geometric", "next_skip",
}

_LOOP_NODES = (ast.For, ast.AsyncFor, ast.While, ast.ListComp,
               ast.SetComp, ast.DictComp, ast.GeneratorExp)


@rule("RPR091", "kernel-python-rng-loop",
      "a vectorized kernel backend draws from a Python RNG per element")
def check_kernel_rng_loops(sf: SourceFile) -> Iterator[Finding]:
    """Ban per-element RNG draw loops in vectorized kernel backends.

    Applies to every module under ``repro/kernels/`` except the
    pure-Python reference backend (``kernels/python.py``).  Any scalar
    draw — a ``rng.<draw>()`` / generator method call — inside a
    ``for``/``while`` loop or a comprehension is flagged: a vectorized
    backend must hoist the randomness into one batched generator call.
    """
    if not sf.in_package("kernels") or sf.is_module("kernels/python.py"):
        return
    seen = set()  # nested loops walk the same calls; flag each once
    for loop in ast.walk(sf.tree):
        if not isinstance(loop, _LOOP_NODES):
            continue
        for call, name in walk_calls(loop):
            if name is None or "." not in name:
                continue
            where = (call.lineno, call.col_offset)
            if where in seen:
                continue
            if name.rsplit(".", 1)[-1] in _DRAW_METHODS:
                seen.add(where)
                yield sf.finding(
                    call, "RPR091",
                    f"`{name}()` draws per element inside a loop in a "
                    "vectorized kernel backend; batch the draw into a "
                    "single generator call (see docs/performance.md)")


__all__ = ["check_kernel_rng_loops"]
